//! Property-based tests for the control plane's core invariants.

use iluvatar_containers::types::Container;
use iluvatar_containers::ResourceLimits;
use iluvatar_core::config::{KeepalivePolicyKind, QueueConfig, QueuePolicyKind};
use iluvatar_core::invocation::InvocationHandle;
use iluvatar_core::policies::{make_policy, EntryMeta};
use iluvatar_core::pool::ContainerPool;
use iluvatar_core::queue::{priority_of, DrrQueue, InvocationQueue, QueuedInvocation};
use iluvatar_core::{PendingInvocation, Wal, WalRecord};
use iluvatar_sync::ManualClock;
use proptest::prelude::*;
use std::sync::Arc;

fn item(fqdn: String, arrived: u64, exec: f64, iat: f64) -> QueuedInvocation {
    titem(fqdn, arrived, exec, iat, None, 1.0)
}

fn titem(
    fqdn: String,
    arrived: u64,
    exec: f64,
    iat: f64,
    tenant: Option<&str>,
    weight: f64,
) -> QueuedInvocation {
    let (tx, h) = InvocationHandle::pair();
    std::mem::forget(h);
    QueuedInvocation {
        fqdn,
        args: String::new(),
        trace_id: 0,
        arrived_at: arrived,
        expected_exec_ms: exec,
        iat_ms: iat,
        expect_warm: true,
        tenant: tenant.map(str::to_string),
        tenant_weight: weight,
        result_tx: tx,
    }
}

proptest! {
    /// Every queue policy dequeues in non-decreasing priority order.
    #[test]
    fn queue_pops_in_priority_order(
        entries in proptest::collection::vec((0u64..10_000, 0.0f64..5_000.0, 0.0f64..60_000.0), 1..60),
        policy_idx in 0usize..4,
    ) {
        let policy = QueuePolicyKind::all()[policy_idx];
        let q = InvocationQueue::new(QueueConfig { policy, ..Default::default() });
        for (i, &(t, exec, iat)) in entries.iter().enumerate() {
            q.push(item(format!("f{i}"), t, exec, iat)).unwrap();
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(popped) = q.try_pop() {
            let p = priority_of(policy, &popped);
            prop_assert!(p >= last - 1e-9, "{policy:?}: {p} after {last}");
            last = p;
        }
        prop_assert!(q.is_empty());
    }

    /// The Greedy-Dual clock is monotone non-decreasing under any event
    /// sequence, and priorities never go below the current clock for
    /// freshly accessed entries.
    #[test]
    fn gdsf_clock_monotone(ops in proptest::collection::vec((0u8..3, 0usize..8), 1..200)) {
        let mut policy = make_policy(KeepalivePolicyKind::Gdsf, 0);
        let mut entries: Vec<EntryMeta> = (0..8)
            .map(|i| EntryMeta::new(format!("f{i}"), 64 + i * 32, (i as f64 + 1.0) * 50.0, 0))
            .collect();
        for e in entries.iter_mut() {
            policy.on_insert(e, 0);
        }
        let mut last_evict_prio = f64::NEG_INFINITY;
        for (step, &(op, idx)) in ops.iter().enumerate() {
            let now = step as u64;
            match op {
                0 => {
                    entries[idx].freq += 1;
                    policy.on_access(&mut entries[idx], now);
                }
                1 => {
                    let p = policy.priority(&entries[idx], now);
                    policy.on_evict(&entries[idx], now);
                    // Re-insert (fresh container) — its new priority must be
                    // at least the evicted one's (clock inflation).
                    policy.on_insert(&mut entries[idx], now);
                    let p2 = policy.priority(&entries[idx], now);
                    prop_assert!(p2 >= p - 1e-9);
                    prop_assert!(p >= last_evict_prio - 1e9, "sanity");
                    last_evict_prio = p;
                }
                _ => {
                    let _ = policy.priority(&entries[idx], now);
                }
            }
        }
    }

    /// Pool memory accounting: used never exceeds capacity, and frees add
    /// up after any interleaving of reserve/release/acquire/discard.
    #[test]
    fn pool_memory_conservation(ops in proptest::collection::vec((0u8..4, 0u8..6), 1..120)) {
        let clock = Arc::new(ManualClock::new());
        let pool = ContainerPool::new(
            1024,
            make_policy(KeepalivePolicyKind::Lru, 600_000),
            clock.clone(),
            Arc::new(|_c| {}),
        );
        // Track our own view of live reservations.
        let mut live: Vec<Arc<Container>> = Vec::new(); // in-use containers
        for (step, &(op, f)) in ops.iter().enumerate() {
            clock.advance(1 + step as u64 % 7);
            let fqdn = format!("f{}", f % 3);
            match op {
                0 => {
                    // Cold start attempt.
                    if pool.reserve(128) {
                        live.push(Arc::new(Container::new(
                            &fqdn,
                            ResourceLimits { cpus: 1.0, memory_mb: 128 },
                        )));
                    }
                }
                1 => {
                    // Finish one in-use container into the pool.
                    if let Some(c) = live.pop() {
                        pool.release(c, 100.0);
                    }
                }
                2 => {
                    // Warm acquire.
                    if let Some(c) = pool.acquire(&fqdn) {
                        live.push(c);
                    }
                }
                _ => {
                    // Failed invocation: discard.
                    if let Some(c) = live.pop() {
                        pool.discard(c);
                    }
                }
            }
            prop_assert!(pool.used_mb() <= 1024, "used {} > capacity", pool.used_mb());
            let expected_used = (live.len() * 128) as u64 + pool.stats().idle_mb;
            prop_assert_eq!(pool.used_mb(), expected_used,
                "accounting drift at step {}", step);
        }
    }

    /// TTL expiry is exact: entries idle longer than the TTL are expired,
    /// younger ones never are.
    #[test]
    fn ttl_expiry_boundary(ttl in 1u64..1_000_000, idle in 0u64..2_000_000) {
        let policy = make_policy(KeepalivePolicyKind::Ttl, ttl);
        let mut e = EntryMeta::new("f", 128, 0.0, 0);
        e.last_access_ms = 0;
        let expired = policy.expired(&e, idle);
        prop_assert_eq!(expired, idle > ttl);
    }

    /// DRR long-run service tracks the weight ratio within 10% under
    /// saturating load, for any weight pair and item cost.
    #[test]
    fn drr_service_tracks_weights(w1 in 1u32..=5, w2 in 1u32..=5, cost in 5.0f64..50.0) {
        let mut q = DrrQueue::new(50);
        for i in 0..2_000u32 {
            q.push(titem(format!("a{i}"), 0, cost, 0.0, Some("t1"), w1 as f64));
            q.push(titem(format!("b{i}"), 0, cost, 0.0, Some("t2"), w2 as f64));
        }
        // 2000 pops spans ≥20 visit rounds for every (w1, w2, cost) in
        // range, so partial-round quantization stays well under the 10%
        // fairness tolerance while neither sub-queue runs dry.
        let pops = 2_000;
        let (mut s1, mut s2) = (0usize, 0usize);
        for _ in 0..pops {
            match q.pop().unwrap().tenant.as_deref() {
                Some("t1") => s1 += 1,
                _ => s2 += 1,
            }
        }
        prop_assert!(s1 > 0 && s2 > 0, "no starvation: {s1}/{s2}");
        let ratio = s1 as f64 / s2 as f64;
        let want = w1 as f64 / w2 as f64;
        prop_assert!(
            (ratio - want).abs() / want <= 0.10,
            "served ratio {ratio:.3} deviates >10% from weight ratio {want:.3}"
        );
    }

    /// Idle tenants carry no deficit: once a sub-queue drains, its deficit
    /// resets to zero regardless of prior service history.
    #[test]
    fn drr_idle_deficit_is_bounded(
        counts in proptest::collection::vec(1usize..30, 1..5),
        cost in 1.0f64..100.0,
    ) {
        let mut q = DrrQueue::new(50);
        for (t, &n) in counts.iter().enumerate() {
            for i in 0..n {
                q.push(titem(format!("f{t}-{i}"), 0, cost, 0.0, Some(&format!("t{t}")), 1.0));
            }
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, counts.iter().sum::<usize>(), "work-conserving");
        for t in 0..counts.len() {
            let d = q.deficit_of(&format!("t{t}"));
            prop_assert!(d == 0.0, "tenant t{t} kept deficit {d} while idle");
        }
    }

    /// WAL replay is idempotent: replaying a log whose entire record
    /// sequence was duplicated (the worst-case torn-recovery double read)
    /// reconstructs exactly the same state as replaying it once.
    #[test]
    fn wal_replay_is_idempotent_under_duplicated_log(
        ops in proptest::collection::vec((0u8..4, 1u64..24), 1..80),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "iluvatar-wal-prop-{}-{}.wal",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path, u64::MAX).unwrap();
            for &(op, id) in &ops {
                let tenant = Some(format!("t{}", id % 3));
                let rec = match op {
                    0 => WalRecord::Enqueued {
                        inv: PendingInvocation {
                            id,
                            fqdn: "f-1".into(),
                            args: format!("{{\"id\":{id}}}"),
                            tenant: tenant.clone(),
                            tenant_weight: 1.0,
                            arrived_at: id * 10,
                            expected_exec_ms: 100.0,
                            iat_ms: 0.0,
                            expect_warm: false,
                            dequeued: false,
                        },
                    },
                    1 => WalRecord::Completed { id, ok: id % 2 == 0, tenant: tenant.clone() },
                    2 => WalRecord::Shed { id, tenant: tenant.clone(), throttled: id % 2 == 0 },
                    _ => WalRecord::Dequeued { id },
                };
                // Completions/dequeues for ids the log never accepted are
                // legitimately skipped (nothing to make durable).
                let out = wal.append(&rec);
                prop_assert!(out.accepted(), "append rejected: {out:?}");
            }
        }
        let once = iluvatar_core::wal::replay(&path).unwrap();
        // Duplicate the whole (framed) segment and replay again: the dedup
        // sets must absorb every repeated record.
        let seg = iluvatar_core::wal::segment_path(&path, 1);
        let bytes = std::fs::read(&seg).unwrap();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
            f.write_all(&bytes).unwrap();
        }
        let twice = iluvatar_core::wal::replay(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&seg);

        let ids = |st: &iluvatar_core::ReplayState| {
            st.pending.iter().map(|p| p.id).collect::<Vec<_>>()
        };
        prop_assert_eq!(ids(&once), ids(&twice), "pending sets diverge");
        prop_assert_eq!(
            serde_json::to_string(&once.counters).unwrap(),
            serde_json::to_string(&twice.counters).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&once.tenants).unwrap(),
            serde_json::to_string(&twice.tenants).unwrap()
        );
        prop_assert_eq!(once.max_id, twice.max_id);
        prop_assert_eq!(once.torn_lines, 0);
        prop_assert_eq!(twice.torn_lines, 0);
    }

    /// Crash recovery preserves DRR fairness: dumping deficits mid-service
    /// and restoring them onto a rebuilt backlog keeps the combined service
    /// ratio within 10% of the weight ratio — the restored queue continues
    /// where the dead one stopped instead of resetting tenant credit.
    #[test]
    fn drr_deficit_restore_preserves_fairness(
        w1 in 1u32..=5,
        w2 in 1u32..=5,
        cut in 200usize..1_000,
    ) {
        let cost = 10.0;
        let mut q = DrrQueue::new(50);
        for i in 0..2_000u32 {
            q.push(titem(format!("a{i}"), 0, cost, 0.0, Some("t1"), w1 as f64));
            q.push(titem(format!("b{i}"), 0, cost, 0.0, Some("t2"), w2 as f64));
        }
        let (mut s1, mut s2) = (0usize, 0usize);
        for _ in 0..cut {
            match q.pop().unwrap().tenant.as_deref() {
                Some("t1") => s1 += 1,
                _ => s2 += 1,
            }
        }
        // "Crash": dump the deficits, rebuild the remaining backlog in a
        // fresh queue (as recovery re-enqueues it), restore the deficits.
        let deficits = q.deficits();
        let mut q2 = DrrQueue::new(50);
        for i in 0..(2_000 - s1) {
            q2.push(titem(format!("a{i}"), 0, cost, 0.0, Some("t1"), w1 as f64));
        }
        for i in 0..(2_000 - s2) {
            q2.push(titem(format!("b{i}"), 0, cost, 0.0, Some("t2"), w2 as f64));
        }
        for (t, d) in &deficits {
            q2.restore_deficit(t, *d);
        }
        for _ in 0..(2_000 - cut) {
            match q2.pop().unwrap().tenant.as_deref() {
                Some("t1") => s1 += 1,
                _ => s2 += 1,
            }
        }
        prop_assert!(s1 > 0 && s2 > 0, "no starvation: {s1}/{s2}");
        let ratio = s1 as f64 / s2 as f64;
        let want = w1 as f64 / w2 as f64;
        prop_assert!(
            (ratio - want).abs() / want <= 0.10,
            "post-recovery ratio {ratio:.3} deviates >10% from weight ratio {want:.3}"
        );
    }

    /// EEDF dominance: given equal arrivals, the shorter job pops first;
    /// given equal sizes, the earlier arrival pops first.
    #[test]
    fn eedf_dominance(a in 0u64..1_000, b in 0u64..1_000, x in 0.0f64..1_000.0, y in 0.0f64..1_000.0) {
        let q = InvocationQueue::new(QueueConfig { policy: QueuePolicyKind::Eedf, ..Default::default() });
        q.push(item("same-arrival-x".into(), 100, x, 0.0)).unwrap();
        q.push(item("same-arrival-y".into(), 100, y, 0.0)).unwrap();
        let first = q.try_pop().unwrap();
        if (x - y).abs() > 1e-9 {
            let want = if x < y { "same-arrival-x" } else { "same-arrival-y" };
            prop_assert_eq!(first.fqdn, want);
        }
        q.try_pop();
        q.push(item("arr-a".into(), a, 500.0, 0.0)).unwrap();
        q.push(item("arr-b".into(), b, 500.0, 0.0)).unwrap();
        let first = q.try_pop().unwrap();
        if a != b {
            let want = if a < b { "arr-a" } else { "arr-b" };
            prop_assert_eq!(first.fqdn, want);
        }
    }
}
