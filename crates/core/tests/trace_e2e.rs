//! End-to-end trace propagation: the id minted at ingest must appear in the
//! worker's journal with the full ordered timeline AND cross the worker →
//! agent HTTP hop as the `X-Iluvatar-Trace` header, for both the sync and
//! async invocation paths.

use iluvatar_containers::agent::FunctionBehavior;
use iluvatar_containers::{ContainerBackend, InProcessBackend, NamespacePool};
use iluvatar_core::{FunctionSpec, TraceEventKind, Worker, WorkerConfig};
use iluvatar_sync::SystemClock;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn worker_over_inprocess() -> (Worker, Arc<InProcessBackend>) {
    let clock = SystemClock::shared();
    let netns = Arc::new(NamespacePool::new(2, 0, Arc::clone(&clock)));
    netns.prefill();
    let backend = Arc::new(InProcessBackend::new(netns));
    backend.register_behavior(
        "echo-1",
        FunctionBehavior::from_body(|args| format!("[{args}]")),
    );
    let worker = Worker::new(
        WorkerConfig::for_testing(),
        Arc::clone(&backend) as Arc<dyn ContainerBackend>,
        clock,
    );
    worker.register(FunctionSpec::new("echo", "1")).unwrap();
    (worker, backend)
}

/// `ResultReturned` is journaled just after the result is delivered to the
/// caller, so a test that raced `wait()` could observe an incomplete record.
fn completed_trace(worker: &Worker, id: u64) -> iluvatar_core::TraceRecord {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let r = worker.trace(id).expect("trace must be journaled");
        if r.completed() || Instant::now() > deadline {
            return r;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn kinds(r: &iluvatar_core::TraceRecord) -> Vec<TraceEventKind> {
    r.events.iter().map(|e| e.kind.clone()).collect()
}

#[test]
fn sync_invoke_journals_timeline_and_agent_sees_the_id() {
    let (mut worker, backend) = worker_over_inprocess();

    let cold = worker.invoke("echo-1", "7").unwrap();
    assert_eq!(cold.body, "[7]");
    assert_ne!(cold.trace_id, 0, "every invocation gets a trace id");
    assert!(cold.cold);

    let r = completed_trace(&worker, cold.trace_id);
    assert_eq!(r.fqdn, "echo-1");
    assert_eq!(
        kinds(&r),
        vec![
            TraceEventKind::Ingested,
            TraceEventKind::Enqueued,
            TraceEventKind::Dequeued,
            TraceEventKind::ContainerAcquired { cold: true },
            TraceEventKind::AgentCalled,
            TraceEventKind::ResultReturned { ok: true },
        ],
        "full ordered timeline for a cold sync invoke"
    );
    assert_eq!(r.cold(), Some(true));
    let times: Vec<_> = r.events.iter().map(|e| e.at_ms).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "timestamps ordered: {times:?}"
    );

    // The agent inside the container observed exactly this id, hex-encoded.
    let hex = format!("{:016x}", cold.trace_id);
    assert!(
        backend.observed_traces().contains(&hex),
        "agent must see trace {hex}, got {:?}",
        backend.observed_traces()
    );

    // A second invocation is warm and gets its own, distinct trace.
    let warm = worker.invoke("echo-1", "8").unwrap();
    assert!(!warm.cold);
    assert_ne!(warm.trace_id, cold.trace_id);
    let r2 = completed_trace(&worker, warm.trace_id);
    assert_eq!(r2.cold(), Some(false), "warm attribution in the journal");
    assert!(backend
        .observed_traces()
        .contains(&format!("{:016x}", warm.trace_id)));

    // Newest-first listing surfaces the warm trace before the cold one.
    let recent = worker.recent_traces(2);
    assert_eq!(recent[0].trace_id, warm.trace_id);
    assert_eq!(recent[1].trace_id, cold.trace_id);

    worker.shutdown();
}

#[test]
fn tenant_label_crosses_the_agent_hop() {
    let (mut worker, backend) = worker_over_inprocess();

    // An explicit label rides the invocation all the way into the container:
    // the agent records the `X-Iluvatar-Tenant` header it was called with.
    let r = worker.invoke_tenant("echo-1", "7", Some("acme")).unwrap();
    assert_eq!(r.body, "[7]");
    assert_eq!(r.tenant.as_deref(), Some("acme"));
    assert!(
        backend.observed_tenants().contains(&"acme".to_string()),
        "agent must see the tenant label, got {:?}",
        backend.observed_tenants()
    );

    // A registration-level tenant is the default when the caller sends none.
    backend.register_behavior("billed-1", FunctionBehavior::from_body(|a| a.to_string()));
    worker
        .register(FunctionSpec::new("billed", "1").with_tenant("umbrella"))
        .unwrap();
    let r = worker.invoke("billed-1", "x").unwrap();
    assert_eq!(r.tenant.as_deref(), Some("umbrella"));
    assert!(backend.observed_tenants().contains(&"umbrella".to_string()));

    worker.shutdown();
}

#[test]
fn async_invoke_carries_the_same_id_end_to_end() {
    let (mut worker, backend) = worker_over_inprocess();

    let handle = worker.async_invoke("echo-1", "{}").unwrap();
    let result = handle.wait().unwrap();
    assert_ne!(result.trace_id, 0);

    let r = completed_trace(&worker, result.trace_id);
    assert_eq!(
        r.trace_id, result.trace_id,
        "journal and result agree on the id"
    );
    assert_eq!(r.cold(), Some(true));
    assert!(r.completed());
    // The queue path was taken (bypass is disabled in the test config).
    assert!(kinds(&r).contains(&TraceEventKind::Enqueued));
    assert!(kinds(&r).contains(&TraceEventKind::AgentCalled));

    let hex = format!("{:016x}", result.trace_id);
    assert!(
        backend.observed_traces().contains(&hex),
        "async path must propagate {hex} over the agent hop"
    );

    worker.shutdown();
}
