//! Deterministic chaos harness: a worker over a fault-injecting backend.
//!
//! Three properties are pinned down end to end:
//!
//! 1. An injected cold-start failure is retried exactly `max_retries` times
//!    and then fails cleanly, with the whole story in the trace journal.
//! 2. A hung agent trips the agent-call deadline; the container is
//!    quarantined and the invocation completes on a fresh one.
//! 3. Two runs with identical seeds produce identical journal timelines
//!    (`journal_digest`), the property `scripts/check.sh` diffs for flakes.

use iluvatar_chaos::{sites, FaultInjector, FaultPlanConfig, FaultSpec};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::{
    journal_digest, InvokeError, ResilienceConfig, TraceEventKind, Worker, WorkerConfig,
};
use iluvatar_sync::SystemClock;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chaos_worker(
    faults: FaultPlanConfig,
    resilience: ResilienceConfig,
) -> (Worker, Arc<FaultInjector>) {
    let clock = SystemClock::shared();
    let sim = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let injector = Arc::new(FaultInjector::new(sim, faults));
    let cfg = WorkerConfig {
        resilience,
        ..WorkerConfig::for_testing()
    };
    let worker = Worker::new(
        cfg,
        Arc::clone(&injector) as Arc<dyn ContainerBackend>,
        clock,
    );
    worker
        .register(FunctionSpec::new("f", "1").with_timing(100, 400))
        .unwrap();
    (worker, injector)
}

/// `ResultReturned` lands just after the result reaches the caller; poll so
/// assertions never race the journaling of the final event.
fn completed_trace(worker: &Worker, id: u64) -> iluvatar_core::TraceRecord {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let r = worker.trace(id).expect("trace must be journaled");
        if r.completed() || Instant::now() > deadline {
            return r;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn count_kind(r: &iluvatar_core::TraceRecord, pred: impl Fn(&TraceEventKind) -> bool) -> usize {
    r.events.iter().filter(|e| pred(&e.kind)).count()
}

#[test]
fn cold_start_failures_retry_exactly_n_then_fail_cleanly() {
    // Every create fails; max_retries = 2 → exactly 3 attempts.
    let faults = FaultPlanConfig {
        seed: 7,
        create_fail: FaultSpec::on_occurrences(vec![0, 1, 2]),
        ..Default::default()
    };
    let resilience = ResilienceConfig {
        max_retries: 2,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        ..Default::default()
    };
    let (mut worker, injector) = chaos_worker(faults, resilience);

    let err = worker.invoke("f-1", "{}").unwrap_err();
    match &err {
        InvokeError::Backend(msg) => {
            assert!(
                msg.contains("injected cold-start failure"),
                "clean error: {msg}"
            )
        }
        other => panic!("expected a backend error, got {other:?}"),
    }

    // The backend saw exactly the 3 attempts and no more.
    let stats = injector.plan().stats();
    assert_eq!(stats.fired(sites::CREATE_FAIL), 3);

    let st = worker.status();
    assert_eq!(st.retries, 2, "one retry per allowed attempt");
    assert_eq!(st.dropped_retry_exhausted, 1);
    assert_eq!(st.completed, 0);

    // The journal tells the whole story for the single invocation.
    let tr = &worker.recent_traces(1)[0];
    let tr = completed_trace(&worker, tr.trace_id);
    assert_eq!(
        count_kind(&tr, |k| matches!(k, TraceEventKind::RetryScheduled { .. })),
        2,
        "events: {:?}",
        tr.events
    );
    assert_eq!(
        count_kind(&tr, |k| *k == TraceEventKind::RetriesExhausted),
        1
    );
    assert_eq!(
        count_kind(&tr, |k| *k == TraceEventKind::ResultReturned { ok: false }),
        1
    );

    worker.shutdown();
}

#[test]
fn hung_agent_trips_deadline_and_completes_on_fresh_container() {
    // First invoke hangs far past the agent timeout; the retry runs clean.
    let faults = FaultPlanConfig {
        seed: 11,
        invoke_hang: FaultSpec::on_occurrences(vec![0]),
        hang_ms: 1_500,
        ..Default::default()
    };
    let resilience = ResilienceConfig {
        max_retries: 2,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        agent_timeout_ms: 100,
        ..Default::default()
    };
    let (mut worker, _injector) = chaos_worker(faults, resilience);

    let started = Instant::now();
    let r = worker.invoke("f-1", "{}").unwrap();
    assert!(
        started.elapsed() < Duration::from_millis(1_400),
        "deadline must fire long before the 1.5s hang resolves"
    );
    assert!(
        r.cold,
        "the quarantined container forces a fresh cold start"
    );

    let st = worker.status();
    assert_eq!(st.agent_timeouts, 1);
    assert_eq!(st.quarantined, 1, "hung container left circulation");
    assert_eq!(st.retries, 1);
    assert_eq!(st.completed, 1);

    let tr = completed_trace(&worker, r.trace_id);
    assert_eq!(count_kind(&tr, |k| *k == TraceEventKind::AgentTimeout), 1);
    assert_eq!(
        count_kind(&tr, |k| *k == TraceEventKind::ContainerQuarantined),
        1
    );
    assert_eq!(
        count_kind(&tr, |k| *k
            == TraceEventKind::ContainerAcquired { cold: true }),
        2,
        "both attempts cold-started: {:?}",
        tr.events
    );
    assert_eq!(
        count_kind(&tr, |k| *k == TraceEventKind::ResultReturned { ok: true }),
        1
    );

    worker.shutdown();
}

/// One sequential chaos run; returns the digest of all journaled timelines.
fn run_digest(seed: u64, invocations: usize) -> u64 {
    let faults = FaultPlanConfig {
        seed,
        // The acceptance mix: cold-start failures plus occasional hangs.
        create_fail: FaultSpec::with_prob(0.05),
        invoke_hang: FaultSpec::with_prob(0.02),
        invoke_error: FaultSpec::with_prob(0.10),
        hang_ms: 150,
        ..Default::default()
    };
    let resilience = ResilienceConfig {
        max_retries: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        agent_timeout_ms: 40,
        ..Default::default()
    };
    let (mut worker, _injector) = chaos_worker(faults, resilience);
    let mut ids = Vec::new();
    for i in 0..invocations {
        match worker.invoke("f-1", &format!("{{\"i\":{i}}}")) {
            Ok(r) => ids.push(r.trace_id),
            // Failures (retry exhaustion) are part of the timeline too; the
            // trace is the newest journaled record.
            Err(_) => ids.push(worker.recent_traces(1)[0].trace_id),
        }
    }
    let records: Vec<_> = ids.iter().map(|&id| completed_trace(&worker, id)).collect();
    worker.shutdown();
    journal_digest(&records)
}

#[test]
fn identical_seeds_produce_identical_journal_timelines() {
    let a = run_digest(42, 30);
    let b = run_digest(42, 30);
    assert_eq!(a, b, "same seed, same workload → same timeline digest");

    let c = run_digest(43, 30);
    assert_ne!(a, c, "a different seed must change the fault pattern");
}

/// The conformance checker running *online*, as a live bus sink, while both
/// the backend (invoke errors) and the disk (fsync failures, torn writes)
/// misbehave: the stream must stay violation-free at every step, and the
/// fault plan must demonstrably exercise the WAL retry ladder.
#[test]
fn online_checker_stays_clean_under_backend_and_disk_chaos() {
    use iluvatar_chaos::{DiskFaultPlanConfig, FaultyStorage};
    use iluvatar_conformance::{Checker, CheckerSink};
    use iluvatar_core::{LifecycleConfig, TelemetrySink, WalConfig};
    use iluvatar_sync::RealStorage;

    let dir = std::env::temp_dir().join(format!("iluvatar-online-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();

    let clock = SystemClock::shared();
    let sim = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let injector = Arc::new(FaultInjector::new(
        sim,
        FaultPlanConfig {
            seed: 11,
            invoke_error: FaultSpec::with_prob(0.15),
            ..Default::default()
        },
    ));
    let storage = Arc::new(FaultyStorage::new(
        Arc::new(RealStorage),
        DiskFaultPlanConfig {
            seed: 11,
            fsync_fail: FaultSpec::every_nth(3),
            write_torn: FaultSpec::every_nth(7),
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        resilience: ResilienceConfig {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            ..Default::default()
        },
        lifecycle: LifecycleConfig {
            snapshot_every: 8,
            wal: WalConfig {
                fsync: "always".into(),
                ..Default::default()
            },
            ..LifecycleConfig::with_wal(&wal_path)
        },
        ..WorkerConfig::for_testing()
    };
    let mut worker =
        Worker::new_with_storage(cfg, injector as Arc<dyn ContainerBackend>, clock, storage);
    let sink = Arc::new(CheckerSink::new(Checker::new()));
    worker
        .telemetry()
        .add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    worker
        .register(FunctionSpec::new("f", "1").with_timing(100, 400))
        .unwrap();

    for i in 0..24 {
        // Serialize: each trace completes before the next starts emitting,
        // so stream order is sound for the per-invocation timeline model.
        if let Ok(h) = worker.async_invoke("f-1", &format!("{{\"i\":{i}}}")) {
            let _ = h.wait();
        }
        let live = sink.violations();
        assert!(live.is_empty(), "live violation mid-run: {live:?}");
    }
    worker.shutdown();
    let report = sink.finish();
    assert!(
        report.ok(),
        "online checker found violations: {:?}",
        report.violations
    );
    assert!(
        report
            .label_counts
            .get("wal_io:retry")
            .copied()
            .unwrap_or(0)
            > 0,
        "the disk fault plan must exercise the WAL retry ladder"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
