//! End-to-end acceptance for multi-tenant admission + DRR fair scheduling
//! (ISSUE acceptance bounds): under sustained backlog from competing tenants
//! a DRR worker's service split tracks the configured weights within ±10%,
//! and overload shedding hits best-effort tenants while guaranteed tenants
//! keep completing everything they were admitted for.

use iluvatar_admission::{AdmissionConfig, PriorityClass, TenantSpec};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::ResourceLimits;
use iluvatar_core::config::QueuePolicyKind;
use iluvatar_core::{FunctionSpec, InvokeError, Worker, WorkerConfig};
use iluvatar_sync::SystemClock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker over the simulated backend with modelled latencies shrunk 20×,
/// one execution slot (so DRR order == service order), and a 20ms quantum.
fn drr_worker(tenants: Vec<TenantSpec>) -> Worker {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.05,
            ..Default::default()
        },
    ));
    let mut cfg = WorkerConfig::for_testing();
    cfg.queue.policy = QueuePolicyKind::Drr;
    cfg.queue.drr_quantum_ms = 20;
    cfg.concurrency.limit = 1;
    cfg.admission = AdmissionConfig::enabled_with(tenants);
    Worker::new(cfg, backend, clock)
}

fn spec(name: &str, warm_ms: u64) -> FunctionSpec {
    FunctionSpec::new(name, "1")
        .with_timing(warm_ms, 0)
        .with_limits(ResourceLimits {
            cpus: 1.0,
            memory_mb: 64,
        })
}

fn served_of(w: &Worker, tenant: &str) -> u64 {
    w.tenant_stats()
        .iter()
        .find(|t| t.tenant == tenant)
        .map(|t| t.served)
        .unwrap_or(0)
}

/// Enqueue `backlog` invocations per tenant, serve until `target` total
/// completions, and return the per-tenant served counts at that instant.
/// Both tenants still hold backlog at the snapshot, so the split reflects
/// the scheduler's choices rather than queue exhaustion.
fn measure_split(w: &Worker, a: &str, b: &str, backlog: usize, target: u64) -> (u64, u64) {
    // Prime the characteristics store so queued items carry a learned cost.
    w.invoke_tenant("f-1", "{}", Some(a)).unwrap();
    let mut handles = Vec::with_capacity(backlog * 2);
    for _ in 0..backlog {
        handles.push(w.async_invoke_tenant("f-1", "{}", Some(a)).unwrap());
        handles.push(w.async_invoke_tenant("f-1", "{}", Some(b)).unwrap());
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (sa, sb) = (served_of(w, a), served_of(w, b));
        // The priming invocation is tenant `a`'s; don't count it.
        if sa - 1 + sb >= target || Instant::now() > deadline {
            return (sa - 1, sb);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn equal_weights_split_service_evenly() {
    let w = drr_worker(vec![TenantSpec::new("a"), TenantSpec::new("b")]);
    w.register(spec("f", 200)).unwrap();
    // 200 completions ≈ 50 DRR rounds at 2 serves/visit: the partial-round
    // quantization error is well under the ±10% acceptance bound.
    let (sa, sb) = measure_split(&w, "a", "b", 150, 200);
    let ratio = sa as f64 / sb as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "equal weights must split evenly, got a={sa} b={sb} (ratio {ratio:.3})"
    );
}

#[test]
fn three_to_one_weights_split_service_proportionally() {
    let w = drr_worker(vec![
        TenantSpec::new("gold").with_weight(3.0),
        TenantSpec::new("bronze").with_weight(1.0),
    ]);
    w.register(spec("f", 200)).unwrap();
    let (gold, bronze) = measure_split(&w, "gold", "bronze", 250, 200);
    let ratio = gold as f64 / bronze as f64;
    assert!(
        (2.7..=3.3).contains(&ratio),
        "3:1 weights must yield a 3:1 split ±10%, got gold={gold} bronze={bronze} (ratio {ratio:.3})"
    );
}

#[test]
fn guaranteed_tenant_unaffected_by_overload_shedding() {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.05,
            ..Default::default()
        },
    ));
    let mut cfg = WorkerConfig::for_testing();
    cfg.concurrency.limit = 1;
    cfg.admission = AdmissionConfig {
        enabled: true,
        shed_queue_delay_ms: 5,
        tenants: vec![
            TenantSpec::new("paid").with_class(PriorityClass::Guaranteed),
            TenantSpec::new("free").with_class(PriorityClass::BestEffort),
        ],
    };
    let w = Worker::new(cfg, backend, clock);
    w.register(spec("slow", 1500)).unwrap();

    // Saturate with guaranteed work so real queue delay develops.
    let handles: Vec<_> = (0..4)
        .map(|_| w.async_invoke_tenant("slow-1", "{}", Some("paid")).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while w.status().completed < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Best-effort traffic is shed under that overload; guaranteed is not.
    let mut free_shed = 0u64;
    for _ in 0..3 {
        match w.invoke_tenant("slow-1", "{}", Some("free")) {
            Err(InvokeError::Shed(_)) => free_shed += 1,
            Ok(_) => {}
            other => panic!("unexpected outcome for best-effort: {other:?}"),
        }
    }
    assert!(free_shed > 0, "overload must shed some best-effort traffic");
    let extra = w.async_invoke_tenant("slow-1", "{}", Some("paid")).unwrap();
    for h in handles {
        h.wait().unwrap();
    }
    extra.wait().unwrap();

    let stats = w.tenant_stats();
    let paid = stats.iter().find(|t| t.tenant == "paid").unwrap();
    let free = stats.iter().find(|t| t.tenant == "free").unwrap();
    assert_eq!(paid.shed, 0, "guaranteed class is never shed");
    assert_eq!(
        paid.admitted, paid.served,
        "every admitted guaranteed invoke completes"
    );
    assert_eq!(free.shed, free_shed);
}
