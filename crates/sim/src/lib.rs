//! Discrete-event keep-alive simulation.
//!
//! §6.1 evaluates keep-alive policies by replaying Azure-trace samples "in
//! our discrete-event keep-alive simulator". This crate is that simulator:
//!
//! * [`des`] — a minimal discrete-event engine (time-ordered event queue).
//! * [`keepalive`] — the cache simulator: replays a trace against any
//!   [`iluvatar_core::policies::KeepalivePolicy`], producing the cold-start
//!   ratio and execution-time-increase metrics of Figures 4 and 5, and (with
//!   drop-on-full semantics) the litmus/faasbench breakdowns of Figures 6–7.
//! * [`reuse`] — reuse distances and hit-ratio curves, the caching concepts
//!   the abstract applies to server provisioning.
//! * [`provisioning`] — the dynamic vertical-scaling controller of Figure 8,
//!   holding the cold-start ("miss") speed at a target by resizing the
//!   cache.
//!
//! Crucially the policies under simulation are the *same objects* the live
//! worker runs (§3.4's in-situ simulation argument): there is no duplicated
//! policy implementation to drift.

pub mod cluster;
pub mod des;
pub mod elastic;
pub mod keepalive;
pub mod provisioning;
pub mod reuse;

pub use cluster::{ClusterOutcome, ClusterSim, SimLbPolicy};
pub use elastic::{ElasticClusterSim, ElasticOutcome};
pub use keepalive::{KeepaliveSim, SimConfig, SimOutcome};
pub use provisioning::{DynamicScaler, ProvisioningConfig, ScalerSample};
pub use reuse::ReuseAnalysis;
