//! Cluster-scale discrete-event simulation.
//!
//! §3.4: "a large cluster can be simulated with multiple simulated
//! workers." Each worker is a [`KeepaliveSim`]; a load-balancing policy
//! (CH-BL by default) routes every trace event to one of them. This is the
//! methodology of the FaaS load-balancing work the paper builds on
//! (CH-BL evaluated over Azure-trace subsets in simulation).

use crate::keepalive::{KeepaliveSim, SimConfig, SimOutcome};
use iluvatar_lb::chbl::{ChBl, ChBlConfig};
use iluvatar_trace::azure::{FunctionProfile, TraceEvent};

/// Load-balancing policies available in simulation.
pub enum SimLbPolicy {
    /// Consistent hashing with bounded loads — the paper's default.
    ChBl(ChBlConfig),
    RoundRobin,
    LeastLoaded,
}

impl SimLbPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            SimLbPolicy::ChBl(_) => "CH-BL",
            SimLbPolicy::RoundRobin => "RoundRobin",
            SimLbPolicy::LeastLoaded => "LeastLoaded",
        }
    }
}

/// Per-cluster results.
pub struct ClusterOutcome {
    pub policy: &'static str,
    /// One outcome per worker, plus dispatch counts.
    pub workers: Vec<SimOutcome>,
    pub dispatched: Vec<u64>,
    pub forwarded: u64,
}

impl ClusterOutcome {
    pub fn total_warm(&self) -> u64 {
        self.workers.iter().map(|w| w.warm).sum()
    }

    pub fn total_cold(&self) -> u64 {
        self.workers.iter().map(|w| w.cold).sum()
    }

    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Cluster-wide warm (hit) ratio.
    pub fn warm_ratio(&self) -> f64 {
        let served = self.total_warm() + self.total_cold();
        if served == 0 {
            0.0
        } else {
            self.total_warm() as f64 / served as f64
        }
    }

    /// Coefficient of variation of per-worker dispatch counts: 0 = perfect
    /// balance; higher = skewed.
    pub fn dispatch_imbalance(&self) -> f64 {
        let n = self.dispatched.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.dispatched.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .dispatched
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// The cluster simulator.
pub struct ClusterSim {
    workers: Vec<KeepaliveSim>,
    /// Busy-container estimate per worker, refreshed per event.
    profiles: Vec<FunctionProfile>,
    policy: SimLbPolicy,
    ring: Option<ChBl>,
    rr_next: usize,
    dispatched: Vec<u64>,
    forwarded: u64,
    /// In-flight executions per worker: (finish_time sorted is overkill;
    /// keep counts via busy lists in workers). We approximate worker load
    /// as dispatches in the last window.
    recent: Vec<RecentWindow>,
}

/// Sliding 10-second dispatch counter as the load signal.
struct RecentWindow {
    events: std::collections::VecDeque<u64>,
}

impl RecentWindow {
    fn new() -> Self {
        Self {
            events: std::collections::VecDeque::new(),
        }
    }

    fn push(&mut self, t: u64) {
        self.events.push_back(t);
        let cutoff = t.saturating_sub(10_000);
        while self.events.front().map(|&f| f < cutoff).unwrap_or(false) {
            self.events.pop_front();
        }
    }

    fn load(&self, now: u64) -> f64 {
        let cutoff = now.saturating_sub(10_000);
        self.events.iter().filter(|&&t| t >= cutoff).count() as f64
    }
}

impl ClusterSim {
    /// `n` identical workers, each with `per_worker_cfg` (cache size etc.).
    pub fn new(
        n: usize,
        profiles: Vec<FunctionProfile>,
        per_worker_cfg: SimConfig,
        policy: SimLbPolicy,
    ) -> Self {
        assert!(n > 0);
        let ring = match &policy {
            SimLbPolicy::ChBl(cfg) => Some(ChBl::new(n, cfg.clone())),
            _ => None,
        };
        Self {
            workers: (0..n)
                .map(|_| KeepaliveSim::new(profiles.clone(), per_worker_cfg.clone()))
                .collect(),
            profiles,
            policy,
            ring,
            rr_next: 0,
            dispatched: vec![0; n],
            forwarded: 0,
            recent: (0..n).map(|_| RecentWindow::new()).collect(),
        }
    }

    fn pick(&mut self, fqdn: &str, now: u64) -> usize {
        match &self.policy {
            SimLbPolicy::ChBl(_) => {
                let loads: Vec<f64> = self.recent.iter().map(|r| r.load(now)).collect();
                let (w, hops) = self.ring.as_ref().unwrap().pick(fqdn, &loads);
                if hops > 0 {
                    self.forwarded += 1;
                }
                w
            }
            SimLbPolicy::RoundRobin => {
                let w = self.rr_next % self.workers.len();
                self.rr_next += 1;
                w
            }
            SimLbPolicy::LeastLoaded => {
                let loads: Vec<f64> = self.recent.iter().map(|r| r.load(now)).collect();
                (0..loads.len())
                    .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap())
                    .unwrap()
            }
        }
    }

    /// Route and process one arrival.
    pub fn on_event(&mut self, t: u64, func: u32) {
        let fqdn = self.profiles[func as usize].fqdn.clone();
        let w = self.pick(&fqdn, t);
        self.dispatched[w] += 1;
        self.recent[w].push(t);
        self.workers[w].on_event(t, func);
    }

    /// Replay a whole trace through the cluster.
    pub fn run(
        n: usize,
        profiles: Vec<FunctionProfile>,
        events: &[TraceEvent],
        per_worker_cfg: SimConfig,
        policy: SimLbPolicy,
    ) -> ClusterOutcome {
        let mut sim = Self::new(n, profiles, per_worker_cfg, policy);
        for e in events {
            sim.on_event(e.time_ms, e.func);
        }
        let end = events.last().map(|e| e.time_ms).unwrap_or(0);
        sim.finish(end)
    }

    pub fn finish(self, end: u64) -> ClusterOutcome {
        ClusterOutcome {
            policy: self.policy.name(),
            workers: self.workers.into_iter().map(|w| w.finish(end)).collect(),
            dispatched: self.dispatched,
            forwarded: self.forwarded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_core::config::KeepalivePolicyKind;

    fn profiles(n: usize) -> Vec<FunctionProfile> {
        (0..n)
            .map(|i| FunctionProfile {
                fqdn: format!("f{i}"),
                app: 0,
                mean_iat_ms: 5_000.0,
                warm_ms: 400,
                init_ms: 2_000,
                memory_mb: 128,
                diurnal: false,
            })
            .collect()
    }

    fn round_robin_events(fns: usize, gap: u64, duration: u64) -> Vec<TraceEvent> {
        let mut ev = Vec::new();
        let mut t = 0;
        let mut k = 0;
        while t < duration {
            ev.push(TraceEvent {
                time_ms: t,
                func: (k % fns) as u32,
            });
            k += 1;
            t += gap;
        }
        ev
    }

    #[test]
    fn chbl_beats_round_robin_on_warm_ratio() {
        // 13 functions over 4 workers: coprime, so round robin really does
        // spray every function across every worker.
        let events = round_robin_events(13, 500, 30 * 60_000);
        let chbl = ClusterSim::run(
            4,
            profiles(13),
            &events,
            SimConfig::new(KeepalivePolicyKind::Gdsf, 2_048),
            SimLbPolicy::ChBl(ChBlConfig::default()),
        );
        let rr = ClusterSim::run(
            4,
            profiles(13),
            &events,
            SimConfig::new(KeepalivePolicyKind::Gdsf, 2_048),
            SimLbPolicy::RoundRobin,
        );
        assert!(
            chbl.warm_ratio() > rr.warm_ratio(),
            "locality wins: CH-BL {:.3} vs RR {:.3}",
            chbl.warm_ratio(),
            rr.warm_ratio()
        );
        // CH-BL needs at most one cold start per function per home worker;
        // round robin cold-starts every function on every worker.
        assert!(chbl.total_cold() < rr.total_cold());
    }

    #[test]
    fn counts_conserved_across_workers() {
        let events = round_robin_events(8, 700, 10 * 60_000);
        let out = ClusterSim::run(
            3,
            profiles(8),
            &events,
            SimConfig::new(KeepalivePolicyKind::Lru, 4_096),
            SimLbPolicy::LeastLoaded,
        );
        let total = out.total_warm() + out.total_cold() + out.total_dropped();
        assert_eq!(total, events.len() as u64);
        assert_eq!(out.dispatched.iter().sum::<u64>(), events.len() as u64);
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let events = round_robin_events(5, 1_000, 10 * 60_000);
        let out = ClusterSim::run(
            4,
            profiles(5),
            &events,
            SimConfig::new(KeepalivePolicyKind::Lru, 4_096),
            SimLbPolicy::RoundRobin,
        );
        assert!(
            out.dispatch_imbalance() < 0.01,
            "cv {}",
            out.dispatch_imbalance()
        );
    }

    #[test]
    fn chbl_trades_balance_for_locality() {
        let events = round_robin_events(12, 500, 10 * 60_000);
        let chbl = ClusterSim::run(
            4,
            profiles(12),
            &events,
            SimConfig::new(KeepalivePolicyKind::Gdsf, 4_096),
            SimLbPolicy::ChBl(ChBlConfig::default()),
        );
        // Hash placement is imperfectly balanced but must touch most
        // workers with 12 functions.
        let active = chbl.dispatched.iter().filter(|&&d| d > 0).count();
        assert!(active >= 3, "dispatched {:?}", chbl.dispatched);
    }
}
