//! A minimal discrete-event engine: a time-ordered event queue with stable
//! FIFO ordering among simultaneous events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The event queue. `E` is the caller's event payload.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: std::collections::HashMap<u64, (u64, E)>,
    seq: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Schedule `event` at absolute time `at`. Panics on scheduling into
    /// the past — always a simulator bug.
    pub fn push(&mut self, at: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, id)));
        self.payloads.insert(id, (at, event));
    }

    /// Pop the earliest event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, id)) = self.heap.pop()?;
        let (_, e) = self.payloads.remove(&id).expect("payload exists");
        self.now = at;
        Some((at, e))
    }

    /// Peek the next event time without consuming it.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(100, ());
        q.pop();
        assert_eq!(q.now(), 100);
        q.push(100, ()); // same-time scheduling allowed
        q.push(150, ());
        assert_eq!(q.next_time(), Some(100));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(100, ());
        q.pop();
        q.push(50, ());
    }

    #[test]
    fn len_tracks() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
