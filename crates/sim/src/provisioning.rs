//! Dynamic vertical scaling of the keep-alive cache (Fig. 8).
//!
//! §6.3: "Our policy seeks to keep the miss speed (cold starts per second)
//! close to a pre-specified target ... the cache resizing is done only when
//! the miss speed error exceeds 30%, and we can see that the cache size
//! increases with the miss speed, and decreases with it." The proportional
//! controller below reproduces that behaviour: it samples the cold-miss
//! rate each control interval and, outside the error deadband, applies a
//! proportional size adjustment (deliberately conservative to avoid memory
//! fragmentation from frequent small changes).

use crate::keepalive::{KeepaliveSim, SimConfig, SimOutcome};
use iluvatar_trace::azure::{FunctionProfile, TraceEvent};

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ProvisioningConfig {
    /// Target miss speed, cold starts per second (paper: 0.0015).
    pub target_miss_per_sec: f64,
    /// Relative error deadband before any resize (paper: 30%).
    pub error_tolerance: f64,
    /// Proportional gain: fractional size change per unit relative error.
    /// Deliberately small — the paper's controller is "extremely
    /// conservative" to avoid memory fragmentation from frequent resizes.
    pub gain: f64,
    /// Clamp on the relative error fed to the controller; cold-start storms
    /// would otherwise command unbounded growth in one step.
    pub max_rel_err: f64,
    /// Control interval, virtual ms.
    pub interval_ms: u64,
    /// Cache size clamps, MB.
    pub min_mb: u64,
    pub max_mb: u64,
    /// Initial cache size, MB.
    pub initial_mb: u64,
}

impl Default for ProvisioningConfig {
    fn default() -> Self {
        Self {
            target_miss_per_sec: 0.0015,
            error_tolerance: 0.30,
            gain: 0.15,
            max_rel_err: 3.0,
            interval_ms: 5 * 60_000,
            min_mb: 1_000,
            max_mb: 20_000,
            initial_mb: 10_000,
        }
    }
}

/// One controller sample (a Fig. 8 data point).
#[derive(Debug, Clone, Copy)]
pub struct ScalerSample {
    pub t_ms: u64,
    pub cache_mb: u64,
    pub miss_per_sec: f64,
    pub resized: bool,
}

/// Result of a scaled run: the underlying outcome plus the timeseries.
pub struct ScaledRun {
    pub outcome: SimOutcome,
    pub samples: Vec<ScalerSample>,
}

impl ScaledRun {
    /// Time-weighted mean provisioned cache size over the run.
    pub fn mean_cache_mb(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.cache_mb as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Fraction of samples within the error band of the target.
    pub fn within_band(&self, cfg: &ProvisioningConfig) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let ok = self
            .samples
            .iter()
            .filter(|s| {
                let err =
                    (s.miss_per_sec - cfg.target_miss_per_sec).abs() / cfg.target_miss_per_sec;
                err <= cfg.error_tolerance
            })
            .count();
        ok as f64 / self.samples.len() as f64
    }
}

/// The proportional miss-speed controller.
///
/// Growth reacts immediately (misses are user-visible pain); shrinking is
/// damped — a reduced gain plus a two-interval hysteresis — because
/// reclaiming memory too eagerly causes eviction storms the next time the
/// working set returns ("our dynamic scaling is extremely conservative",
/// §6.3).
pub struct DynamicScaler {
    cfg: ProvisioningConfig,
}

impl DynamicScaler {
    pub fn new(cfg: ProvisioningConfig) -> Self {
        Self { cfg }
    }

    /// Replay `events` through a keep-alive simulation whose cache size is
    /// controlled live by this scaler.
    pub fn run(
        &self,
        profiles: Vec<FunctionProfile>,
        events: &[TraceEvent],
        sim_cfg: SimConfig,
    ) -> ScaledRun {
        let mut sim = KeepaliveSim::new(
            profiles,
            SimConfig {
                cache_mb: self.cfg.initial_mb,
                ..sim_cfg
            },
        );
        let mut samples = Vec::new();
        let mut next_ctl = self.cfg.interval_ms;
        let mut below_streak = 0u32;
        let end = events.last().map(|e| e.time_ms).unwrap_or(0);
        for e in events {
            while next_ctl <= e.time_ms {
                let s = self.control_tick(&mut sim, next_ctl, &mut below_streak);
                samples.push(s);
                next_ctl += self.cfg.interval_ms;
            }
            sim.on_event(e.time_ms, e.func);
        }
        let outcome = sim.finish(end);
        ScaledRun { outcome, samples }
    }

    fn control_tick(
        &self,
        sim: &mut KeepaliveSim,
        now: u64,
        below_streak: &mut u32,
    ) -> ScalerSample {
        let misses = sim.take_misses();
        let miss_per_sec = misses as f64 / (self.cfg.interval_ms as f64 / 1000.0);
        let target = self.cfg.target_miss_per_sec;
        let rel_err = ((miss_per_sec - target) / target).clamp(-1.0, self.cfg.max_rel_err);
        let mut resized = false;
        if rel_err > self.cfg.error_tolerance {
            *below_streak = 0;
            let factor = 1.0 + self.cfg.gain * rel_err;
            let new = ((sim.cache_mb() as f64 * factor).round() as i64)
                .clamp(self.cfg.min_mb as i64, self.cfg.max_mb as i64) as u64;
            if new != sim.cache_mb() {
                sim.resize(now, new);
                resized = true;
            }
        } else if rel_err < -self.cfg.error_tolerance {
            *below_streak += 1;
            // Shrink only after two consecutive quiet intervals, at a
            // third of the growth gain.
            if *below_streak >= 2 {
                let factor = 1.0 + self.cfg.gain / 3.0 * rel_err;
                let new = ((sim.cache_mb() as f64 * factor).round() as i64)
                    .clamp(self.cfg.min_mb as i64, self.cfg.max_mb as i64)
                    as u64;
                if new != sim.cache_mb() {
                    sim.resize(now, new);
                    resized = true;
                }
            }
        } else {
            *below_streak = 0;
        }
        ScalerSample {
            t_ms: now,
            cache_mb: sim.cache_mb(),
            miss_per_sec,
            resized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_core::config::KeepalivePolicyKind;

    fn profiles(n: usize) -> Vec<FunctionProfile> {
        (0..n)
            .map(|i| FunctionProfile {
                fqdn: format!("f{i}"),
                app: 0,
                mean_iat_ms: 60_000.0,
                warm_ms: 500,
                init_ms: 2_000,
                memory_mb: 200,
                diurnal: false,
            })
            .collect()
    }

    /// Round-robin arrivals over `n` functions every `gap` ms.
    fn round_robin(n: usize, gap: u64, duration: u64) -> Vec<TraceEvent> {
        let mut ev = Vec::new();
        let mut t = 0;
        let mut f = 0;
        while t < duration {
            ev.push(TraceEvent {
                time_ms: t,
                func: (f % n) as u32,
            });
            f += 1;
            t += gap;
        }
        ev
    }

    fn cfg() -> ProvisioningConfig {
        ProvisioningConfig {
            target_miss_per_sec: 0.01,
            error_tolerance: 0.30,
            gain: 0.15,
            max_rel_err: 3.0,
            interval_ms: 60_000,
            min_mb: 400,
            max_mb: 10_000,
            initial_mb: 4_000,
        }
    }

    #[test]
    fn shrinks_when_misses_below_target() {
        // One hot function: after the first cold start, zero misses — the
        // controller should shrink toward min.
        let run = DynamicScaler::new(cfg()).run(
            profiles(1),
            &round_robin(1, 5_000, 3 * 3_600_000),
            SimConfig::new(KeepalivePolicyKind::Gdsf, 4_000),
        );
        let last = run.samples.last().unwrap();
        assert!(
            last.cache_mb < 4_000,
            "cache should shrink from 4000, ended at {}",
            last.cache_mb
        );
        assert!(run.samples.iter().any(|s| s.resized));
    }

    #[test]
    fn grows_under_miss_pressure() {
        // 40 functions × 200MB = 8000MB working set, cache starts at 800:
        // constant misses → growth.
        let c = ProvisioningConfig {
            initial_mb: 800,
            ..cfg()
        };
        let run = DynamicScaler::new(c).run(
            profiles(40),
            &round_robin(40, 2_000, 2 * 3_600_000),
            SimConfig::new(KeepalivePolicyKind::Gdsf, 800),
        );
        let peak = run.samples.iter().map(|s| s.cache_mb).max().unwrap();
        assert!(
            peak > 800,
            "cache must grow above the initial 800MB, peaked {peak}"
        );
    }

    #[test]
    fn respects_clamps() {
        let c = ProvisioningConfig {
            min_mb: 1_000,
            max_mb: 2_000,
            initial_mb: 1_500,
            ..cfg()
        };
        let run = DynamicScaler::new(c).run(
            profiles(40),
            &round_robin(40, 1_000, 3_600_000),
            SimConfig::new(KeepalivePolicyKind::Gdsf, 1_500),
        );
        for s in &run.samples {
            assert!(s.cache_mb >= 1_000 && s.cache_mb <= 2_000);
        }
    }

    #[test]
    fn deadband_prevents_fiddling() {
        // Target exactly matching observed misses → no resizes.
        // One function, period 60s, always warm after first: misses ≈ 0;
        // target tiny → rel_err = -1 → would shrink. Instead pick target 0
        // is invalid; use a workload with stable small misses: 10 fns,
        // 300s period, cache big enough: after priming, zero misses.
        // Set target so low-miss means err within band: target 0.0001 and
        // misses 0 → rel err -1 (outside band). So instead verify the
        // inverse: with a huge tolerance nothing resizes.
        let c = ProvisioningConfig {
            error_tolerance: 1e9,
            ..cfg()
        };
        let run = DynamicScaler::new(c).run(
            profiles(5),
            &round_robin(5, 10_000, 3_600_000),
            SimConfig::new(KeepalivePolicyKind::Gdsf, 4_000),
        );
        assert!(run.samples.iter().all(|s| !s.resized));
        assert_eq!(run.samples.last().unwrap().cache_mb, 4_000);
    }

    #[test]
    fn saves_memory_versus_static_while_serving() {
        // The Fig. 8 claim: dynamic sizing averages below a conservative
        // static provision without large cold-start regressions.
        let static_mb = 4_000u64;
        let events = round_robin(10, 4_000, 4 * 3_600_000);
        let stat = KeepaliveSim::run(
            profiles(10),
            &events,
            SimConfig::new(KeepalivePolicyKind::Gdsf, static_mb),
        );
        let c = ProvisioningConfig {
            target_miss_per_sec: 0.01,
            initial_mb: static_mb,
            min_mb: 500,
            ..cfg()
        };
        let dyn_run = DynamicScaler::new(c).run(
            profiles(10),
            &events,
            SimConfig::new(KeepalivePolicyKind::Gdsf, static_mb),
        );
        assert!(
            dyn_run.mean_cache_mb() < static_mb as f64 * 0.8,
            "dynamic mean {} should undercut static {static_mb}",
            dyn_run.mean_cache_mb()
        );
        // Service stays comparable: the working set still fits most of the
        // time, so cold starts must not explode.
        assert!(
            dyn_run.outcome.cold_ratio() <= stat.cold_ratio() + 0.15,
            "dynamic cold ratio {} vs static {}",
            dyn_run.outcome.cold_ratio(),
            stat.cold_ratio()
        );
    }
}
