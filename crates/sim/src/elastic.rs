//! Elastic-fleet discrete-event simulation: the fleet-size dimension.
//!
//! [`crate::cluster::ClusterSim`] replays a trace over a *fixed* set of
//! simulated workers. This module adds the dimension the autoscaler
//! controls: a [`ScalingPolicy`] is evaluated at a fixed control interval
//! over the simulated cluster's queue state, and its decisions activate
//! fresh workers (cold caches — scale-up pays real cold starts, exactly
//! the trade-off the bench sweep measures) or drain existing ones (they
//! stop receiving work, finish their backlog, then retire).
//!
//! Everything is virtual time: policies see `now_ms` from the trace, the
//! same injected-clock discipline the live fleet uses, so a replay is
//! bit-deterministic for a given trace and configuration.

use crate::keepalive::{KeepaliveSim, SimConfig, SimOutcome};
use iluvatar_autoscale::{
    AutoscaleConfig, FleetObservation, ScaleDirection, ScaleEvent, ScalingDecision, ScalingPolicy,
};
use iluvatar_trace::azure::{FunctionProfile, TraceEvent};
use std::collections::BTreeMap;

/// One simulated worker slot in the elastic fleet.
struct SimSlot {
    sim: KeepaliveSim,
    draining: bool,
    /// Retired: no longer routed to, backlog finished. The simulator keeps
    /// the slot for its final outcome counters.
    stopped: bool,
}

/// Full-run results of one elastic replay.
pub struct ElasticOutcome {
    pub policy: String,
    /// Outcome of every worker that ever ran (activation order).
    pub workers: Vec<SimOutcome>,
    /// Applied scaling decisions, oldest first.
    pub events: Vec<ScaleEvent>,
    /// `(t_ms, live)` fleet trajectory sampled at each control tick.
    pub fleet_sizes: Vec<(u64, usize)>,
    /// Peak live workers.
    pub peak_fleet: usize,
    /// Time-weighted mean live workers.
    pub mean_fleet: f64,
    /// Integrated warm cache occupancy across the live fleet, GB·seconds —
    /// the memory bill for keeping containers warm. Idle over-provisioned
    /// fleets grow this without improving the cold ratio.
    pub warm_gb_seconds: f64,
    /// Cold-start recovery times for functions whose *only* warm residency
    /// a scale-down destroyed: ms from the drain decision until the
    /// function is warm again (its next arrival finishes paying init). One
    /// entry per recovered eviction — the hidden cost of shrinking the
    /// fleet that the cold ratio alone averages away.
    pub evicted_recovery_ms: Vec<u64>,
    /// Scale-down evictions whose function never arrived again before the
    /// trace ended (recovery unbounded within the run).
    pub evicted_unrecovered: u64,
}

impl ElasticOutcome {
    pub fn total_warm(&self) -> u64 {
        self.workers.iter().map(|w| w.warm).sum()
    }

    pub fn total_cold(&self) -> u64 {
        self.workers.iter().map(|w| w.cold).sum()
    }

    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Cluster-wide cold-start ratio among served invocations.
    pub fn cold_ratio(&self) -> f64 {
        let served = self.total_warm() + self.total_cold();
        if served == 0 {
            0.0
        } else {
            self.total_cold() as f64 / served as f64
        }
    }

    /// Mean scale-down eviction recovery time, ms (0 when none recovered).
    pub fn mean_recovery_ms(&self) -> f64 {
        if self.evicted_recovery_ms.is_empty() {
            0.0
        } else {
            self.evicted_recovery_ms.iter().sum::<u64>() as f64
                / self.evicted_recovery_ms.len() as f64
        }
    }

    /// Worst scale-down eviction recovery time, ms.
    pub fn max_recovery_ms(&self) -> u64 {
        self.evicted_recovery_ms.iter().copied().max().unwrap_or(0)
    }
}

/// The elastic cluster simulator: a scaling policy driving fleet size
/// while a trace replays.
pub struct ElasticClusterSim {
    profiles: Vec<FunctionProfile>,
    per_worker_cfg: SimConfig,
    autoscale: AutoscaleConfig,
    policy: Box<dyn ScalingPolicy>,
    slots: Vec<SimSlot>,
    rr_next: usize,
    next_tick: u64,
    /// Arrivals per function since the last control tick.
    arrivals: BTreeMap<String, u64>,
    events: Vec<ScaleEvent>,
    fleet_sizes: Vec<(u64, usize)>,
    /// Estimated per-invocation service time, ms, for the queue-delay
    /// proxy: mean warm execution across the profile set.
    mean_warm_ms: f64,
    // Integrals, rectangle rule between ticks.
    last_integral_t: u64,
    fleet_acc: f64,
    warm_mb_ms_acc: f64,
    /// Functions whose only warm residency a scale-down destroyed:
    /// fn index → drain time. Cleared at the function's next arrival.
    evicted_pending: BTreeMap<u32, u64>,
    evicted_recovery_ms: Vec<u64>,
}

impl ElasticClusterSim {
    pub fn new(
        profiles: Vec<FunctionProfile>,
        per_worker_cfg: SimConfig,
        autoscale: AutoscaleConfig,
    ) -> Self {
        assert!(autoscale.max_workers >= autoscale.min_workers.max(1));
        let policy = autoscale.build_policy();
        let mean_warm_ms = if profiles.is_empty() {
            1.0
        } else {
            profiles.iter().map(|p| p.warm_ms as f64).sum::<f64>() / profiles.len() as f64
        };
        let mut sim = Self {
            policy,
            slots: Vec::new(),
            rr_next: 0,
            next_tick: autoscale.interval_ms.max(1),
            arrivals: BTreeMap::new(),
            events: Vec::new(),
            fleet_sizes: Vec::new(),
            mean_warm_ms: mean_warm_ms.max(1.0),
            last_integral_t: 0,
            fleet_acc: 0.0,
            warm_mb_ms_acc: 0.0,
            evicted_pending: BTreeMap::new(),
            evicted_recovery_ms: Vec::new(),
            profiles,
            per_worker_cfg,
            autoscale,
        };
        for _ in 0..sim.autoscale.min_workers.max(1) {
            sim.activate();
        }
        sim
    }

    /// Bring one fresh worker (cold cache) into the routable set. Reuses a
    /// stopped slot's position only logically — each activation is a new
    /// simulator, matching a newly spawned worker.
    fn activate(&mut self) {
        self.slots.push(SimSlot {
            sim: KeepaliveSim::new(self.profiles.clone(), self.per_worker_cfg.clone()),
            draining: false,
            stopped: false,
        });
    }

    fn live_indices(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| !self.slots[i].draining && !self.slots[i].stopped)
            .collect()
    }

    /// Route one arrival: least-queue among live workers, round-robin on
    /// ties (deterministic).
    fn pick(&mut self, live: &[usize]) -> usize {
        let min_q = live
            .iter()
            .map(|&i| self.slots[i].sim.queue_len())
            .min()
            .unwrap_or(0);
        let candidates: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| self.slots[i].sim.queue_len() == min_q)
            .collect();
        let w = candidates[self.rr_next % candidates.len()];
        self.rr_next += 1;
        w
    }

    /// Queue-state observation at control-tick time `t`. The queue-delay
    /// proxy converts backlog depth to time: `queued × mean_warm /
    /// concurrency` per worker — the delay the next arrival would see.
    fn observe(&mut self, t: u64) -> FleetObservation {
        let live = self.live_indices();
        let concurrency = self.per_worker_cfg.concurrency.unwrap_or(usize::MAX);
        let mut queued = 0u64;
        let mut running = 0u64;
        let mut delay_sum = 0.0f64;
        let mut max_delay = 0u64;
        for &i in &live {
            let q = self.slots[i].sim.queue_len() as u64;
            queued += q;
            running += self.slots[i].sim.in_flight() as u64;
            let per_slot = concurrency.min(1_000_000) as f64;
            let delay = q as f64 * self.mean_warm_ms / per_slot.max(1.0);
            delay_sum += delay;
            max_delay = max_delay.max(delay as u64);
        }
        let per_fn: Vec<(String, u64)> = std::mem::take(&mut self.arrivals).into_iter().collect();
        FleetObservation {
            now_ms: t,
            live: live.len(),
            draining: self
                .slots
                .iter()
                .filter(|s| s.draining && !s.stopped)
                .count(),
            queued,
            running,
            mean_queue_delay_ms: if live.is_empty() {
                0.0
            } else {
                delay_sum / live.len() as f64
            },
            max_queue_delay_ms: max_delay,
            concurrency_limit: self.per_worker_cfg.concurrency.unwrap_or(0),
            pull_queue_depth: 0,
            arrivals: per_fn.iter().map(|(_, c)| c).sum(),
            per_fn_arrivals: per_fn,
        }
    }

    fn integrate_to(&mut self, t: u64) {
        let dt = t.saturating_sub(self.last_integral_t) as f64;
        if dt > 0.0 {
            let live = self.live_indices();
            self.fleet_acc += live.len() as f64 * dt;
            let warm_mb: f64 = live
                .iter()
                .map(|&i| self.slots[i].sim.used_mb() as f64)
                .sum();
            self.warm_mb_ms_acc += warm_mb * dt;
            self.last_integral_t = t;
        }
    }

    /// Run control ticks up to (and including) time `t`.
    fn run_ticks(&mut self, t: u64) {
        while self.next_tick <= t {
            let tick_t = self.next_tick;
            self.next_tick += self.autoscale.interval_ms.max(1);
            // Advance every worker to the tick so queue state is current,
            // and retire drained workers whose backlog finished.
            for slot in self.slots.iter_mut().filter(|s| !s.stopped) {
                slot.sim.advance(tick_t);
                if slot.draining && slot.sim.queue_len() == 0 && slot.sim.in_flight() == 0 {
                    slot.stopped = true;
                }
            }
            self.integrate_to(tick_t);
            let obs = self.observe(tick_t);
            let live_before = obs.live;
            match self.policy.evaluate(&obs) {
                ScalingDecision::Hold => {}
                ScalingDecision::ScaleUp { add, reason } => {
                    let room = self.autoscale.max_workers.saturating_sub(live_before);
                    let add = add.min(room);
                    if add > 0 {
                        for _ in 0..add {
                            self.activate();
                        }
                        self.events.push(ScaleEvent {
                            t_ms: tick_t,
                            direction: ScaleDirection::Up,
                            reason: reason.to_string(),
                            from: live_before,
                            to: live_before + add,
                        });
                    }
                }
                ScalingDecision::ScaleDown { remove, reason } => {
                    let floor = self.autoscale.min_workers.max(1);
                    let remove = remove.min(live_before.saturating_sub(floor));
                    if remove > 0 {
                        // Drain the most recently activated live workers
                        // (LIFO): least cache value, deterministic order.
                        let live = self.live_indices();
                        let victims: Vec<usize> = live.iter().rev().take(remove).copied().collect();
                        for &i in &victims {
                            self.slots[i].draining = true;
                        }
                        // Warm-set damage: a draining worker takes no new
                        // arrivals, so any function resident *only* on the
                        // victims loses all usable warm capacity at the
                        // drain decision. Recovery clocks start here.
                        let survivors = self.live_indices();
                        for &i in &victims {
                            for f in self.slots[i].sim.resident_fns() {
                                let elsewhere =
                                    survivors.iter().any(|&j| self.slots[j].sim.is_resident(f));
                                if !elsewhere {
                                    self.evicted_pending.entry(f).or_insert(tick_t);
                                }
                            }
                        }
                        self.events.push(ScaleEvent {
                            t_ms: tick_t,
                            direction: ScaleDirection::Down,
                            reason: reason.to_string(),
                            from: live_before,
                            to: live_before - remove,
                        });
                    }
                }
            }
            self.fleet_sizes.push((tick_t, self.live_indices().len()));
        }
    }

    /// Route and process one arrival at trace time `t`.
    pub fn on_event(&mut self, t: u64, func: u32) {
        self.run_ticks(t);
        self.integrate_to(t);
        let fqdn = self.profiles[func as usize].fqdn.clone();
        *self.arrivals.entry(fqdn).or_default() += 1;
        let live = self.live_indices();
        let w = self.pick(&live);
        // Eviction recovery: the first arrival after a scale-down destroyed
        // the function's warm set ends the outage — warm again once this
        // serve finishes init (zero extra if a preload already restored it).
        if let Some(drain_t) = self.evicted_pending.remove(&func) {
            let init = if self.slots[w].sim.is_resident(func) {
                0
            } else {
                self.profiles[func as usize].init_ms
            };
            self.evicted_recovery_ms
                .push(t.saturating_sub(drain_t) + init);
        }
        self.slots[w].sim.on_event(t, func);
    }

    /// Replay a whole trace with the given autoscale configuration.
    pub fn run(
        profiles: Vec<FunctionProfile>,
        events: &[TraceEvent],
        per_worker_cfg: SimConfig,
        autoscale: AutoscaleConfig,
    ) -> ElasticOutcome {
        let mut sim = Self::new(profiles, per_worker_cfg, autoscale);
        for e in events {
            sim.on_event(e.time_ms, e.func);
        }
        let end = events.last().map(|e| e.time_ms).unwrap_or(0);
        sim.finish(end)
    }

    /// Let queues drain, then collect results.
    pub fn finish(mut self, end: u64) -> ElasticOutcome {
        self.run_ticks(end);
        self.integrate_to(end);
        let peak = self.fleet_sizes.iter().map(|&(_, n)| n).max().unwrap_or(0);
        let mean = if end > 0 {
            self.fleet_acc / end as f64
        } else {
            0.0
        };
        ElasticOutcome {
            policy: self.policy.name().to_string(),
            workers: self.slots.into_iter().map(|s| s.sim.finish(end)).collect(),
            events: self.events,
            fleet_sizes: self.fleet_sizes,
            peak_fleet: peak,
            mean_fleet: mean,
            // MB·ms → GB·s.
            warm_gb_seconds: self.warm_mb_ms_acc / 1024.0 / 1000.0,
            evicted_recovery_ms: self.evicted_recovery_ms,
            evicted_unrecovered: self.evicted_pending.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_autoscale::ScalingPolicyKind;
    use iluvatar_core::config::KeepalivePolicyKind;

    fn profiles(n: usize) -> Vec<FunctionProfile> {
        (0..n)
            .map(|i| FunctionProfile {
                fqdn: format!("f{i}"),
                app: 0,
                mean_iat_ms: 1_000.0,
                warm_ms: 200,
                init_ms: 1_500,
                memory_mb: 128,
                diurnal: false,
            })
            .collect()
    }

    /// Quiet → burst → quiet.
    fn burst_trace() -> Vec<TraceEvent> {
        let mut ev = Vec::new();
        let mut t = 0u64;
        while t < 60_000 {
            ev.push(TraceEvent {
                time_ms: t,
                func: 0,
            });
            t += 2_000;
        }
        // Burst: 8 fns × 1 event per 50 ms for a minute.
        while t < 120_000 {
            for f in 0..8u32 {
                ev.push(TraceEvent {
                    time_ms: t,
                    func: f,
                });
            }
            t += 50;
        }
        while t < 240_000 {
            ev.push(TraceEvent {
                time_ms: t,
                func: 0,
            });
            t += 2_000;
        }
        ev
    }

    fn scale_cfg(kind: ScalingPolicyKind) -> AutoscaleConfig {
        let mut c = AutoscaleConfig::enabled_with(kind);
        c.min_workers = 1;
        c.max_workers = 6;
        c.interval_ms = 1_000;
        c.scale_up_cooldown_ms = 1_000;
        c.scale_down_cooldown_ms = 10_000;
        c
    }

    fn worker_cfg() -> SimConfig {
        let mut c = SimConfig::new(KeepalivePolicyKind::Gdsf, 2_048);
        c.concurrency = Some(4);
        c.backlog_cap = 10_000;
        c
    }

    #[test]
    fn burst_grows_then_shrinks_the_fleet() {
        let out = ElasticClusterSim::run(
            profiles(8),
            &burst_trace(),
            worker_cfg(),
            scale_cfg(ScalingPolicyKind::ReactiveQueueDelay),
        );
        assert!(
            out.peak_fleet >= 3,
            "burst must grow the fleet, peak {}",
            out.peak_fleet
        );
        let last = out.fleet_sizes.last().unwrap().1;
        assert_eq!(last, 1, "quiet tail must shrink back to the floor");
        assert!(out.events.iter().any(|e| e.direction == ScaleDirection::Up));
        assert!(out
            .events
            .iter()
            .any(|e| e.direction == ScaleDirection::Down));
        // Elasticity must not drop work: the backlog cap is generous.
        assert_eq!(out.total_dropped(), 0);
        let served = out.total_warm() + out.total_cold();
        assert_eq!(served, burst_trace().len() as u64);
    }

    #[test]
    fn scale_down_evictions_are_tracked_and_recovered() {
        let out = ElasticClusterSim::run(
            profiles(8),
            &burst_trace(),
            worker_cfg(),
            scale_cfg(ScalingPolicyKind::ReactiveQueueDelay),
        );
        assert!(
            out.events
                .iter()
                .any(|e| e.direction == ScaleDirection::Down),
            "the quiet tail must trigger a scale-down"
        );
        // The burst spreads fns 1..8 across the scaled-up workers; draining
        // them must strand at least one function's warm set, and each
        // stranding is either recovered (fn arrived again) or still pending
        // at the end — never silently dropped.
        let total = out.evicted_recovery_ms.len() as u64 + out.evicted_unrecovered;
        assert!(total > 0, "scale-down must destroy some warm residency");
        for &ms in &out.evicted_recovery_ms {
            assert!(ms > 0, "recovery after an eviction cannot be free");
        }
        if !out.evicted_recovery_ms.is_empty() {
            assert!(out.mean_recovery_ms() > 0.0);
            assert!(out.max_recovery_ms() as f64 >= out.mean_recovery_ms());
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let run = || {
            let out = ElasticClusterSim::run(
                profiles(8),
                &burst_trace(),
                worker_cfg(),
                scale_cfg(ScalingPolicyKind::PredictiveMpc),
            );
            (
                out.events.clone(),
                out.fleet_sizes.clone(),
                out.total_cold(),
                out.total_warm(),
            )
        };
        let (e1, f1, c1, w1) = run();
        let (e2, f2, c2, w2) = run();
        assert_eq!(e1, e2, "scale-event sequences must replay identically");
        assert_eq!(f1, f2);
        assert_eq!((c1, w1), (c2, w2));
    }

    #[test]
    fn bigger_static_fleet_wastes_more_warm_memory() {
        // Pin min == max: a degenerate "autoscaler" that holds N workers.
        let fixed = |n: usize| {
            let mut c = scale_cfg(ScalingPolicyKind::ReactiveQueueDelay);
            c.min_workers = n;
            c.max_workers = n;
            ElasticClusterSim::run(profiles(8), &burst_trace(), worker_cfg(), c)
        };
        let small = fixed(1);
        let big = fixed(6);
        assert!(
            big.warm_gb_seconds > small.warm_gb_seconds,
            "6 always-on workers must burn more warm GB·s: {} vs {}",
            big.warm_gb_seconds,
            small.warm_gb_seconds
        );
        assert_eq!(big.mean_fleet.round() as usize, 6);
    }

    #[test]
    fn mpc_preprovisions_no_later_than_reactive() {
        let first_up = |kind| {
            let out =
                ElasticClusterSim::run(profiles(8), &burst_trace(), worker_cfg(), scale_cfg(kind));
            out.events
                .iter()
                .find(|e| e.direction == ScaleDirection::Up)
                .map(|e| e.t_ms)
                .unwrap_or(u64::MAX)
        };
        let mpc = first_up(ScalingPolicyKind::PredictiveMpc);
        let reactive = first_up(ScalingPolicyKind::ReactiveQueueDelay);
        assert!(
            mpc <= reactive,
            "MPC {mpc}ms should not lag reactive {reactive}ms"
        );
    }
}
