//! The discrete-event keep-alive cache simulator.
//!
//! Replays a trace of function invocations against a keep-alive policy and
//! a fixed (or dynamically resized) memory capacity, reporting the paper's
//! two metrics (§6): the **cold-start ratio** (Fig. 5) and the **increase
//! in execution time** due to cold starts (Fig. 4), plus the
//! warm/cold/dropped breakdowns of the litmus experiments (Figs. 6–7).
//!
//! Semantics:
//!
//! * A warm, idle container of the function (not still executing a
//!   previous invocation) serves a **warm start** costing `warm_ms`.
//! * Otherwise the invocation is a **cold start**: it needs `memory_mb` of
//!   cache, evicting idle containers in policy-priority order. Its added
//!   user-visible latency is `init_ms` (the paper's `max − avg` estimate).
//! * Concurrent invocations of one function need distinct containers — the
//!   "spawn start" effect (§4).
//! * If memory cannot be freed (everything is busy), the invocation either
//!   runs ephemerally without entering the cache (Fig. 4/5 semantics) or is
//!   **dropped** (`drop_on_full`, the OpenWhisk-comparison semantics of
//!   Figs. 6–7).
//! * Expiry sweeps run on a virtual-minute cadence, mirroring the worker's
//!   background eviction thread.
//! * With `enable_preload`, HIST's predicted invocations re-insert
//!   containers ahead of arrival (its "TTL + prefetching" behaviour).

use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_core::policies::{make_policy, EntryMeta, KeepalivePolicy};
use iluvatar_trace::azure::{FunctionProfile, TraceEvent};
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub policy: KeepalivePolicyKind,
    /// Keep-alive cache capacity, MB.
    pub cache_mb: u64,
    /// TTL for the TTL policy (default: 10 minutes).
    pub ttl_ms: u64,
    /// Drop requests that cannot be placed (Figs. 6–7) instead of running
    /// them ephemerally outside the cache (Figs. 4–5).
    pub drop_on_full: bool,
    /// Expiry sweep cadence, virtual ms.
    pub sweep_period_ms: u64,
    /// HIST prefetching.
    pub enable_preload: bool,
    /// Invoker concurrency limit: at most this many invocations execute
    /// simultaneously; excess arrivals wait in a FIFO backlog. `None` =
    /// unbounded (pure cache semantics, Figs. 4–5).
    pub concurrency: Option<usize>,
    /// Backlog bound; beyond it arrivals are dropped (the OpenWhisk
    /// buffer-overflow behaviour behind Figs. 6–7).
    pub backlog_cap: usize,
}

impl SimConfig {
    pub fn new(policy: KeepalivePolicyKind, cache_mb: u64) -> Self {
        Self {
            policy,
            cache_mb,
            ttl_ms: 10 * 60 * 1000,
            drop_on_full: false,
            sweep_period_ms: 60_000,
            enable_preload: policy == KeepalivePolicyKind::Hist,
            concurrency: None,
            backlog_cap: 64,
        }
    }
}

/// Per-function outcome counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnOutcome {
    pub warm: u64,
    pub cold: u64,
    pub dropped: u64,
}

impl FnOutcome {
    pub fn served(&self) -> u64 {
        self.warm + self.cold
    }

    /// Warm-start (hit) ratio among served invocations.
    pub fn hit_ratio(&self) -> f64 {
        if self.served() == 0 {
            0.0
        } else {
            self.warm as f64 / self.served() as f64
        }
    }
}

/// Full-run results.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    pub policy: &'static str,
    pub cache_mb: u64,
    pub total: u64,
    pub warm: u64,
    pub cold: u64,
    pub dropped: u64,
    /// Background preload cold starts (HIST), not user-visible.
    pub preloads: u64,
    /// User-visible added latency from cold starts, ms.
    pub cold_penalty_ms: u64,
    /// Sum of warm execution times of served invocations, ms.
    pub base_exec_ms: u64,
    pub per_function: Vec<FnOutcome>,
    pub evictions: u64,
    pub expirations: u64,
    /// Time-weighted mean cache occupancy, MB.
    pub mean_used_mb: f64,
    pub peak_used_mb: u64,
}

impl SimOutcome {
    /// Fraction of served invocations that were cold (Fig. 5 y-axis).
    pub fn cold_ratio(&self) -> f64 {
        let served = self.warm + self.cold;
        if served == 0 {
            0.0
        } else {
            self.cold as f64 / served as f64
        }
    }

    /// Percent increase in execution time due to cold starts, averaged
    /// over all invocations (Fig. 4 y-axis).
    pub fn exec_increase_pct(&self) -> f64 {
        if self.base_exec_ms == 0 {
            0.0
        } else {
            self.cold_penalty_ms as f64 / self.base_exec_ms as f64 * 100.0
        }
    }

    pub fn drop_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.dropped as f64 / self.total as f64
        }
    }
}

struct CacheItem {
    id: u64,
    meta: EntryMeta,
    /// The container is executing until this time; idle (evictable,
    /// warm-hit eligible) afterwards.
    busy_until: u64,
}

/// The stepwise simulator; drive with [`KeepaliveSim::on_event`] or use
/// [`KeepaliveSim::run`] for a whole trace.
pub struct KeepaliveSim {
    cfg: SimConfig,
    policy: Box<dyn KeepalivePolicy>,
    profiles: Vec<FunctionProfile>,
    /// Cache items per function index.
    items: Vec<Vec<CacheItem>>,
    freq: Vec<u64>,
    next_id: u64,
    used_mb: u64,
    next_sweep: u64,
    /// Scheduled HIST preloads: (fire_time, fn index), min-heap.
    preloads: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    // Counters.
    out: Vec<FnOutcome>,
    preload_count: u64,
    cold_penalty_ms: u64,
    base_exec_ms: u64,
    evictions: u64,
    expirations: u64,
    /// Misses since the last `take_misses` call (provisioning input).
    misses_window: u64,
    /// Invoker-slot model: finish times of executing invocations and the
    /// FIFO backlog of arrivals waiting for a slot.
    executing: BinaryHeap<std::cmp::Reverse<u64>>,
    backlog: std::collections::VecDeque<u32>,
    backlogged: u64,
    // Time-weighted occupancy.
    occ_acc: f64,
    occ_last_t: u64,
    peak_used_mb: u64,
}

impl KeepaliveSim {
    pub fn new(profiles: Vec<FunctionProfile>, cfg: SimConfig) -> Self {
        let n = profiles.len();
        let policy = make_policy(cfg.policy, cfg.ttl_ms);
        Self {
            policy,
            profiles,
            items: (0..n).map(|_| Vec::new()).collect(),
            freq: vec![0; n],
            next_id: 0,
            used_mb: 0,
            next_sweep: cfg.sweep_period_ms,
            preloads: BinaryHeap::new(),
            out: vec![FnOutcome::default(); n],
            preload_count: 0,
            cold_penalty_ms: 0,
            base_exec_ms: 0,
            evictions: 0,
            expirations: 0,
            misses_window: 0,
            executing: BinaryHeap::new(),
            backlog: std::collections::VecDeque::new(),
            backlogged: 0,
            occ_acc: 0.0,
            occ_last_t: 0,
            peak_used_mb: 0,
            cfg,
        }
    }

    /// Replay a full event stream.
    pub fn run(
        profiles: Vec<FunctionProfile>,
        events: &[TraceEvent],
        cfg: SimConfig,
    ) -> SimOutcome {
        let mut sim = Self::new(profiles, cfg);
        for e in events {
            sim.on_event(e.time_ms, e.func);
        }
        let end = events.last().map(|e| e.time_ms).unwrap_or(0);
        sim.finish(end)
    }

    fn occupancy_tick(&mut self, now: u64) {
        let dt = now.saturating_sub(self.occ_last_t);
        self.occ_acc += dt as f64 * self.used_mb as f64;
        self.occ_last_t = now;
        self.peak_used_mb = self.peak_used_mb.max(self.used_mb);
    }

    /// Resize the cache (dynamic provisioning); shrinking evicts idle
    /// containers immediately to fit.
    pub fn resize(&mut self, now: u64, new_mb: u64) {
        self.occupancy_tick(now);
        self.cfg.cache_mb = new_mb;
        if self.used_mb > new_mb {
            let over = self.used_mb - new_mb;
            self.evict_idle(now, over);
        }
    }

    pub fn cache_mb(&self) -> u64 {
        self.cfg.cache_mb
    }

    pub fn used_mb(&self) -> u64 {
        self.used_mb
    }

    /// Cold misses since the last call (the provisioning controller's
    /// miss-speed numerator).
    pub fn take_misses(&mut self) -> u64 {
        std::mem::take(&mut self.misses_window)
    }

    /// Process one arrival.
    pub fn on_event(&mut self, t: u64, func: u32) {
        // Housekeeping strictly before the arrival.
        self.run_sweeps(t);
        self.fire_preloads(t);
        self.occupancy_tick(t);
        self.drain_completions(t);

        // Invoker concurrency (§2.2's overcommitted invoker slots): full
        // slots push the arrival into the backlog; a full backlog drops it.
        if let Some(limit) = self.cfg.concurrency {
            if self.executing.len() >= limit {
                if self.backlog.len() < self.cfg.backlog_cap {
                    self.backlog.push_back(func);
                    self.backlogged += 1;
                } else {
                    self.out[func as usize].dropped += 1;
                }
                return;
            }
        }
        self.start(t, func);
    }

    /// Process completions up to time `t`, starting backlogged work as
    /// slots free (at the exact completion instants).
    fn drain_completions(&mut self, t: u64) {
        while let Some(&std::cmp::Reverse(finish)) = self.executing.peek() {
            if finish > t {
                break;
            }
            self.executing.pop();
            if let Some(func) = self.backlog.pop_front() {
                self.start(finish, func);
            }
        }
    }

    /// Total arrivals that waited in the backlog.
    pub fn backlogged(&self) -> u64 {
        self.backlogged
    }

    /// Arrivals currently waiting for an invoker slot.
    pub fn queue_len(&self) -> usize {
        self.backlog.len()
    }

    /// Invocations currently executing.
    pub fn in_flight(&self) -> usize {
        self.executing.len()
    }

    /// Function indices with at least one container (idle or busy)
    /// resident in this worker's cache — the warm set a scale-down of
    /// this worker would destroy.
    pub fn resident_fns(&self) -> Vec<u32> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(f, _)| f as u32)
            .collect()
    }

    /// Whether the function has any resident container on this worker.
    pub fn is_resident(&self, func: u32) -> bool {
        self.items
            .get(func as usize)
            .map(|v| !v.is_empty())
            .unwrap_or(false)
    }

    /// Advance housekeeping (sweeps, preloads, occupancy, completions) to
    /// time `t` without an arrival — the elastic cluster simulator calls
    /// this at control-loop ticks so queue observations are current.
    pub fn advance(&mut self, t: u64) {
        self.run_sweeps(t);
        self.fire_preloads(t);
        self.occupancy_tick(t);
        self.drain_completions(t);
    }

    /// Begin executing one invocation at time `t` (a slot is available).
    fn start(&mut self, t: u64, func: u32) {
        let f = func as usize;
        let fqdn = self.profiles[f].fqdn.clone();
        self.policy.on_arrival(&fqdn, t);
        self.freq[f] += 1;
        let warm_ms = self.profiles[f].warm_ms;
        let init_ms = self.profiles[f].init_ms;
        let mem = self.profiles[f].memory_mb;

        // Warm hit: an idle container of this function.
        if let Some(item) = self.items[f].iter_mut().find(|i| i.busy_until <= t) {
            item.meta.freq = self.freq[f];
            self.policy.on_access(&mut item.meta, t);
            item.busy_until = t + warm_ms;
            self.out[f].warm += 1;
            self.base_exec_ms += warm_ms;
            if self.cfg.concurrency.is_some() {
                self.executing.push(std::cmp::Reverse(t + warm_ms));
            }
            return;
        }

        // Cold path: need memory for a new container.
        self.misses_window += 1;
        if self.used_mb + mem > self.cfg.cache_mb {
            let shortfall = self.used_mb + mem - self.cfg.cache_mb;
            let freed = self.evict_idle(t, shortfall);
            if freed < shortfall {
                if self.cfg.drop_on_full {
                    self.out[f].dropped += 1;
                } else {
                    // Ephemeral run outside the cache: still user-visible
                    // cold latency, but nothing is kept.
                    self.out[f].cold += 1;
                    self.cold_penalty_ms += init_ms;
                    self.base_exec_ms += warm_ms;
                    if self.cfg.concurrency.is_some() {
                        self.executing
                            .push(std::cmp::Reverse(t + warm_ms + init_ms));
                    }
                }
                return;
            }
        }
        self.used_mb += mem;
        let mut meta = EntryMeta::new(&fqdn, mem, init_ms as f64, t);
        meta.freq = self.freq[f];
        self.policy.on_insert(&mut meta, t);
        let id = self.next_id;
        self.next_id += 1;
        self.items[f].push(CacheItem {
            id,
            meta,
            busy_until: t + warm_ms + init_ms,
        });
        self.out[f].cold += 1;
        self.cold_penalty_ms += init_ms;
        self.base_exec_ms += warm_ms;
        if self.cfg.concurrency.is_some() {
            self.executing
                .push(std::cmp::Reverse(t + warm_ms + init_ms));
        }
    }

    /// Run pending expiry sweeps up to time `t`.
    fn run_sweeps(&mut self, t: u64) {
        while self.next_sweep <= t {
            let now = self.next_sweep;
            self.occupancy_tick(now);
            self.sweep(now);
            self.next_sweep += self.cfg.sweep_period_ms;
        }
    }

    fn sweep(&mut self, now: u64) {
        for f in 0..self.items.len() {
            let mut i = 0;
            while i < self.items[f].len() {
                let item = &self.items[f][i];
                if item.busy_until <= now && self.policy.expired(&item.meta, now) {
                    let item = self.items[f].swap_remove(i);
                    self.policy.on_evict(&item.meta, now);
                    self.used_mb -= item.meta.memory_mb;
                    self.expirations += 1;
                    // HIST prefetch: schedule a preload for the predicted
                    // next invocation of this function.
                    if self.cfg.enable_preload {
                        if let Some(at) = self.policy.predicted_next(&item.meta.fqdn, now) {
                            if at > now {
                                self.preloads.push(std::cmp::Reverse((at, f as u32)));
                            }
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }
    }

    fn fire_preloads(&mut self, t: u64) {
        while let Some(&std::cmp::Reverse((at, func))) = self.preloads.peek() {
            if at > t {
                break;
            }
            self.preloads.pop();
            let f = func as usize;
            // Only preload if nothing idle exists and free memory allows —
            // prefetching never evicts live entries.
            let has_idle = self.items[f].iter().any(|i| i.busy_until <= at);
            let mem = self.profiles[f].memory_mb;
            if !has_idle && self.used_mb + mem <= self.cfg.cache_mb {
                self.used_mb += mem;
                let fqdn = self.profiles[f].fqdn.clone();
                let mut meta = EntryMeta::new(&fqdn, mem, self.profiles[f].init_ms as f64, at);
                meta.freq = self.freq[f];
                self.policy.on_insert(&mut meta, at);
                let id = self.next_id;
                self.next_id += 1;
                // Ready immediately: the background preload absorbed init.
                self.items[f].push(CacheItem {
                    id,
                    meta,
                    busy_until: at,
                });
                self.preload_count += 1;
            }
        }
    }

    /// Evict idle items in priority order until `target_mb` freed; returns
    /// the amount actually freed. Victims are drawn lazily from a min-heap:
    /// building it is O(n), and under memory pressure only a handful of
    /// pops are usually needed, against a full O(n log n) sort.
    fn evict_idle(&mut self, now: u64, target_mb: u64) -> u64 {
        struct Cand {
            prio: f64,
            f: usize,
            id: u64,
        }
        impl PartialEq for Cand {
            fn eq(&self, other: &Self) -> bool {
                self.prio == other.prio
            }
        }
        impl Eq for Cand {}
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse: BinaryHeap is a max-heap, we want min-prio first.
                other.prio.total_cmp(&self.prio)
            }
        }
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = BinaryHeap::new();
        for (f, items) in self.items.iter().enumerate() {
            for item in items {
                if item.busy_until <= now {
                    heap.push(Cand {
                        prio: self.policy.priority(&item.meta, now),
                        f,
                        id: item.id,
                    });
                }
            }
        }
        let mut freed = 0u64;
        while freed < target_mb {
            let Some(Cand { f, id, .. }) = heap.pop() else {
                break;
            };
            if let Some(pos) = self.items[f].iter().position(|i| i.id == id) {
                let item = self.items[f].swap_remove(pos);
                self.policy.on_evict(&item.meta, now);
                self.used_mb -= item.meta.memory_mb;
                freed += item.meta.memory_mb;
                self.evictions += 1;
            }
        }
        freed
    }

    /// Finalize and collect results.
    pub fn finish(mut self, end_time: u64) -> SimOutcome {
        self.drain_completions(end_time);
        // Backlogged work that never got a slot counts as dropped.
        while let Some(func) = self.backlog.pop_front() {
            self.out[func as usize].dropped += 1;
        }
        self.occupancy_tick(end_time);
        let warm: u64 = self.out.iter().map(|o| o.warm).sum();
        let cold: u64 = self.out.iter().map(|o| o.cold).sum();
        let dropped: u64 = self.out.iter().map(|o| o.dropped).sum();
        SimOutcome {
            policy: self.policy.name(),
            cache_mb: self.cfg.cache_mb,
            total: warm + cold + dropped,
            warm,
            cold,
            dropped,
            preloads: self.preload_count,
            cold_penalty_ms: self.cold_penalty_ms,
            base_exec_ms: self.base_exec_ms,
            per_function: self.out,
            evictions: self.evictions,
            expirations: self.expirations,
            mean_used_mb: if end_time > 0 {
                self.occ_acc / end_time as f64
            } else {
                0.0
            },
            peak_used_mb: self.peak_used_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(fqdn: &str, warm: u64, init: u64, mem: u64) -> FunctionProfile {
        FunctionProfile {
            fqdn: fqdn.into(),
            app: 0,
            mean_iat_ms: 1000.0,
            warm_ms: warm,
            init_ms: init,
            memory_mb: mem,
            diurnal: false,
        }
    }

    fn events(specs: &[(u64, u32)]) -> Vec<TraceEvent> {
        specs
            .iter()
            .map(|&(t, f)| TraceEvent {
                time_ms: t,
                func: f,
            })
            .collect()
    }

    #[test]
    fn first_cold_then_warm() {
        let out = KeepaliveSim::run(
            vec![profile("f", 100, 900, 128)],
            &events(&[(0, 0), (5_000, 0), (10_000, 0)]),
            SimConfig::new(KeepalivePolicyKind::Lru, 1024),
        );
        assert_eq!((out.cold, out.warm, out.dropped), (1, 2, 0));
        assert_eq!(out.cold_penalty_ms, 900);
        assert_eq!(out.base_exec_ms, 300);
        assert!((out.cold_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((out.exec_increase_pct() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_invocations_spawn_start() {
        // Two arrivals while the first is still executing → both cold.
        let out = KeepaliveSim::run(
            vec![profile("f", 10_000, 500, 128)],
            &events(&[(0, 0), (1_000, 0)]),
            SimConfig::new(KeepalivePolicyKind::Lru, 1024),
        );
        assert_eq!(
            out.cold, 2,
            "spawn start: concurrent arrivals each cold-start"
        );
    }

    #[test]
    fn ttl_expires_but_lru_keeps() {
        let ev = events(&[(0, 0), (11 * 60_000, 0)]); // 11 min apart
        let ttl = KeepaliveSim::run(
            vec![profile("f", 100, 900, 128)],
            &ev,
            SimConfig::new(KeepalivePolicyKind::Ttl, 1024),
        );
        assert_eq!(ttl.cold, 2, "10-minute TTL expired the container");
        assert_eq!(ttl.expirations, 1);
        let lru = KeepaliveSim::run(
            vec![profile("f", 100, 900, 128)],
            &ev,
            SimConfig::new(KeepalivePolicyKind::Lru, 1024),
        );
        assert_eq!(lru.cold, 1, "work-conserving LRU kept it warm");
        assert_eq!(lru.warm, 1);
    }

    #[test]
    fn memory_pressure_evicts_by_policy() {
        // Cache fits exactly 2 × 128MB. Three functions round-robin.
        let profiles = vec![
            profile("a", 100, 1000, 128),
            profile("b", 100, 1000, 128),
            profile("c", 100, 1000, 128),
        ];
        let ev = events(&[(0, 0), (1_000, 1), (2_000, 2), (3_000, 0)]);
        let out = KeepaliveSim::run(profiles, &ev, SimConfig::new(KeepalivePolicyKind::Lru, 256));
        // a@0 cold (busy to 1100); b@1000 cold (a still busy, both fit);
        // c@2000 evicts idle a; a@3000 evicts idle b. Four colds, two
        // evictions.
        assert_eq!(out.cold, 4);
        assert_eq!(out.evictions, 2);
    }

    #[test]
    fn gdsf_protects_expensive_small() {
        // small+expensive (fp) vs big+cheap (ml); cache fits only one idle
        // at a time alongside the running one.
        let profiles = vec![profile("fp", 100, 1700, 128), profile("ml", 100, 100, 512)];
        // Prime both, then alternate; GD should keep fp warm, evict ml.
        let ev = events(&[
            (0, 0),
            (2_000, 1),
            (60_000, 0),
            (62_000, 1),
            (120_000, 0),
            (122_000, 1),
        ]);
        let gd = KeepaliveSim::run(
            profiles.clone(),
            &ev,
            SimConfig::new(KeepalivePolicyKind::Gdsf, 600),
        );
        let fp = gd.per_function[0];
        let ml = gd.per_function[1];
        assert!(
            fp.hit_ratio() >= ml.hit_ratio(),
            "GD favours high init-cost density: fp {:?} vs ml {:?}",
            fp,
            ml
        );
    }

    #[test]
    fn drop_on_full_drops_instead_of_ephemeral() {
        let profiles = vec![profile("a", 60_000, 100, 128), profile("b", 100, 100, 128)];
        // a occupies the only slot and runs for a minute; b arrives mid-run.
        let ev = events(&[(0, 0), (1_000, 1)]);
        let drop = KeepaliveSim::run(
            profiles.clone(),
            &ev,
            SimConfig {
                drop_on_full: true,
                ..SimConfig::new(KeepalivePolicyKind::Lru, 128)
            },
        );
        assert_eq!(drop.dropped, 1);
        assert_eq!(drop.cold, 1);
        let eph = KeepaliveSim::run(
            profiles,
            &ev,
            SimConfig {
                drop_on_full: false,
                ..SimConfig::new(KeepalivePolicyKind::Lru, 128)
            },
        );
        assert_eq!(eph.dropped, 0);
        assert_eq!(eph.cold, 2, "ephemeral run still counts cold");
    }

    #[test]
    fn hist_preload_produces_warm_hits() {
        // Strictly periodic function, 30-minute IAT: HIST should eagerly
        // evict and preload just before each arrival.
        let period = 30 * 60_000u64;
        let ev: Vec<TraceEvent> = (0..20)
            .map(|i| TraceEvent {
                time_ms: i * period,
                func: 0,
            })
            .collect();
        let hist = KeepaliveSim::run(
            vec![profile("periodic", 1_000, 5_000, 256)],
            &ev,
            SimConfig::new(KeepalivePolicyKind::Hist, 1024),
        );
        assert!(hist.preloads > 0, "HIST must prefetch");
        assert!(
            hist.warm >= 10,
            "preloads convert periodic arrivals to warm hits: {:?}",
            (hist.warm, hist.cold, hist.preloads)
        );
        // TTL(10min) would be cold every time.
        let ttl = KeepaliveSim::run(
            vec![profile("periodic", 1_000, 5_000, 256)],
            &ev,
            SimConfig::new(KeepalivePolicyKind::Ttl, 1024),
        );
        assert_eq!(ttl.warm, 0);
        assert!(hist.warm > ttl.warm);
    }

    #[test]
    fn occupancy_accounting() {
        let out = KeepaliveSim::run(
            vec![profile("f", 100, 100, 200)],
            &events(&[(0, 0), (10_000, 0)]),
            SimConfig::new(KeepalivePolicyKind::Lru, 1024),
        );
        assert_eq!(out.peak_used_mb, 200);
        assert!(out.mean_used_mb > 0.0 && out.mean_used_mb <= 200.0);
    }

    #[test]
    fn resize_shrink_evicts() {
        let mut sim = KeepaliveSim::new(
            vec![profile("a", 100, 100, 128), profile("b", 100, 100, 128)],
            SimConfig::new(KeepalivePolicyKind::Lru, 512),
        );
        sim.on_event(0, 0);
        sim.on_event(1_000, 1);
        assert_eq!(sim.used_mb(), 256);
        sim.resize(5_000, 128);
        assert_eq!(sim.used_mb(), 128, "shrink evicted one idle container");
        assert_eq!(sim.cache_mb(), 128);
    }

    #[test]
    fn take_misses_resets_window() {
        let mut sim = KeepaliveSim::new(
            vec![profile("a", 10, 10, 64)],
            SimConfig::new(KeepalivePolicyKind::Lru, 512),
        );
        sim.on_event(0, 0);
        assert_eq!(sim.take_misses(), 1);
        assert_eq!(sim.take_misses(), 0);
        sim.on_event(10_000, 0); // warm
        assert_eq!(sim.take_misses(), 0);
    }
}
