//! Reuse distances and hit-ratio curves.
//!
//! The abstract: "Caching concepts such as reuse distances and hit-ratio
//! curves can also be used for auto-scaled server resource provisioning."
//! The *reuse distance* of an invocation is the total memory of distinct
//! functions invoked since the previous invocation of the same function —
//! the classic Mattson stack distance with memory-weighted entries. An
//! invocation is a (fully-associative LRU) hit at cache size `S` iff its
//! reuse distance is < `S`, so the CDF of distances *is* the hit-ratio
//! curve, computed in one pass.

use iluvatar_trace::azure::{FunctionProfile, TraceEvent};
use std::collections::HashMap;

/// Reuse-distance analysis of a trace.
pub struct ReuseAnalysis {
    /// Memory-weighted reuse distance (MB) per re-invocation; first-ever
    /// invocations are compulsory misses and appear as `u64::MAX`.
    distances: Vec<u64>,
    total_invocations: usize,
}

impl ReuseAnalysis {
    /// One pass over the trace with an LRU stack of (function → memory).
    pub fn compute(profiles: &[FunctionProfile], events: &[TraceEvent]) -> Self {
        // LRU stack as a Vec of function ids, most recent last. For the
        // population sizes here (hundreds–thousands of functions) the
        // linear scan is faster than a balanced-tree stack.
        let mut stack: Vec<u32> = Vec::new();
        let mut positions: HashMap<u32, usize> = HashMap::new();
        let mut distances = Vec::with_capacity(events.len());
        for e in events {
            match positions.get(&e.func).copied() {
                Some(pos) => {
                    // Distance = memory of everything above `pos`.
                    let dist: u64 = stack[pos + 1..]
                        .iter()
                        .map(|&f| profiles[f as usize].memory_mb)
                        .sum();
                    distances.push(dist);
                    // Move to top.
                    stack.remove(pos);
                    for (i, &f) in stack.iter().enumerate().skip(pos) {
                        positions.insert(f, i);
                    }
                    positions.insert(e.func, stack.len());
                    stack.push(e.func);
                }
                None => {
                    distances.push(u64::MAX); // compulsory miss
                    positions.insert(e.func, stack.len());
                    stack.push(e.func);
                }
            }
        }
        Self {
            distances,
            total_invocations: events.len(),
        }
    }

    pub fn distances(&self) -> &[u64] {
        &self.distances
    }

    /// Hit ratio of a fully-associative LRU cache of `size_mb`: the
    /// fraction of invocations whose reuse distance fits below it (the
    /// entry itself must also fit, but sizes ≪ cache in practice).
    pub fn hit_ratio(&self, size_mb: u64) -> f64 {
        if self.total_invocations == 0 {
            return 0.0;
        }
        let hits = self
            .distances
            .iter()
            .filter(|&&d| d != u64::MAX && d < size_mb)
            .count();
        hits as f64 / self.total_invocations as f64
    }

    /// The hit-ratio curve over a size sweep.
    pub fn curve(&self, sizes_mb: &[u64]) -> Vec<(u64, f64)> {
        sizes_mb.iter().map(|&s| (s, self.hit_ratio(s))).collect()
    }

    /// Smallest size from `candidates` achieving `target` hit ratio, if
    /// any — the provisioning use of the curve.
    pub fn size_for_hit_ratio(&self, target: f64, candidates: &[u64]) -> Option<u64> {
        let mut sorted = candidates.to_vec();
        sorted.sort_unstable();
        sorted.into_iter().find(|&s| self.hit_ratio(s) >= target)
    }

    /// Compulsory (first-reference) miss count.
    pub fn compulsory_misses(&self) -> usize {
        self.distances.iter().filter(|&&d| d == u64::MAX).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(fqdn: &str, mem: u64) -> FunctionProfile {
        FunctionProfile {
            fqdn: fqdn.into(),
            app: 0,
            mean_iat_ms: 1000.0,
            warm_ms: 100,
            init_ms: 100,
            memory_mb: mem,
            diurnal: false,
        }
    }

    fn ev(seq: &[u32]) -> Vec<TraceEvent> {
        seq.iter()
            .enumerate()
            .map(|(i, &f)| TraceEvent {
                time_ms: i as u64 * 1000,
                func: f,
            })
            .collect()
    }

    #[test]
    fn distances_match_hand_computation() {
        // Functions of 100MB each; sequence a b a c b a.
        let profiles = vec![profile("a", 100), profile("b", 100), profile("c", 100)];
        let r = ReuseAnalysis::compute(&profiles, &ev(&[0, 1, 0, 2, 1, 0]));
        // a:∞, b:∞, a:100(b), c:∞, b:200(c,a above b? stack after a b a is
        // [b,a]; c pushes [b,a,c]; b at pos0 → distance = a+c = 200),
        // a: after b moves: [a,c,b] → a pos0 → c+b = 200.
        assert_eq!(
            r.distances(),
            &[u64::MAX, u64::MAX, 100, u64::MAX, 200, 200]
        );
        assert_eq!(r.compulsory_misses(), 3);
    }

    #[test]
    fn hit_ratio_monotone_in_size() {
        let profiles = vec![profile("a", 100), profile("b", 200), profile("c", 300)];
        let r = ReuseAnalysis::compute(&profiles, &ev(&[0, 1, 2, 0, 1, 2, 0, 1, 2]));
        let curve = r.curve(&[0, 100, 200, 400, 600, 1000]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "hit ratio must be monotone: {curve:?}");
        }
        // With unlimited size, only compulsory misses remain: 6/9 hits.
        assert!((r.hit_ratio(u64::MAX - 1) - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_matches_lru_sim_shape() {
        // distance(second a in "a b a") is 200 (b's memory).
        let profiles = vec![profile("a", 100), profile("b", 200)];
        let r = ReuseAnalysis::compute(&profiles, &ev(&[0, 1, 0]));
        assert_eq!(r.hit_ratio(200), 0.0, "needs >200MB above to hit");
        assert!((r.hit_ratio(201) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn size_for_target() {
        let profiles = vec![profile("a", 100), profile("b", 100)];
        let r = ReuseAnalysis::compute(&profiles, &ev(&[0, 1, 0, 1, 0, 1]));
        // Hits need distance 100 < size.
        let s = r.size_for_hit_ratio(0.5, &[50, 101, 500]).unwrap();
        assert_eq!(s, 101);
        assert_eq!(r.size_for_hit_ratio(0.99, &[50, 101, 500]), None);
    }

    #[test]
    fn empty_trace() {
        let r = ReuseAnalysis::compute(&[], &[]);
        assert_eq!(r.hit_ratio(1000), 0.0);
        assert_eq!(r.compulsory_misses(), 0);
    }
}
