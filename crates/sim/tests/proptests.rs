//! Property-based tests of the keep-alive simulator's conservation laws.

use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_sim::{KeepaliveSim, ReuseAnalysis, SimConfig};
use iluvatar_trace::azure::{FunctionProfile, TraceEvent};
use proptest::prelude::*;

fn profiles(n: usize, mems: &[u64]) -> Vec<FunctionProfile> {
    (0..n)
        .map(|i| FunctionProfile {
            fqdn: format!("f{i}"),
            app: 0,
            mean_iat_ms: 1_000.0,
            warm_ms: 200 + (i as u64 % 5) * 100,
            init_ms: 500 + (i as u64 % 3) * 700,
            memory_mb: mems[i % mems.len()],
            diurnal: false,
        })
        .collect()
}

fn arb_trace() -> impl Strategy<Value = (usize, Vec<TraceEvent>)> {
    (2usize..8).prop_flat_map(|n| {
        let events = proptest::collection::vec((0u64..3_600_000, 0..n as u32), 1..300).prop_map(
            |mut raw| {
                raw.sort();
                raw.into_iter()
                    .map(|(t, f)| TraceEvent {
                        time_ms: t,
                        func: f,
                    })
                    .collect::<Vec<_>>()
            },
        );
        (Just(n), events)
    })
}

proptest! {
    /// Conservation: every invocation is exactly one of warm/cold/dropped,
    /// for every policy, and occupancy never exceeds capacity.
    #[test]
    fn counts_conserved_for_all_policies(
        (n, events) in arb_trace(),
        policy_idx in 0usize..6,
        cache_mb in 128u64..4_096,
        drop_on_full: bool,
    ) {
        let policy = KeepalivePolicyKind::all()[policy_idx];
        let out = KeepaliveSim::run(
            profiles(n, &[64, 128, 256, 512]),
            &events,
            SimConfig { drop_on_full, ..SimConfig::new(policy, cache_mb) },
        );
        prop_assert_eq!(out.total, events.len() as u64);
        prop_assert_eq!(out.warm + out.cold + out.dropped, out.total);
        if !drop_on_full {
            prop_assert_eq!(out.dropped, 0);
        }
        prop_assert!(out.peak_used_mb <= cache_mb.max(512),
            "peak {} must stay within capacity (one ephemeral overshoot at most)", out.peak_used_mb);
        prop_assert!(out.mean_used_mb <= out.peak_used_mb as f64 + 1e-9);
        // Per-function counters sum to the totals.
        let pf_total: u64 = out.per_function.iter().map(|f| f.warm + f.cold + f.dropped).sum();
        prop_assert_eq!(pf_total, out.total);
    }

    /// An infinite cache makes every repeat arrival warm (after the spawn
    /// start effect is excluded by serializing events).
    #[test]
    fn infinite_cache_only_compulsory_misses(
        n in 1usize..6,
        reps in 1usize..20,
    ) {
        // Serialized arrivals: spaced beyond any exec time, so no spawn starts.
        let mut events = Vec::new();
        let mut t = 0;
        for r in 0..reps {
            for f in 0..n {
                events.push(TraceEvent { time_ms: t, func: f as u32 });
                t += 10_000;
                let _ = r;
            }
        }
        let out = KeepaliveSim::run(
            profiles(n, &[128]),
            &events,
            SimConfig::new(KeepalivePolicyKind::Lru, u64::MAX / 2),
        );
        prop_assert_eq!(out.cold, n as u64, "only compulsory misses");
        prop_assert_eq!(out.warm, (n * reps - n) as u64);
        prop_assert_eq!(out.evictions, 0);
    }

    /// LRU cold counts are monotone non-increasing in cache size.
    #[test]
    fn lru_monotone_in_cache_size((n, events) in arb_trace()) {
        let p = profiles(n, &[128, 256]);
        let mut last_cold = u64::MAX;
        for cache in [256u64, 512, 1_024, 4_096, 16_384] {
            let out = KeepaliveSim::run(
                p.clone(),
                &events,
                SimConfig::new(KeepalivePolicyKind::Lru, cache),
            );
            prop_assert!(
                out.cold <= last_cold,
                "LRU inclusion property violated: {} colds at {}MB after {} at smaller",
                out.cold, cache, last_cold
            );
            last_cold = out.cold;
        }
    }

    /// The reuse-distance hit-ratio curve is monotone and bounded by the
    /// compulsory-miss ceiling.
    #[test]
    fn reuse_curve_monotone((n, events) in arb_trace()) {
        let p = profiles(n, &[100, 300]);
        let r = ReuseAnalysis::compute(&p, &events);
        let sizes = [0u64, 100, 200, 500, 1_000, 10_000, 1_000_000];
        let curve = r.curve(&sizes);
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        let ceiling = 1.0 - r.compulsory_misses() as f64 / events.len() as f64;
        prop_assert!(curve.last().unwrap().1 <= ceiling + 1e-12);
    }
}
