//! Property tests for the container substrate.

use iluvatar_containers::image::{ImageRegistry, Platform};
use iluvatar_containers::latency::{RuntimeKind, RuntimeLatencyModel};
use iluvatar_containers::simulated::{sim_args, SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec, NamespacePool};
use iluvatar_sync::{Clock, ManualClock};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

proptest! {
    /// The null backend's virtual-time accounting is exact: cold invoke
    /// charges warm+init, warm invoke charges warm, for any timing.
    #[test]
    fn sim_backend_time_accounting(warm in 0u64..100_000, init in 0u64..100_000) {
        let clock = Arc::new(ManualClock::new());
        let b = SimBackend::new(clock.clone(), SimBackendConfig::default());
        let spec = FunctionSpec::new("f", "1").with_timing(warm, init);
        let c = b.create(&spec).unwrap();
        let t0 = clock.now_ms();
        let out = b.invoke(&c, "{}").unwrap();
        prop_assert_eq!(out.exec_ms, warm + init);
        prop_assert_eq!(clock.now_ms() - t0, warm + init);
        let t1 = clock.now_ms();
        let out = b.invoke(&c, "{}").unwrap();
        prop_assert_eq!(out.exec_ms, warm);
        prop_assert_eq!(clock.now_ms() - t1, warm);
    }

    /// The args timing envelope overrides the spec for any values.
    #[test]
    fn sim_args_envelope_overrides(spec_warm in 0u64..10_000, env_warm in 0u64..10_000, env_init in 0u64..10_000) {
        let clock = Arc::new(ManualClock::new());
        let b = SimBackend::new(clock.clone(), SimBackendConfig::default());
        let spec = FunctionSpec::new("f", "1").with_timing(spec_warm, 0);
        let c = b.create(&spec).unwrap();
        let out = b.invoke(&c, &sim_args(env_warm, env_init)).unwrap();
        prop_assert_eq!(out.exec_ms, env_warm + env_init);
    }

    /// Latency samples are reproducible for a fixed seed and stay within
    /// sane bounds across runtimes.
    #[test]
    fn latency_model_deterministic(seed in any::<u64>(), kind_idx in 0usize..3) {
        let kind = [RuntimeKind::Containerd, RuntimeKind::Docker, RuntimeKind::Crun][kind_idx];
        let model = RuntimeLatencyModel::new(kind);
        let a = model.sample(&mut StdRng::seed_from_u64(seed));
        let b = model.sample(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.create_ms, b.create_ms);
        prop_assert_eq!(a.destroy_ms, b.destroy_ms);
        prop_assert!(a.create_ms < 30_000, "pathological sample {}", a.create_ms);
    }

    /// Namespace pool: any interleaving of acquires and releases conserves
    /// namespaces (created == free + outstanding) and never double-leases.
    #[test]
    fn netns_pool_conservation(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
        let clock = Arc::new(ManualClock::new());
        let pool = NamespacePool::new(3, 1, clock.clone());
        pool.prefill();
        let mut held = Vec::new();
        for acquire in ops {
            if acquire {
                held.push(pool.acquire());
            } else if let Some(l) = held.pop() {
                drop(l);
            }
            let mut ids: Vec<u64> = held.iter().map(|l| l.id()).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), held.len(), "duplicate namespace leased");
            prop_assert_eq!(
                pool.created() as usize,
                pool.free_count() + held.len(),
                "namespace conservation"
            );
        }
    }

    /// Image preparation is deterministic and total size equals the sum of
    /// selected layers.
    #[test]
    fn image_prepare_deterministic(name in "[a-z]{1,12}", tag in "[a-z0-9]{1,5}") {
        let reference = format!("{name}:{tag}");
        let mut reg = ImageRegistry::new();
        reg.publish(ImageRegistry::synthesize(&reference));
        let a = reg.prepare(&reference, Platform::LINUX_AMD64).unwrap();
        let b = reg.prepare(&reference, Platform::LINUX_AMD64).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.total_size_mb > 0);
        prop_assert!(!a.layers.is_empty());
    }
}
