//! Container runtime latency models.
//!
//! §3.4 reports launch costs of the runtimes the original system evaluated:
//! "the crun library which is written in C takes about 150 ms to launch a
//! container, whereas containerd (written in Go) needs 300 ms, and Docker
//! needs 400 ms", plus RPC overhead for out-of-process services. The models
//! here sample from a right-skewed (log-normal) distribution around those
//! means — container launch latencies are famously long-tailed.

use rand::Rng;

/// Which container runtime a latency model emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Default backend; OCI, out-of-process RPC API.
    Containerd,
    /// Feature-rich, highest launch latency.
    Docker,
    /// Minimal C runtime, lowest launch latency.
    Crun,
}

impl RuntimeKind {
    pub fn name(&self) -> &'static str {
        match self {
            RuntimeKind::Containerd => "containerd",
            RuntimeKind::Docker => "docker",
            RuntimeKind::Crun => "crun",
        }
    }
}

/// One sampled set of per-operation latencies, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencySample {
    pub create_ms: u64,
    pub destroy_ms: u64,
    /// Per-call RPC overhead for out-of-process runtimes.
    pub rpc_ms: u64,
}

/// Log-normal latency model for a container runtime.
#[derive(Debug, Clone)]
pub struct RuntimeLatencyModel {
    kind: RuntimeKind,
    create_median_ms: f64,
    /// Log-space sigma: dispersion of launch times.
    sigma: f64,
    destroy_median_ms: f64,
    rpc_median_ms: f64,
}

impl RuntimeLatencyModel {
    pub fn new(kind: RuntimeKind) -> Self {
        // Medians per §3.4; destroy and RPC costs are smaller, from the
        // component breakdown in Table 1.
        let (create, destroy, rpc) = match kind {
            RuntimeKind::Containerd => (300.0, 40.0, 2.0),
            RuntimeKind::Docker => (400.0, 60.0, 4.0),
            RuntimeKind::Crun => (150.0, 20.0, 0.0),
        };
        Self {
            kind,
            create_median_ms: create,
            sigma: 0.25,
            destroy_median_ms: destroy,
            rpc_median_ms: rpc,
        }
    }

    /// Override the launch median (calibration hook for tests/benches).
    pub fn with_create_median(mut self, ms: f64) -> Self {
        self.create_median_ms = ms;
        self
    }

    /// Scale every latency by `f` — used to shrink experiments in time
    /// without changing relative costs.
    pub fn scaled(mut self, f: f64) -> Self {
        assert!(f >= 0.0);
        self.create_median_ms *= f;
        self.destroy_median_ms *= f;
        self.rpc_median_ms *= f;
        self
    }

    pub fn kind(&self) -> RuntimeKind {
        self.kind
    }

    /// Draw a log-normal sample with the given median (log-space mean
    /// `ln(median)`) using the Box-Muller transform.
    fn lognormal(&self, rng: &mut impl Rng, median: f64) -> f64 {
        if median <= 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (median.ln() + self.sigma * z).exp()
    }

    /// Sample the latencies of one container lifecycle.
    pub fn sample(&self, rng: &mut impl Rng) -> LatencySample {
        LatencySample {
            create_ms: self.lognormal(rng, self.create_median_ms).round() as u64,
            destroy_ms: self.lognormal(rng, self.destroy_median_ms).round() as u64,
            rpc_ms: self.lognormal(rng, self.rpc_median_ms).round() as u64,
        }
    }

    pub fn create_median_ms(&self) -> f64 {
        self.create_median_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ordering_matches_paper() {
        // crun < containerd < docker on median launch cost.
        let crun = RuntimeLatencyModel::new(RuntimeKind::Crun);
        let ctrd = RuntimeLatencyModel::new(RuntimeKind::Containerd);
        let dock = RuntimeLatencyModel::new(RuntimeKind::Docker);
        assert!(crun.create_median_ms() < ctrd.create_median_ms());
        assert!(ctrd.create_median_ms() < dock.create_median_ms());
    }

    #[test]
    fn samples_center_on_median() {
        let m = RuntimeLatencyModel::new(RuntimeKind::Containerd);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 4000;
        let mut creates: Vec<f64> = (0..n)
            .map(|_| m.sample(&mut rng).create_ms as f64)
            .collect();
        creates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = creates[n / 2];
        assert!(
            (median - 300.0).abs() < 30.0,
            "median {median} far from 300"
        );
        // Right skew: mean above median.
        let mean = creates.iter().sum::<f64>() / n as f64;
        assert!(mean > median * 0.99);
    }

    #[test]
    fn scaled_shrinks_everything() {
        let m = RuntimeLatencyModel::new(RuntimeKind::Docker).scaled(0.01);
        let mut rng = StdRng::seed_from_u64(7);
        let s = m.sample(&mut rng);
        assert!(s.create_ms < 50, "scaled create {} too large", s.create_ms);
    }

    #[test]
    fn zero_median_stays_zero() {
        let m = RuntimeLatencyModel::new(RuntimeKind::Crun); // rpc median 0
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(m.sample(&mut rng).rpc_ms, 0);
        }
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let m = RuntimeLatencyModel::new(RuntimeKind::Docker);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!(s.create_ms < 10_000, "implausible tail {}", s.create_ms);
        }
    }
}
