//! Pre-created network namespace pool.
//!
//! §3.3 ("Network Namespace Caching"): creating a network namespace "can add
//! significant latency to container cold starts — as much as 100 ms. This is
//! due to contention on a single global lock shared across all network
//! namespaces. To minimize this overhead, we maintain a pool of pre-created
//! network namespaces that are assigned during container creation."
//!
//! The namespace substrate here models that kernel behaviour: raw creation
//! serializes on one global lock and costs real (or virtual) time; the pool
//! pre-creates namespaces off the critical path so a cold start only pops a
//! free one.

use iluvatar_sync::{Clock, TaskPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A distinct virtual network namespace (veth pair + namespace id).
#[derive(Debug, PartialEq, Eq)]
pub struct Namespace {
    pub id: u64,
    /// e.g. `/run/netns/ilu-<id>`
    pub path: String,
}

/// RAII lease of a namespace; returns to the pool on drop.
pub struct NamespaceLease {
    ns: Option<Namespace>,
    pool: Arc<PoolInner>,
}

impl NamespaceLease {
    pub fn id(&self) -> u64 {
        self.ns.as_ref().expect("lease always holds until drop").id
    }

    pub fn path(&self) -> &str {
        &self
            .ns
            .as_ref()
            .expect("lease always holds until drop")
            .path
    }
}

impl Drop for NamespaceLease {
    fn drop(&mut self) {
        if let Some(ns) = self.ns.take() {
            self.pool.free.lock().push(ns);
        }
    }
}

impl std::fmt::Debug for NamespaceLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NamespaceLease({})", self.id())
    }
}

struct PoolInner {
    free: Mutex<Vec<Namespace>>,
    /// The kernel's single global namespace lock (nsid / rtnl).
    global_lock: Mutex<()>,
    next_id: AtomicU64,
    create_cost_ms: u64,
    clock: Arc<dyn Clock>,
    created: AtomicU64,
    pool_misses: AtomicU64,
}

impl PoolInner {
    /// Create one namespace, paying the serialized kernel cost.
    fn create_raw(&self) -> Namespace {
        let _g = self.global_lock.lock();
        self.clock.sleep_ms(self.create_cost_ms);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.created.fetch_add(1, Ordering::Relaxed);
        Namespace {
            id,
            path: format!("/run/netns/ilu-{id}"),
        }
    }
}

/// Pool of pre-created namespaces with a background refill task.
pub struct NamespacePool {
    inner: Arc<PoolInner>,
    target_free: usize,
}

impl NamespacePool {
    /// `target_free`: how many namespaces to keep ready; `create_cost_ms`:
    /// the serialized creation cost the pool hides (≈100 ms in the paper).
    pub fn new(target_free: usize, create_cost_ms: u64, clock: Arc<dyn Clock>) -> Self {
        let inner = Arc::new(PoolInner {
            free: Mutex::new(Vec::new()),
            global_lock: Mutex::new(()),
            next_id: AtomicU64::new(1),
            create_cost_ms,
            clock,
            created: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
        });
        Self { inner, target_free }
    }

    /// Fill the pool to the target synchronously (worker startup).
    pub fn prefill(&self) {
        while self.free_count() < self.target_free {
            let ns = self.inner.create_raw();
            self.inner.free.lock().push(ns);
        }
    }

    /// Register a periodic refill on `tasks`, keeping the pool at target
    /// without touching the invocation critical path.
    pub fn start_refill(&self, tasks: &TaskPool, period: Duration) {
        let inner = Arc::clone(&self.inner);
        let target = self.target_free;
        tasks.spawn_periodic("netns-refill", period, move || {
            while inner.free.lock().len() < target {
                let ns = inner.create_raw();
                inner.free.lock().push(ns);
            }
        });
    }

    /// Acquire a namespace: from the pool when possible (fast path), else
    /// created inline, paying the global-lock cost a cold start would see
    /// without the cache.
    pub fn acquire(&self) -> NamespaceLease {
        let pooled = self.inner.free.lock().pop();
        let ns = match pooled {
            Some(ns) => ns,
            None => {
                self.inner.pool_misses.fetch_add(1, Ordering::Relaxed);
                self.inner.create_raw()
            }
        };
        NamespaceLease {
            ns: Some(ns),
            pool: Arc::clone(&self.inner),
        }
    }

    pub fn free_count(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Namespaces ever created (pool refills + inline misses).
    pub fn created(&self) -> u64 {
        self.inner.created.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the pool empty and paid the inline cost.
    pub fn pool_misses(&self) -> u64 {
        self.inner.pool_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::{ManualClock, SystemClock};

    #[test]
    fn prefill_reaches_target() {
        let pool = NamespacePool::new(4, 0, SystemClock::shared());
        pool.prefill();
        assert_eq!(pool.free_count(), 4);
        assert_eq!(pool.created(), 4);
    }

    #[test]
    fn acquire_prefers_pool_and_lease_returns() {
        let pool = NamespacePool::new(2, 0, SystemClock::shared());
        pool.prefill();
        let lease = pool.acquire();
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.pool_misses(), 0);
        let id = lease.id();
        drop(lease);
        assert_eq!(pool.free_count(), 2, "lease returns to pool");
        // The returned namespace is reused, not re-created.
        let lease2 = pool.acquire();
        assert_eq!(lease2.id(), id);
        assert_eq!(pool.created(), 2);
    }

    #[test]
    fn empty_pool_pays_inline_cost() {
        let clock = Arc::new(ManualClock::new());
        let pool = NamespacePool::new(0, 100, clock.clone());
        let before = clock.now_ms();
        let _l = pool.acquire();
        assert_eq!(clock.now_ms() - before, 100, "inline creation costs 100ms");
        assert_eq!(pool.pool_misses(), 1);
    }

    #[test]
    fn leases_are_distinct_namespaces() {
        let pool = NamespacePool::new(3, 0, SystemClock::shared());
        pool.prefill();
        let a = pool.acquire();
        let b = pool.acquire();
        let c = pool.acquire();
        assert_ne!(a.id(), b.id());
        assert_ne!(b.id(), c.id());
        assert!(a.path().contains(&format!("{}", a.id())));
    }

    #[test]
    fn background_refill_restores_target() {
        let pool = NamespacePool::new(2, 0, SystemClock::shared());
        pool.prefill();
        let tasks = TaskPool::new(1);
        pool.start_refill(&tasks, Duration::from_millis(10));
        let a = pool.acquire();
        let b = pool.acquire();
        std::mem::forget(a); // consume permanently
        std::mem::forget(b);
        // Refill must bring the pool back without returning the leases.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.free_count() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.free_count(), 2);
        assert!(pool.created() >= 4);
    }
}
