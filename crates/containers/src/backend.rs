//! The container backend trait — the "narrow waist" below the control plane.
//!
//! §3.4: "The basic container operations we use are: i) Create a
//! container/sandbox with specified resource limits and disk
//! image/snapshot, ii) launch a task inside it for the agent, and iii)
//! destroy the container." Everything the worker does with containers goes
//! through this trait, which is what makes the in-situ simulation backend a
//! drop-in replacement for real isolation (§3.4, "Simulation Backend").

use crate::types::{Container, FunctionSpec};

/// Result of one invocation inside a container.
#[derive(Debug, Clone)]
pub struct InvokeOutput {
    /// Function result payload (JSON).
    pub body: String,
    /// Function-code execution time as reported by the agent, ms. This is
    /// the denominator of the paper's *stretch* metric.
    pub exec_ms: u64,
}

/// Backend failures.
#[derive(Debug)]
pub enum BackendError {
    /// Sandbox creation failed (image missing, resources, ...).
    CreateFailed(String),
    /// The invocation could not be delivered or the agent errored.
    InvokeFailed(String),
    /// Operation on a container this backend does not know (already
    /// destroyed, or created by another backend).
    UnknownContainer,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::CreateFailed(m) => write!(f, "container create failed: {m}"),
            BackendError::InvokeFailed(m) => write!(f, "invoke failed: {m}"),
            BackendError::UnknownContainer => write!(f, "unknown container"),
        }
    }
}

impl std::error::Error for BackendError {}

/// The three-operation container interface.
pub trait ContainerBackend: Send + Sync + 'static {
    /// Human-readable backend name (for logs and metrics).
    fn name(&self) -> &'static str;

    /// Create a sandbox for `spec` and boot the agent inside it. Blocks for
    /// the full cold-start cost; returns a pool-ready container.
    fn create(&self, spec: &FunctionSpec) -> Result<Container, BackendError>;

    /// Run one invocation inside `container`, blocking until completion.
    fn invoke(&self, container: &Container, args: &str) -> Result<InvokeOutput, BackendError>;

    /// Like [`ContainerBackend::invoke`], but carrying an end-to-end trace
    /// id for backends with a real agent hop to propagate (as the
    /// `X-Iluvatar-Trace` HTTP header). Backends without a wire hop ignore
    /// it; the default implementation delegates to `invoke`.
    fn invoke_traced(
        &self,
        container: &Container,
        args: &str,
        trace: Option<&str>,
    ) -> Result<InvokeOutput, BackendError> {
        let _ = trace;
        self.invoke(container, args)
    }

    /// Like [`ContainerBackend::invoke_traced`], but additionally carrying
    /// the invocation's tenant label for backends with a real agent hop to
    /// propagate (as the `X-Iluvatar-Tenant` HTTP header, next to the trace
    /// header). The default implementation drops the tenant and delegates.
    fn invoke_ctx(
        &self,
        container: &Container,
        args: &str,
        trace: Option<&str>,
        tenant: Option<&str>,
    ) -> Result<InvokeOutput, BackendError> {
        let _ = tenant;
        self.invoke_traced(container, args, trace)
    }

    /// Tear the sandbox down and release its resources.
    fn destroy(&self, container: &Container) -> Result<(), BackendError>;
}
