//! Shared container and function description types.

use crate::netns::NamespaceLease;
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Globally unique container identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

static NEXT_CONTAINER_ID: AtomicU64 = AtomicU64::new(1);

impl ContainerId {
    /// Allocate the next process-unique id.
    pub fn next() -> Self {
        Self(NEXT_CONTAINER_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for ContainerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctr-{}", self.0)
    }
}

/// Lifecycle states of a container in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Created, agent booting; not yet usable.
    Starting,
    /// Agent up, no invocation has ever run (a prewarmed container).
    Prewarmed,
    /// Currently executing an invocation.
    Running,
    /// Idle with a completed invocation behind it — a warm hit candidate.
    Warm,
    /// Removed from the pool; backend resources released.
    Destroyed,
}

/// Per-container CPU/memory limits (cgroup quota equivalents).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceLimits {
    /// CPU shares in whole-core units (cgroup quota / period).
    pub cpus: f64,
    /// Memory limit in MB; also the keep-alive cache occupancy.
    pub memory_mb: u64,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        Self {
            cpus: 1.0,
            memory_mb: 128,
        }
    }
}

/// Everything the backend needs to know about a registered function.
///
/// The timing fields parameterize the simulated backends; the in-process
/// backend ignores them and runs real code.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Fully qualified name (`name-version`), the registry key.
    pub fqdn: String,
    pub name: String,
    pub version: String,
    /// Container image reference, e.g. `docker.io/lib/pyaes:latest`.
    pub image: String,
    pub limits: ResourceLimits,
    /// Modelled warm execution time (function code only), ms.
    pub warm_exec_ms: u64,
    /// Modelled extra initialization on the first invocation in a fresh
    /// container (imports, model downloads, ...), ms.
    pub init_ms: u64,
    /// Owning tenant for multi-tenant admission control; `None` means the
    /// platform default tenant. An explicit per-invocation label overrides
    /// this registration-time default.
    #[serde(default)]
    pub tenant: Option<String>,
    /// Declared idempotent: repeated invocations with identical arguments
    /// may be served from the control-plane result cache. Strictly opt-in —
    /// only the function owner can know whether results are replayable.
    #[serde(default)]
    pub idempotent: bool,
}

impl FunctionSpec {
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        let name = name.into();
        let version = version.into();
        Self {
            fqdn: format!("{name}-{version}"),
            name,
            version,
            image: String::new(),
            limits: ResourceLimits::default(),
            warm_exec_ms: 10,
            init_ms: 100,
            tenant: None,
            idempotent: false,
        }
    }

    pub fn with_image(mut self, image: impl Into<String>) -> Self {
        self.image = image.into();
        self
    }

    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    pub fn with_idempotent(mut self) -> Self {
        self.idempotent = true;
        self
    }

    pub fn with_timing(mut self, warm_exec_ms: u64, init_ms: u64) -> Self {
        self.warm_exec_ms = warm_exec_ms;
        self.init_ms = init_ms;
        self
    }

    /// Modelled cold execution: initialization plus the warm run.
    pub fn cold_exec_ms(&self) -> u64 {
        self.warm_exec_ms + self.init_ms
    }
}

/// A live container handle, as held in the worker's container pool.
pub struct Container {
    pub id: ContainerId,
    pub fqdn: String,
    pub limits: ResourceLimits,
    /// Agent endpoint for backends that run a real agent.
    pub agent_addr: Option<SocketAddr>,
    /// The leased pre-created network namespace.
    pub netns: Option<NamespaceLease>,
    /// Number of invocations this container has served.
    invocations: AtomicU64,
    /// Backend bookkeeping cookie (e.g. index into the in-process table).
    pub backend_cookie: u64,
}

impl Container {
    pub fn new(fqdn: impl Into<String>, limits: ResourceLimits) -> Self {
        Self {
            id: ContainerId::next(),
            fqdn: fqdn.into(),
            limits,
            agent_addr: None,
            netns: None,
            invocations: AtomicU64::new(0),
            backend_cookie: 0,
        }
    }

    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    pub fn record_invocation(&self) -> u64 {
        self.invocations.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// True until the first invocation completes: the next invocation pays
    /// the function initialization cost.
    pub fn needs_init(&self) -> bool {
        self.invocations() == 0
    }
}

pub type SharedContainer = Arc<Container>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_ids_unique_and_ordered() {
        let a = ContainerId::next();
        let b = ContainerId::next();
        assert!(b > a);
        assert_ne!(a, b);
        assert!(a.to_string().starts_with("ctr-"));
    }

    #[test]
    fn spec_fqdn_composed() {
        let s = FunctionSpec::new("hello", "1");
        assert_eq!(s.fqdn, "hello-1");
        assert_eq!(s.cold_exec_ms(), s.warm_exec_ms + s.init_ms);
    }

    #[test]
    fn spec_builders() {
        let s = FunctionSpec::new("f", "2")
            .with_image("repo/f:2")
            .with_limits(ResourceLimits {
                cpus: 2.0,
                memory_mb: 512,
            })
            .with_timing(50, 900);
        assert_eq!(s.image, "repo/f:2");
        assert_eq!(s.limits.memory_mb, 512);
        assert_eq!(s.cold_exec_ms(), 950);
    }

    #[test]
    fn container_invocation_counter() {
        let c = Container::new("f-1", ResourceLimits::default());
        assert!(c.needs_init());
        assert_eq!(c.record_invocation(), 1);
        assert!(!c.needs_init());
        assert_eq!(c.invocations(), 1);
    }

    #[test]
    fn spec_serde_roundtrip() {
        let s = FunctionSpec::new("f", "1").with_timing(5, 7);
        let json = serde_json::to_string(&s).unwrap();
        let back: FunctionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fqdn, s.fqdn);
        assert_eq!(back.warm_exec_ms, 5);
    }
}
