//! The "null" simulation backend.
//!
//! §3.4: "Our 'null' container backend does not run any actual function
//! code, but instead sleeps for the function's anticipated execution time.
//! The rest of the control plane operates exactly as with real containers."
//! Create costs are drawn from the configured runtime latency model; invoke
//! sleeps for the function's warm (or cold, on the first run) execution
//! time. Against a [`ManualClock`](iluvatar_sync::ManualClock) this gives
//! in-silico simulation; against the system clock (optionally time-scaled)
//! it gives in-situ emulation on real threads.

use crate::backend::{BackendError, ContainerBackend, InvokeOutput};
use crate::latency::{RuntimeKind, RuntimeLatencyModel};
use crate::netns::NamespacePool;
use crate::types::{Container, FunctionSpec};
use iluvatar_sync::{Clock, ShardedMap};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Null backend configuration.
pub struct SimBackendConfig {
    /// Which runtime's launch cost to charge on create.
    pub runtime: RuntimeKind,
    /// Multiplier on all modelled durations (use e.g. 0.01 to run a
    /// minutes-long workload in seconds of wall time with `SystemClock`).
    pub time_scale: f64,
    /// RNG seed for latency sampling — fixed for reproducible experiments.
    pub seed: u64,
    /// Snapshot restore factor (§3.2: containers launch "from disk, or
    /// from a previous snapshot if available"). After a function's first
    /// container, later creates restore from its snapshot at this fraction
    /// of the full launch cost. 1.0 disables snapshots.
    pub snapshot_factor: f64,
}

impl Default for SimBackendConfig {
    fn default() -> Self {
        Self {
            runtime: RuntimeKind::Containerd,
            time_scale: 1.0,
            seed: 0xF445,
            snapshot_factor: 1.0,
        }
    }
}

/// The null container backend.
pub struct SimBackend {
    clock: Arc<dyn Clock>,
    model: RuntimeLatencyModel,
    time_scale: f64,
    snapshot_factor: f64,
    rng: Mutex<StdRng>,
    netns: Option<Arc<NamespacePool>>,
    /// Per-function (warm, init) ms remembered from `create` specs.
    timing: ShardedMap<String, (u64, u64)>,
    live: ShardedMap<u64, ()>,
    next_cookie: AtomicU64,
    creates: AtomicU64,
    invokes: AtomicU64,
}

impl SimBackend {
    pub fn new(clock: Arc<dyn Clock>, cfg: SimBackendConfig) -> Self {
        Self {
            clock,
            model: RuntimeLatencyModel::new(cfg.runtime).scaled(cfg.time_scale),
            time_scale: cfg.time_scale,
            snapshot_factor: cfg.snapshot_factor.clamp(0.0, 1.0),
            rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
            netns: None,
            timing: ShardedMap::new(),
            live: ShardedMap::new(),
            next_cookie: AtomicU64::new(1),
            creates: AtomicU64::new(0),
            invokes: AtomicU64::new(0),
        }
    }

    /// Attach a namespace pool so cold starts model the netns cost too.
    pub fn with_netns(mut self, pool: Arc<NamespacePool>) -> Self {
        self.netns = Some(pool);
        self
    }

    fn scale(&self, ms: u64) -> u64 {
        (ms as f64 * self.time_scale).round() as u64
    }

    pub fn creates(&self) -> u64 {
        self.creates.load(Ordering::Relaxed)
    }

    pub fn invokes(&self) -> u64 {
        self.invokes.load(Ordering::Relaxed)
    }

    pub fn live_containers(&self) -> usize {
        self.live.len()
    }
}

impl ContainerBackend for SimBackend {
    fn name(&self) -> &'static str {
        "null-sim"
    }

    fn create(&self, spec: &FunctionSpec) -> Result<Container, BackendError> {
        let sample = {
            let mut rng = self.rng.lock();
            self.model.sample(&mut *rng)
        };
        // Namespace first (pool hit is free; a miss pays the lock cost),
        // then the runtime's sandbox launch. §3.2: containers launch "from
        // disk, or from a previous snapshot if available" — after the first
        // launch of a function, a snapshot cuts the boot cost.
        let lease = self.netns.as_ref().map(|p| p.acquire());
        let had_snapshot = self.timing.contains_key(&spec.fqdn);
        self.timing
            .insert(spec.fqdn.clone(), (spec.warm_exec_ms, spec.init_ms));
        let create_ms = if had_snapshot {
            (sample.create_ms as f64 * self.snapshot_factor).round() as u64
        } else {
            sample.create_ms
        };
        self.clock.sleep_ms(create_ms + sample.rpc_ms);
        let mut container = Container::new(&spec.fqdn, spec.limits);
        container.netns = lease;
        let cookie = self.next_cookie.fetch_add(1, Ordering::Relaxed);
        container.backend_cookie = cookie;
        self.live.insert(cookie, ());
        self.creates.fetch_add(1, Ordering::Relaxed);
        Ok(container)
    }

    fn invoke(&self, container: &Container, args: &str) -> Result<InvokeOutput, BackendError> {
        if !self.live.contains_key(&container.backend_cookie) {
            return Err(BackendError::UnknownContainer);
        }
        // Timing comes from the spec seen at `create`; an explicit
        // `{"_sim_ms":N,"_sim_init_ms":M}` args envelope overrides it
        // (used by load generators replaying per-invocation durations).
        let (spec_warm, spec_init) = self.timing.get(&container.fqdn).unwrap_or((0, 0));
        let warm_ms = parse_sim_ms(args).unwrap_or(spec_warm);
        let exec_ms = if container.needs_init() {
            warm_ms + parse_sim_init_ms(args).unwrap_or(spec_init)
        } else {
            warm_ms
        };
        let scaled = self.scale(exec_ms);
        self.clock.sleep_ms(scaled);
        container.record_invocation();
        self.invokes.fetch_add(1, Ordering::Relaxed);
        // exec_ms reports the time actually charged (post-scaling) so that
        // end-to-end minus exec is a consistent overhead at any time scale;
        // the modelled (unscaled) duration rides in the body.
        Ok(InvokeOutput {
            body: format!("{{\"sim\":true,\"modelled_ms\":{exec_ms},\"charged_ms\":{scaled}}}"),
            exec_ms: scaled,
        })
    }

    fn destroy(&self, container: &Container) -> Result<(), BackendError> {
        if self.live.remove(&container.backend_cookie).is_none() {
            return Err(BackendError::UnknownContainer);
        }
        let sample = {
            let mut rng = self.rng.lock();
            self.model.sample(&mut *rng)
        };
        self.clock.sleep_ms(sample.destroy_ms);
        Ok(())
    }
}

/// Extract `"_sim_ms": N` from a JSON-ish args string without a full parser
/// (this is the only structured field the null backend reads).
fn parse_sim_field(args: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let at = args.find(&pat)?;
    let rest = &args[at + pat.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn parse_sim_ms(args: &str) -> Option<u64> {
    parse_sim_field(args, "_sim_ms")
}

fn parse_sim_init_ms(args: &str) -> Option<u64> {
    parse_sim_field(args, "_sim_init_ms")
}

/// Encode the simulated timing envelope the null backend understands.
pub fn sim_args(warm_ms: u64, init_ms: u64) -> String {
    format!("{{\"_sim_ms\":{warm_ms},\"_sim_init_ms\":{init_ms}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::ManualClock;

    fn backend() -> (Arc<ManualClock>, SimBackend) {
        let clock = Arc::new(ManualClock::new());
        let b = SimBackend::new(clock.clone(), SimBackendConfig::default());
        (clock, b)
    }

    #[test]
    fn create_consumes_virtual_time() {
        let (clock, b) = backend();
        let before = clock.now_ms();
        let _c = b.create(&FunctionSpec::new("f", "1")).unwrap();
        let dt = clock.now_ms() - before;
        assert!(dt > 100 && dt < 1500, "containerd-class create took {dt}ms");
        assert_eq!(b.creates(), 1);
    }

    #[test]
    fn first_invoke_pays_init_then_warm() {
        let (clock, b) = backend();
        let c = b.create(&FunctionSpec::new("f", "1")).unwrap();
        let args = sim_args(50, 200);
        let t0 = clock.now_ms();
        let out = b.invoke(&c, &args).unwrap();
        assert_eq!(out.exec_ms, 250, "cold = warm + init");
        assert_eq!(clock.now_ms() - t0, 250);
        let t1 = clock.now_ms();
        let out = b.invoke(&c, &args).unwrap();
        assert_eq!(out.exec_ms, 50, "warm run");
        assert_eq!(clock.now_ms() - t1, 50);
        assert_eq!(b.invokes(), 2);
    }

    #[test]
    fn destroy_releases_and_rejects_reuse() {
        let (_clock, b) = backend();
        let c = b.create(&FunctionSpec::new("f", "1")).unwrap();
        assert_eq!(b.live_containers(), 1);
        b.destroy(&c).unwrap();
        assert_eq!(b.live_containers(), 0);
        assert!(matches!(
            b.invoke(&c, ""),
            Err(BackendError::UnknownContainer)
        ));
    }

    #[test]
    fn time_scale_shrinks_latency() {
        let clock = Arc::new(ManualClock::new());
        let b = SimBackend::new(
            clock.clone(),
            SimBackendConfig {
                time_scale: 0.01,
                ..Default::default()
            },
        );
        let c = b.create(&FunctionSpec::new("f", "1")).unwrap();
        let t0 = clock.now_ms();
        b.invoke(&c, &sim_args(1000, 0)).unwrap();
        assert_eq!(clock.now_ms() - t0, 10, "1000ms scaled by 0.01");
    }

    #[test]
    fn spec_timing_used_without_args_envelope() {
        let (clock, b) = backend();
        let spec = FunctionSpec::new("f", "1").with_timing(40, 160);
        let c = b.create(&spec).unwrap();
        let t0 = clock.now_ms();
        let out = b.invoke(&c, "{}").unwrap();
        assert_eq!(out.exec_ms, 200, "cold from spec timing");
        assert_eq!(clock.now_ms() - t0, 200);
        let out = b.invoke(&c, "{}").unwrap();
        assert_eq!(out.exec_ms, 40, "warm from spec timing");
    }

    #[test]
    fn snapshot_accelerates_repeat_creates() {
        let clock = Arc::new(ManualClock::new());
        let b = SimBackend::new(
            clock.clone(),
            SimBackendConfig {
                snapshot_factor: 0.25,
                ..Default::default()
            },
        );
        let spec = FunctionSpec::new("f", "1");
        let t0 = clock.now_ms();
        let _c1 = b.create(&spec).unwrap();
        let first = clock.now_ms() - t0;
        let t1 = clock.now_ms();
        let _c2 = b.create(&spec).unwrap();
        let second = clock.now_ms() - t1;
        assert!(
            (second as f64) < first as f64 * 0.6,
            "snapshot restore ({second}ms) should undercut full boot ({first}ms)"
        );
        // A different function has no snapshot yet.
        let t2 = clock.now_ms();
        let _c3 = b.create(&FunctionSpec::new("g", "1")).unwrap();
        let third = clock.now_ms() - t2;
        assert!(third as f64 > second as f64 * 1.5, "g-1 pays a full boot");
    }

    #[test]
    fn sim_args_parse_roundtrip() {
        let s = sim_args(123, 456);
        assert_eq!(parse_sim_ms(&s), Some(123));
        assert_eq!(parse_sim_init_ms(&s), Some(456));
        assert_eq!(parse_sim_ms("{}"), None);
        assert_eq!(parse_sim_ms("{\"_sim_ms\": 77}"), Some(77));
    }

    #[test]
    fn netns_cost_charged_on_pool_miss() {
        let clock = Arc::new(ManualClock::new());
        let pool = Arc::new(NamespacePool::new(0, 100, clock.clone()));
        let b = SimBackend::new(clock.clone(), SimBackendConfig::default())
            .with_netns(Arc::clone(&pool));
        let t0 = clock.now_ms();
        let _c = b.create(&FunctionSpec::new("f", "1")).unwrap();
        assert!(clock.now_ms() - t0 >= 100, "empty pool adds netns cost");
        assert_eq!(pool.pool_misses(), 1);
    }
}
