//! Container isolation substrate.
//!
//! §3.4: the control plane uses "standard Linux containers" through a
//! deliberately small interface — "i) Create a container/sandbox with
//! specified resource limits and disk image/snapshot, ii) launch a task
//! inside it for the agent, and iii) destroy the container" — which "allows
//! Ilúvatar to support *multiple* container backends".
//!
//! This crate reproduces that layering:
//!
//! * [`backend::ContainerBackend`] — the three-operation trait.
//! * [`inprocess::InProcessBackend`] — containers as threads running the
//!   real agent protocol ([`agent`]) over loopback TCP; function code is a
//!   registered Rust closure. This exercises the genuine hot path (HTTP
//!   round trip, connection pool) for latency experiments.
//! * [`simulated::SimBackend`] — the paper's "null" backend (§3.4): no code
//!   runs, create/invoke consume clock time equal to the modelled cold-start
//!   and execution durations, so one machine simulates hundreds of cores.
//! * [`latency::RuntimeLatencyModel`] — calibrated cold-start cost models
//!   for containerd (~300 ms), Docker (~400 ms) and crun (~150 ms), the
//!   numbers §3.4 reports.
//! * [`netns::NamespacePool`] — the pre-created network namespace cache
//!   that removes the ~100 ms global-lock cost from cold starts (§3.3).
//! * [`image`] — registration-time image preparation (layer selection).

pub mod agent;
pub mod backend;
pub mod image;
pub mod inprocess;
pub mod latency;
pub mod netns;
pub mod simulated;
pub mod types;

pub use backend::{BackendError, ContainerBackend, InvokeOutput};
pub use inprocess::InProcessBackend;
pub use latency::{LatencySample, RuntimeKind, RuntimeLatencyModel};
pub use netns::{NamespaceLease, NamespacePool};
pub use simulated::SimBackend;
pub use types::{Container, ContainerId, ContainerState, FunctionSpec, ResourceLimits};
