//! Containers as in-process agents over loopback TCP.
//!
//! Each "container" is a booted [`Agent`](crate::agent::Agent) — a real HTTP
//! server on an ephemeral port hosting a registered Rust closure. The worker
//! talks to it with the pooled HTTP client, so the complete §3.2 hot path
//! (acquire container → `prepare_invoke` → `call_container` →
//! `download_result`) runs against genuine sockets. This backend produces
//! the Table 1 latency breakdown.

use crate::agent::{Agent, FunctionBehavior};
use crate::backend::{BackendError, ContainerBackend, InvokeOutput};
use crate::netns::NamespacePool;
use crate::types::{Container, FunctionSpec};
use iluvatar_http::{Method, PooledClient, Request, TENANT_HEADER, TRACE_HEADER};
use iluvatar_sync::ShardedMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Backend that runs functions as threads inside this process.
pub struct InProcessBackend {
    behaviors: ShardedMap<String, FunctionBehavior>,
    agents: ShardedMap<u64, Arc<Agent>>,
    next_cookie: AtomicU64,
    client: PooledClient,
    netns: Arc<NamespacePool>,
}

impl InProcessBackend {
    pub fn new(netns: Arc<NamespacePool>) -> Self {
        Self {
            behaviors: ShardedMap::new(),
            agents: ShardedMap::new(),
            next_cookie: AtomicU64::new(1),
            client: PooledClient::new(Duration::from_secs(60)),
            netns,
        }
    }

    /// Register the code that will run inside containers of `fqdn`.
    pub fn register_behavior(&self, fqdn: impl Into<String>, behavior: FunctionBehavior) {
        self.behaviors.insert(fqdn.into(), behavior);
    }

    /// Number of live agents.
    pub fn live_containers(&self) -> usize {
        self.agents.len()
    }

    /// Trace ids observed by all live agents — the agent-side half of the
    /// end-to-end trace propagation check.
    pub fn observed_traces(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.agents.for_each(|_, agent| {
            out.extend(agent.observed_traces());
        });
        out
    }

    /// Tenant labels observed by all live agents — the agent-side half of
    /// the tenant propagation check.
    pub fn observed_tenants(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.agents.for_each(|_, agent| {
            out.extend(agent.observed_tenants());
        });
        out
    }
}

impl ContainerBackend for InProcessBackend {
    fn name(&self) -> &'static str {
        "inprocess"
    }

    fn create(&self, spec: &FunctionSpec) -> Result<Container, BackendError> {
        let behavior = self
            .behaviors
            .get(&spec.fqdn)
            .ok_or_else(|| BackendError::CreateFailed(format!("no behavior for {}", spec.fqdn)))?;
        let lease = self.netns.acquire();
        let agent = Agent::boot(behavior)
            .map_err(|e| BackendError::CreateFailed(format!("agent boot: {e}")))?;
        let mut container = Container::new(&spec.fqdn, spec.limits);
        container.agent_addr = Some(agent.addr());
        container.netns = Some(lease);
        let cookie = self.next_cookie.fetch_add(1, Ordering::Relaxed);
        container.backend_cookie = cookie;
        self.agents.insert(cookie, Arc::new(agent));
        Ok(container)
    }

    fn invoke(&self, container: &Container, args: &str) -> Result<InvokeOutput, BackendError> {
        self.invoke_traced(container, args, None)
    }

    fn invoke_traced(
        &self,
        container: &Container,
        args: &str,
        trace: Option<&str>,
    ) -> Result<InvokeOutput, BackendError> {
        self.invoke_ctx(container, args, trace, None)
    }

    fn invoke_ctx(
        &self,
        container: &Container,
        args: &str,
        trace: Option<&str>,
        tenant: Option<&str>,
    ) -> Result<InvokeOutput, BackendError> {
        let addr = container.agent_addr.ok_or(BackendError::UnknownContainer)?;
        if !self.agents.contains_key(&container.backend_cookie) {
            return Err(BackendError::UnknownContainer);
        }
        let mut req = Request::new(Method::Post, "/invoke")
            .with_header("Content-Type", "application/json")
            .with_body(args.as_bytes().to_vec());
        if let Some(t) = trace {
            req = req.with_header(TRACE_HEADER, t);
        }
        if let Some(t) = tenant {
            req = req.with_header(TENANT_HEADER, t);
        }
        let resp = self
            .client
            .send(addr, &req)
            .map_err(|e| BackendError::InvokeFailed(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(BackendError::InvokeFailed(format!(
                "agent status {}",
                resp.status.0
            )));
        }
        let exec_ms = resp
            .header("x-duration-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        container.record_invocation();
        Ok(InvokeOutput {
            body: resp.body_str().to_string(),
            exec_ms,
        })
    }

    fn destroy(&self, container: &Container) -> Result<(), BackendError> {
        let agent = self
            .agents
            .remove(&container.backend_cookie)
            .ok_or(BackendError::UnknownContainer)?;
        if let Some(addr) = container.agent_addr {
            self.client.evict(addr);
        }
        drop(agent); // shuts the HTTP server down
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::SystemClock;

    fn backend() -> InProcessBackend {
        let netns = Arc::new(NamespacePool::new(2, 0, SystemClock::shared()));
        netns.prefill();
        InProcessBackend::new(netns)
    }

    fn spec() -> FunctionSpec {
        FunctionSpec::new("echo", "1")
    }

    #[test]
    fn create_invoke_destroy_roundtrip() {
        let b = backend();
        b.register_behavior(
            "echo-1",
            FunctionBehavior::from_body(|args| format!("[{args}]")),
        );
        let c = b.create(&spec()).unwrap();
        assert_eq!(b.live_containers(), 1);
        let out = b.invoke(&c, "7").unwrap();
        assert_eq!(out.body, "[7]");
        assert_eq!(c.invocations(), 1);
        b.destroy(&c).unwrap();
        assert_eq!(b.live_containers(), 0);
    }

    #[test]
    fn create_unregistered_fails() {
        let b = backend();
        assert!(matches!(
            b.create(&spec()),
            Err(BackendError::CreateFailed(_))
        ));
    }

    #[test]
    fn invoke_after_destroy_fails() {
        let b = backend();
        b.register_behavior("echo-1", FunctionBehavior::from_body(|_| "{}".into()));
        let c = b.create(&spec()).unwrap();
        b.destroy(&c).unwrap();
        assert!(matches!(
            b.invoke(&c, ""),
            Err(BackendError::UnknownContainer)
        ));
        assert!(matches!(b.destroy(&c), Err(BackendError::UnknownContainer)));
    }

    #[test]
    fn containers_are_isolated_per_function() {
        let b = backend();
        b.register_behavior("echo-1", FunctionBehavior::from_body(|_| "a".into()));
        b.register_behavior("other-1", FunctionBehavior::from_body(|_| "b".into()));
        let c1 = b.create(&spec()).unwrap();
        let c2 = b.create(&FunctionSpec::new("other", "1")).unwrap();
        assert_ne!(c1.agent_addr, c2.agent_addr, "distinct agents");
        assert_ne!(
            c1.netns.as_ref().unwrap().id(),
            c2.netns.as_ref().unwrap().id(),
            "distinct network namespaces"
        );
        assert_eq!(b.invoke(&c1, "").unwrap().body, "a");
        assert_eq!(b.invoke(&c2, "").unwrap().body, "b");
    }

    #[test]
    fn warm_invocations_reuse_container() {
        let b = backend();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.register_behavior(
            "echo-1",
            FunctionBehavior::from_body(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
                "{}".into()
            }),
        );
        let c = b.create(&spec()).unwrap();
        for _ in 0..5 {
            b.invoke(&c, "").unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(c.invocations(), 5);
        assert_eq!(
            b.live_containers(),
            1,
            "same container served all warm hits"
        );
    }

    #[test]
    fn trace_header_reaches_agent() {
        let b = backend();
        b.register_behavior("echo-1", FunctionBehavior::from_body(|_| "{}".into()));
        let c = b.create(&spec()).unwrap();
        b.invoke_traced(&c, "{}", Some("00000000deadbeef")).unwrap();
        assert!(
            b.observed_traces()
                .contains(&"00000000deadbeef".to_string()),
            "agent must observe the propagated trace id"
        );
        // Untraced invocations add nothing.
        b.invoke(&c, "{}").unwrap();
        assert_eq!(b.observed_traces().len(), 1);
    }

    #[test]
    fn tenant_header_reaches_agent() {
        let b = backend();
        b.register_behavior("echo-1", FunctionBehavior::from_body(|_| "{}".into()));
        let c = b.create(&spec()).unwrap();
        b.invoke_ctx(&c, "{}", Some("00000000deadbeef"), Some("acme"))
            .unwrap();
        assert!(
            b.observed_tenants().contains(&"acme".to_string()),
            "agent must observe the propagated tenant label"
        );
        // Unlabelled invocations add nothing.
        b.invoke(&c, "{}").unwrap();
        assert_eq!(b.observed_tenants().len(), 1);
        assert_eq!(
            b.observed_traces().len(),
            1,
            "trace still propagated alongside tenant"
        );
    }

    #[test]
    fn exec_time_reported() {
        let b = backend();
        b.register_behavior("echo-1", FunctionBehavior::sleeper(0, 30));
        let c = b.create(&spec()).unwrap();
        let out = b.invoke(&c, "").unwrap();
        assert!(out.exec_ms >= 25, "agent-reported exec {}ms", out.exec_ms);
    }
}
