//! Registration-time container image preparation.
//!
//! §3.2: registration "entails downloading and preparing its container disk
//! image. ... Container images are composed of multiple copy-on-write
//! layers, and we prepare the images by selecting the relevant layers for
//! the operating system and CPU architecture." This is done out-of-band of
//! the invocation path.
//!
//! The simulated registry resolves an image reference to a manifest of
//! layers tagged by (os, arch) and computes the prepared rootfs: the ordered
//! subset of layers matching the worker's platform.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Target platform of a layer or worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Platform {
    pub os: Os,
    pub arch: Arch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Os {
    Linux,
    Windows,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    Amd64,
    Arm64,
}

impl Platform {
    pub const LINUX_AMD64: Platform = Platform {
        os: Os::Linux,
        arch: Arch::Amd64,
    };
    pub const LINUX_ARM64: Platform = Platform {
        os: Os::Linux,
        arch: Arch::Arm64,
    };
}

/// One copy-on-write layer in an image manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Layer {
    /// Content digest, e.g. `sha256:ab12…`.
    pub digest: String,
    pub size_mb: u64,
    /// `None` means platform-independent (applies everywhere).
    pub platform: Option<Platform>,
}

/// A multi-platform image manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    pub reference: String,
    pub layers: Vec<Layer>,
}

/// A prepared, platform-specific rootfs ready to launch.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedImage {
    pub reference: String,
    /// Ordered digests of the selected layers.
    pub layers: Vec<String>,
    pub total_size_mb: u64,
}

/// Errors during image preparation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The reference is not in the registry.
    NotFound(String),
    /// No layer stack exists for the requested platform.
    NoPlatformMatch { reference: String },
    /// An empty or syntactically invalid reference.
    BadReference(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::NotFound(r) => write!(f, "image not found: {r}"),
            ImageError::NoPlatformMatch { reference } => {
                write!(f, "no layers match platform for {reference}")
            }
            ImageError::BadReference(r) => write!(f, "bad image reference: {r:?}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// An in-memory image registry (the DockerHub stand-in).
#[derive(Default)]
pub struct ImageRegistry {
    manifests: HashMap<String, Manifest>,
}

impl ImageRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a manifest (test/bench setup).
    pub fn publish(&mut self, manifest: Manifest) {
        self.manifests.insert(manifest.reference.clone(), manifest);
    }

    /// A registry pre-populated with a generic base image for any reference:
    /// used by backends that don't care about real layer contents.
    pub fn synthesize(reference: &str) -> Manifest {
        Manifest {
            reference: reference.to_string(),
            layers: vec![
                Layer {
                    digest: format!("sha256:base-{reference}"),
                    size_mb: 60,
                    platform: None,
                },
                Layer {
                    digest: format!("sha256:os-{reference}"),
                    size_mb: 40,
                    platform: Some(Platform::LINUX_AMD64),
                },
                Layer {
                    digest: format!("sha256:os-arm-{reference}"),
                    size_mb: 40,
                    platform: Some(Platform::LINUX_ARM64),
                },
                Layer {
                    digest: format!("sha256:app-{reference}"),
                    size_mb: 25,
                    platform: None,
                },
            ],
        }
    }

    /// Resolve and prepare `reference` for `platform`: select the layers
    /// that are platform-independent or exactly matching, preserving order.
    pub fn prepare(
        &self,
        reference: &str,
        platform: Platform,
    ) -> Result<PreparedImage, ImageError> {
        if reference.trim().is_empty() {
            return Err(ImageError::BadReference(reference.to_string()));
        }
        let manifest = self
            .manifests
            .get(reference)
            .ok_or_else(|| ImageError::NotFound(reference.to_string()))?;
        let selected: Vec<&Layer> = manifest
            .layers
            .iter()
            .filter(|l| l.platform.map(|p| p == platform).unwrap_or(true))
            .collect();
        // A valid image needs at least one platform-specific layer when the
        // manifest is multi-platform at all.
        let has_platform_layers = manifest.layers.iter().any(|l| l.platform.is_some());
        let selected_specific = selected.iter().any(|l| l.platform.is_some());
        if has_platform_layers && !selected_specific {
            return Err(ImageError::NoPlatformMatch {
                reference: reference.to_string(),
            });
        }
        Ok(PreparedImage {
            reference: reference.to_string(),
            layers: selected.iter().map(|l| l.digest.clone()).collect(),
            total_size_mb: selected.iter().map(|l| l.size_mb).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(reference: &str) -> ImageRegistry {
        let mut r = ImageRegistry::new();
        r.publish(ImageRegistry::synthesize(reference));
        r
    }

    #[test]
    fn prepare_selects_platform_layers() {
        let r = registry_with("lib/pyaes:latest");
        let img = r
            .prepare("lib/pyaes:latest", Platform::LINUX_AMD64)
            .unwrap();
        assert_eq!(img.layers.len(), 3); // base + amd64 + app
        assert!(img.layers.iter().any(|d| d.contains("os-lib")));
        assert!(!img.layers.iter().any(|d| d.contains("os-arm")));
        assert_eq!(img.total_size_mb, 125);
    }

    #[test]
    fn prepare_arm_selects_arm() {
        let r = registry_with("f:1");
        let img = r.prepare("f:1", Platform::LINUX_ARM64).unwrap();
        assert!(img.layers.iter().any(|d| d.contains("os-arm")));
    }

    #[test]
    fn missing_image_errors() {
        let r = ImageRegistry::new();
        assert_eq!(
            r.prepare("ghost:1", Platform::LINUX_AMD64),
            Err(ImageError::NotFound("ghost:1".into()))
        );
    }

    #[test]
    fn empty_reference_rejected() {
        let r = ImageRegistry::new();
        assert!(matches!(
            r.prepare("  ", Platform::LINUX_AMD64),
            Err(ImageError::BadReference(_))
        ));
    }

    #[test]
    fn platform_mismatch_detected() {
        let mut r = ImageRegistry::new();
        r.publish(Manifest {
            reference: "winonly:1".into(),
            layers: vec![Layer {
                digest: "sha256:w".into(),
                size_mb: 10,
                platform: Some(Platform {
                    os: Os::Windows,
                    arch: Arch::Amd64,
                }),
            }],
        });
        assert!(matches!(
            r.prepare("winonly:1", Platform::LINUX_AMD64),
            Err(ImageError::NoPlatformMatch { .. })
        ));
    }

    #[test]
    fn layer_order_preserved() {
        let r = registry_with("ord:1");
        let img = r.prepare("ord:1", Platform::LINUX_AMD64).unwrap();
        assert!(img.layers[0].contains("base"));
        assert!(img.layers[2].contains("app"));
    }
}
