//! The in-container agent.
//!
//! §3.2: "The images consist of the user-provided function code and our
//! agent, which is a simple Python HTTP server ... The agent has two simple
//! commands, a `GET /` endpoint for simple status checking, and a
//! `POST /invoke` to run an invocation with some arguments."
//!
//! Here the agent hosts a Rust closure instead of Python code; the wire
//! protocol is identical. Function *initialization* (imports, model loading)
//! runs when the agent boots — matching how a Python agent pays import cost
//! at server start — so a `prewarm`ed container has already absorbed it.

use crossbeam::channel;
use iluvatar_http::server::Handler;
use iluvatar_http::{HttpServer, Method, Request, Response, Status, TENANT_HEADER, TRACE_HEADER};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// How many recent trace ids the agent remembers for observability tests
/// and debugging.
const TRACE_MEMORY: usize = 256;

/// The function body: JSON arguments in, JSON result out.
pub type FunctionBody = Arc<dyn Fn(&str) -> String + Send + Sync>;

/// Everything a function registers with the in-process backend.
#[derive(Clone)]
pub struct FunctionBehavior {
    /// One-time initialization, run at agent boot (import cost).
    pub init: Arc<dyn Fn() + Send + Sync>,
    /// Per-invocation body.
    pub body: FunctionBody,
}

impl FunctionBehavior {
    /// A behavior with no init work.
    pub fn from_body(body: impl Fn(&str) -> String + Send + Sync + 'static) -> Self {
        Self {
            init: Arc::new(|| {}),
            body: Arc::new(body),
        }
    }

    /// A behavior whose init sleeps `init_ms` (models import latency) and
    /// whose body sleeps `exec_ms` then echoes the arguments.
    pub fn sleeper(init_ms: u64, exec_ms: u64) -> Self {
        Self {
            init: Arc::new(move || std::thread::sleep(std::time::Duration::from_millis(init_ms))),
            body: Arc::new(move |args: &str| {
                std::thread::sleep(std::time::Duration::from_millis(exec_ms));
                format!(
                    "{{\"echo\":{}}}",
                    if args.is_empty() { "null" } else { args }
                )
            }),
        }
    }
}

/// A running agent: HTTP server + hosted function.
pub struct Agent {
    server: HttpServer,
    addr: SocketAddr,
    traces: Arc<Mutex<VecDeque<String>>>,
    tenants: Arc<Mutex<VecDeque<String>>>,
}

impl Agent {
    /// Boot the agent: run init, start the HTTP server, and block until it
    /// accepts connections. The worker detects readiness via this return —
    /// the stand-in for the paper's inotify readiness callback.
    pub fn boot(behavior: FunctionBehavior) -> std::io::Result<Self> {
        // Initialization (imports / model download) happens before the
        // server is reachable, exactly like a Python agent's import block.
        (behavior.init)();
        let body = Arc::clone(&behavior.body);
        let traces: Arc<Mutex<VecDeque<String>>> = Arc::new(Mutex::new(VecDeque::new()));
        let traces2 = Arc::clone(&traces);
        let tenants: Arc<Mutex<VecDeque<String>>> = Arc::new(Mutex::new(VecDeque::new()));
        let tenants2 = Arc::clone(&tenants);
        let handler: Handler =
            Arc::new(move |req: Request| match (req.method, req.path.as_str()) {
                (Method::Get, "/") => Response::ok(&b"{\"status\":\"ok\"}"[..]),
                (Method::Post, "/invoke") => {
                    // Trace propagation: remember and echo the worker's trace id
                    // so agent-side time joins the same end-to-end trace.
                    let trace = req.header(TRACE_HEADER).map(|t| t.to_string());
                    if let Some(t) = &trace {
                        let mut seen = traces2.lock();
                        if seen.len() == TRACE_MEMORY {
                            seen.pop_front();
                        }
                        seen.push_back(t.clone());
                    }
                    // Tenant propagation mirrors trace propagation: remember and
                    // echo the label so per-tenant accounting spans the hop.
                    let tenant = req.header(TENANT_HEADER).map(|t| t.to_string());
                    if let Some(t) = &tenant {
                        let mut seen = tenants2.lock();
                        if seen.len() == TRACE_MEMORY {
                            seen.pop_front();
                        }
                        seen.push_back(t.clone());
                    }
                    let args = std::str::from_utf8(&req.body).unwrap_or("");
                    let start = Instant::now();
                    let result = body(args);
                    let dur_ms = start.elapsed().as_millis() as u64;
                    let mut resp = Response::ok(result)
                        .with_header("X-Duration-Ms", dur_ms.to_string())
                        .with_header("Content-Type", "application/json");
                    if let Some(t) = trace {
                        resp = resp.with_header(TRACE_HEADER, t);
                    }
                    if let Some(t) = tenant {
                        resp = resp.with_header(TENANT_HEADER, t);
                    }
                    resp
                }
                _ => Response::new(Status::NOT_FOUND),
            });
        let server = HttpServer::start(handler)?;
        let addr = server.addr();
        // Confirm the accept loop is live with a status probe.
        let (tx, rx) = channel::bounded(1);
        std::thread::spawn(move || {
            let req = Request::new(Method::Get, "/");
            let r = iluvatar_http::HttpClient::send(addr, &req, std::time::Duration::from_secs(5));
            let _ = tx.send(r.is_ok());
        });
        match rx.recv_timeout(std::time::Duration::from_secs(5)) {
            Ok(true) => Ok(Self {
                server,
                addr,
                traces,
                tenants,
            }),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "agent did not become ready",
            )),
        }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served (status checks + invocations).
    pub fn served(&self) -> u64 {
        self.server.handle().served()
    }

    /// Trace ids observed on `/invoke` requests, oldest first (bounded to
    /// the most recent 256 entries).
    pub fn observed_traces(&self) -> Vec<String> {
        self.traces.lock().iter().cloned().collect()
    }

    /// Tenant labels observed on `/invoke` requests, oldest first (bounded
    /// to the most recent 256 entries).
    pub fn observed_tenants(&self) -> Vec<String> {
        self.tenants.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_http::HttpClient;
    use std::time::Duration;

    fn probe(addr: SocketAddr, req: &Request) -> Response {
        HttpClient::send(addr, req, Duration::from_secs(5)).unwrap()
    }

    #[test]
    fn status_endpoint() {
        let agent = Agent::boot(FunctionBehavior::from_body(|_| "{}".into())).unwrap();
        let resp = probe(agent.addr(), &Request::new(Method::Get, "/"));
        assert_eq!(resp.status, Status::OK);
        assert!(resp.body_str().contains("ok"));
    }

    #[test]
    fn invoke_runs_body_and_reports_duration() {
        let agent = Agent::boot(FunctionBehavior::sleeper(0, 25)).unwrap();
        let resp = probe(
            agent.addr(),
            &Request::new(Method::Post, "/invoke").with_body(&b"{\"k\":1}"[..]),
        );
        assert_eq!(resp.status, Status::OK);
        assert!(resp.body_str().contains("\"k\":1"));
        let dur: u64 = resp.header("x-duration-ms").unwrap().parse().unwrap();
        assert!(dur >= 20, "reported duration {dur} below sleep time");
    }

    #[test]
    fn unknown_path_is_404() {
        let agent = Agent::boot(FunctionBehavior::from_body(|_| "{}".into())).unwrap();
        let resp = probe(agent.addr(), &Request::new(Method::Get, "/nope"));
        assert_eq!(resp.status, Status::NOT_FOUND);
    }

    #[test]
    fn init_runs_before_ready() {
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let behavior = FunctionBehavior {
            init: Arc::new(move || f2.store(true, std::sync::atomic::Ordering::SeqCst)),
            body: Arc::new(|_| "{}".into()),
        };
        let _agent = Agent::boot(behavior).unwrap();
        assert!(
            flag.load(std::sync::atomic::Ordering::SeqCst),
            "init must run at boot"
        );
    }

    #[test]
    fn served_counts_requests() {
        let agent = Agent::boot(FunctionBehavior::from_body(|_| "{}".into())).unwrap();
        let before = agent.served(); // boot probe counted
        probe(agent.addr(), &Request::new(Method::Post, "/invoke"));
        probe(agent.addr(), &Request::new(Method::Post, "/invoke"));
        assert_eq!(agent.served(), before + 2);
    }
}
