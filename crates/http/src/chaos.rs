//! HTTP-level fault injection: dropped and garbled responses.
//!
//! The container-backend injector (`iluvatar-chaos`) covers faults *below*
//! the control plane; this module covers the wire *between* control-plane
//! components — the load balancer → worker hop and the worker → agent hop.
//! [`wrap_handler`] interposes on a server's [`Handler`] and, per the seeded
//! plan, either drops the response (the connection closes with no bytes, so
//! the client sees `ConnectionClosed`) or garbles the body (bytes arrive but
//! are not the JSON the caller expects).
//!
//! Decisions are deterministic in `(seed, occurrence index)` — the same
//! seeded plan replays the same fault sequence, which is what lets the chaos
//! suite diff journal digests across runs.

use crate::message::{Request, Response, Status};
use crate::server::Handler;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Seeded plan for response-level faults.
#[derive(Debug, Clone)]
pub struct HttpFaultConfig {
    pub seed: u64,
    /// Probability a response is dropped (connection closed, no bytes).
    pub drop_prob: f64,
    /// Probability a response body is garbled (invalid JSON bytes).
    pub garble_prob: f64,
}

impl Default for HttpFaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_prob: 0.0,
            garble_prob: 0.0,
        }
    }
}

/// What the injector decided for one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpFault {
    None,
    Dropped,
    Garbled,
}

/// Counters of fired HTTP faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpFaultStats {
    pub seen: u64,
    pub dropped: u64,
    pub garbled: u64,
}

/// splitmix64 finalizer, same mixing as the backend-level plan.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic response-fault decisions with fired counters.
pub struct HttpFaultInjector {
    cfg: HttpFaultConfig,
    seen: AtomicU64,
    dropped: AtomicU64,
    garbled: AtomicU64,
}

impl HttpFaultInjector {
    pub fn new(cfg: HttpFaultConfig) -> Self {
        Self {
            cfg,
            seen: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            garbled: AtomicU64::new(0),
        }
    }

    /// Decide the fate of the next response. One occurrence is consumed per
    /// call; the drop and garble draws are independent hashes of it, with
    /// drop taking priority when both fire.
    pub fn decide(&self) -> HttpFault {
        let idx = self.seen.fetch_add(1, Ordering::Relaxed);
        let unit = |salt: u64| {
            (mix(self.cfg.seed ^ salt ^ idx.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64
                / (1u64 << 53) as f64
        };
        if self.cfg.drop_prob > 0.0 && unit(0x64726f70) < self.cfg.drop_prob {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return HttpFault::Dropped;
        }
        if self.cfg.garble_prob > 0.0 && unit(0x67617262) < self.cfg.garble_prob {
            self.garbled.fetch_add(1, Ordering::Relaxed);
            return HttpFault::Garbled;
        }
        HttpFault::None
    }

    pub fn stats(&self) -> HttpFaultStats {
        HttpFaultStats {
            seen: self.seen.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            garbled: self.garbled.load(Ordering::Relaxed),
        }
    }
}

/// Sentinel header signalling the connection thread to close the socket
/// without writing the response — the client observes a dropped response.
pub const DROP_HEADER: &str = "X-Chaos-Drop";

/// Wrap `handler` so its responses pass through `injector`.
///
/// * `Dropped` → the response is tagged with [`DROP_HEADER`]; the server's
///   connection loop closes the socket instead of writing it.
/// * `Garbled` → the body is replaced with bytes that parse as HTTP but not
///   as the JSON payload the caller expects.
pub fn wrap_handler(handler: Handler, injector: Arc<HttpFaultInjector>) -> Handler {
    Arc::new(move |req: Request| {
        let resp = handler(req);
        match injector.decide() {
            HttpFault::None => resp,
            HttpFault::Dropped => resp.with_header(DROP_HEADER, "1"),
            HttpFault::Garbled => Response::new(Status::OK)
                .with_header("Content-Type", "application/json")
                .with_body(&b"\x00\xff{garbled"[..]),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(cfg: HttpFaultConfig, n: u64) -> Vec<HttpFault> {
        let inj = HttpFaultInjector::new(cfg);
        (0..n).map(|_| inj.decide()).collect()
    }

    #[test]
    fn zero_probs_never_fault() {
        let out = decisions(HttpFaultConfig::default(), 100);
        assert!(out.iter().all(|&f| f == HttpFault::None));
    }

    #[test]
    fn decisions_replay_with_seed() {
        let cfg = HttpFaultConfig {
            seed: 11,
            drop_prob: 0.2,
            garble_prob: 0.2,
        };
        assert_eq!(decisions(cfg.clone(), 256), decisions(cfg.clone(), 256));
        let other = HttpFaultConfig { seed: 12, ..cfg };
        assert_ne!(decisions(other, 256), decisions(cfg, 256));
    }

    #[test]
    fn stats_count_fired_faults() {
        let inj = HttpFaultInjector::new(HttpFaultConfig {
            seed: 3,
            drop_prob: 0.5,
            garble_prob: 0.5,
        });
        for _ in 0..200 {
            inj.decide();
        }
        let st = inj.stats();
        assert_eq!(st.seen, 200);
        assert!(st.dropped > 0 && st.garbled > 0);
        assert!(st.dropped + st.garbled <= 200);
    }

    #[test]
    fn wrapped_handler_tags_and_garbles() {
        let inner: Handler = Arc::new(|_req| Response::ok("{\"ok\":true}"));
        // drop_prob 1.0: every response is tagged for dropping.
        let inj = Arc::new(HttpFaultInjector::new(HttpFaultConfig {
            seed: 1,
            drop_prob: 1.0,
            garble_prob: 0.0,
        }));
        let wrapped = wrap_handler(inner.clone(), Arc::clone(&inj));
        let resp = wrapped(Request::new(crate::Method::Get, "/"));
        assert_eq!(resp.header(DROP_HEADER), Some("1"));

        // garble_prob 1.0: body is replaced with non-JSON bytes.
        let inj = Arc::new(HttpFaultInjector::new(HttpFaultConfig {
            seed: 1,
            drop_prob: 0.0,
            garble_prob: 1.0,
        }));
        let wrapped = wrap_handler(inner, inj);
        let resp = wrapped(Request::new(crate::Method::Get, "/"));
        assert_eq!(resp.header(DROP_HEADER), None);
        assert!(std::str::from_utf8(&resp.body).is_err() || resp.body_str().contains("garbled"));
    }
}
