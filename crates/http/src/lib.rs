//! A from-scratch HTTP/1.1 implementation for the agent protocol.
//!
//! Each function container runs "a simple Python HTTP server" agent with two
//! endpoints — `GET /` for status and `POST /invoke` to run an invocation
//! (§3.2). The worker keeps **one pooled client per container** with
//! connection reuse, which the paper reports saves up to 3 ms per invocation
//! (§3.3, "HTTP Clients").
//!
//! This crate provides exactly what that protocol needs and nothing more:
//! request/response types, an incremental parser, a threaded server, and a
//! keep-alive client pool. Bodies are byte buffers sized by
//! `Content-Length`; chunked encoding is intentionally unsupported (the
//! agent never emits it).

pub mod chaos;
pub mod client;
pub mod message;
pub mod parse;
pub mod server;

pub use chaos::{HttpFault, HttpFaultConfig, HttpFaultInjector, HttpFaultStats};
pub use client::{HttpClient, PooledClient};
pub use message::{Method, Request, Response, Status};
pub use parse::{parse_request, parse_response, ParseError, ParseOutcome};
pub use server::{HttpServer, ServerHandle};

/// Header carrying the invocation trace id across the worker → agent hop,
/// so agent-side time is attributed to the same end-to-end trace.
pub const TRACE_HEADER: &str = "X-Iluvatar-Trace";

/// Header carrying the tenant label for multi-tenant admission control and
/// fair scheduling; propagated alongside [`TRACE_HEADER`] on every hop
/// (client → worker → agent).
pub const TENANT_HEADER: &str = "X-Iluvatar-Tenant";

/// Header carrying the emitting source's latest canonical-telemetry
/// sequence number on API responses (worker and balancer). A caller that
/// records this value can order its own observation against the source's
/// event stream — "everything I caused has seq ≤ this".
pub const SEQ_HEADER: &str = "X-Iluvatar-Seq";

/// Header reporting what the result cache did for an invoke response:
/// `hit` (served from cache, no worker touched), `miss` (dispatched and
/// cached on return), or `bypass` (cache disabled or the function is not
/// registered idempotent).
pub const CACHE_HEADER: &str = "X-Iluvatar-Cache";

/// Errors surfaced by the client and server.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// Malformed wire data.
    Parse(ParseError),
    /// The peer closed the connection before a complete message arrived.
    ConnectionClosed,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Parse(e) => write!(f, "parse error: {e}"),
            HttpError::ConnectionClosed => write!(f, "connection closed mid-message"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl From<ParseError> for HttpError {
    fn from(e: ParseError) -> Self {
        HttpError::Parse(e)
    }
}
