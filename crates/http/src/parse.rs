//! Incremental HTTP/1.1 message parsing.
//!
//! Parsers take the bytes buffered so far and either produce a complete
//! message plus the number of bytes consumed, or report that more input is
//! needed. Callers loop `read -> parse` until complete — the usual shape for
//! a blocking reader with keep-alive connections.

use crate::message::{Method, Request, Response, Status};
use bytes::Bytes;

/// Parse failures that can never be fixed by more input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The start line was malformed.
    BadStartLine(String),
    /// An unsupported method token.
    BadMethod(String),
    /// A header line without a colon, or invalid UTF-8.
    BadHeader(String),
    /// Content-Length was present but not a number.
    BadContentLength(String),
    /// Headers exceeded the sanity cap.
    TooLarge,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadStartLine(l) => write!(f, "bad start line: {l:?}"),
            ParseError::BadMethod(m) => write!(f, "bad method: {m:?}"),
            ParseError::BadHeader(h) => write!(f, "bad header: {h:?}"),
            ParseError::BadContentLength(v) => write!(f, "bad content-length: {v:?}"),
            ParseError::TooLarge => write!(f, "header section too large"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Result of attempting to parse a buffered prefix.
#[derive(Debug)]
pub enum ParseOutcome<T> {
    /// A full message and how many input bytes it consumed.
    Complete(T, usize),
    /// Valid so far, but incomplete.
    Incomplete,
}

/// Sanity cap on the header section; the agent protocol's headers are tiny.
const MAX_HEAD: usize = 64 * 1024;

/// Find `\r\n\r\n`, returning the offset just past it.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

struct Head {
    start_line: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    head_len: usize,
}

fn parse_head(buf: &[u8]) -> Result<Option<Head>, ParseError> {
    let head_end = match find_head_end(buf) {
        Some(e) => e,
        None => {
            if buf.len() > MAX_HEAD {
                return Err(ParseError::TooLarge);
            }
            return Ok(None);
        }
    };
    if head_end > MAX_HEAD {
        return Err(ParseError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| ParseError::BadHeader("non-utf8 header section".into()))?;
    let mut lines = head.split("\r\n");
    let start_line = lines
        .next()
        .ok_or_else(|| ParseError::BadStartLine(String::new()))?
        .to_string();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let colon = line
            .find(':')
            .ok_or_else(|| ParseError::BadHeader(line.to_string()))?;
        let name = line[..colon].trim().to_string();
        let value = line[colon + 1..].trim().to_string();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ParseError::BadContentLength(value.clone()))?;
        }
        headers.push((name, value));
    }
    Ok(Some(Head {
        start_line,
        headers,
        content_length,
        head_len: head_end,
    }))
}

/// Try to parse one request from `buf`.
pub fn parse_request(buf: &[u8]) -> Result<ParseOutcome<Request>, ParseError> {
    let head = match parse_head(buf)? {
        Some(h) => h,
        None => return Ok(ParseOutcome::Incomplete),
    };
    let total = head.head_len + head.content_length;
    if buf.len() < total {
        return Ok(ParseOutcome::Incomplete);
    }
    let mut parts = head.start_line.split_whitespace();
    let method_tok = parts
        .next()
        .ok_or_else(|| ParseError::BadStartLine(head.start_line.clone()))?;
    let method =
        Method::parse(method_tok).ok_or_else(|| ParseError::BadMethod(method_tok.to_string()))?;
    let path = parts
        .next()
        .ok_or_else(|| ParseError::BadStartLine(head.start_line.clone()))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1") => {}
        _ => return Err(ParseError::BadStartLine(head.start_line.clone())),
    }
    let body = Bytes::copy_from_slice(&buf[head.head_len..total]);
    Ok(ParseOutcome::Complete(
        Request {
            method,
            path,
            headers: head.headers,
            body,
        },
        total,
    ))
}

/// Try to parse one response from `buf`.
pub fn parse_response(buf: &[u8]) -> Result<ParseOutcome<Response>, ParseError> {
    let head = match parse_head(buf)? {
        Some(h) => h,
        None => return Ok(ParseOutcome::Incomplete),
    };
    let total = head.head_len + head.content_length;
    if buf.len() < total {
        return Ok(ParseOutcome::Incomplete);
    }
    let mut parts = head.start_line.split_whitespace();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1") => {}
        _ => return Err(ParseError::BadStartLine(head.start_line.clone())),
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| ParseError::BadStartLine(head.start_line.clone()))?;
    let body = Bytes::copy_from_slice(&buf[head.head_len..total]);
    Ok(ParseOutcome::Complete(
        Response {
            status: Status(code),
            headers: head.headers,
            body,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let wire = b"GET / HTTP/1.1\r\nHost: a\r\n\r\n";
        match parse_request(wire).unwrap() {
            ParseOutcome::Complete(req, used) => {
                assert_eq!(req.method, Method::Get);
                assert_eq!(req.path, "/");
                assert_eq!(req.header("host"), Some("a"));
                assert_eq!(used, wire.len());
                assert!(req.body.is_empty());
            }
            _ => panic!("should be complete"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let wire = b"POST /invoke HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        match parse_request(wire).unwrap() {
            ParseOutcome::Complete(req, used) => {
                assert_eq!(req.method, Method::Post);
                assert_eq!(&req.body[..], b"hello");
                assert_eq!(used, wire.len());
            }
            _ => panic!("should be complete"),
        }
    }

    #[test]
    fn incomplete_head_needs_more() {
        assert!(matches!(
            parse_request(b"POST /invoke HTT").unwrap(),
            ParseOutcome::Incomplete
        ));
    }

    #[test]
    fn incomplete_body_needs_more() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(
            parse_request(wire).unwrap(),
            ParseOutcome::Incomplete
        ));
    }

    #[test]
    fn pipelined_messages_report_consumed() {
        let one = b"GET /a HTTP/1.1\r\n\r\n";
        let mut wire = one.to_vec();
        wire.extend_from_slice(b"GET /b HTTP/1.1\r\n\r\n");
        match parse_request(&wire).unwrap() {
            ParseOutcome::Complete(req, used) => {
                assert_eq!(req.path, "/a");
                assert_eq!(used, one.len());
                match parse_request(&wire[used..]).unwrap() {
                    ParseOutcome::Complete(req2, _) => assert_eq!(req2.path, "/b"),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_bad_method() {
        let wire = b"BREW / HTTP/1.1\r\n\r\n";
        assert!(matches!(parse_request(wire), Err(ParseError::BadMethod(_))));
    }

    #[test]
    fn rejects_bad_content_length() {
        let wire = b"GET / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n";
        assert!(matches!(
            parse_request(wire),
            Err(ParseError::BadContentLength(_))
        ));
    }

    #[test]
    fn rejects_missing_version() {
        let wire = b"GET /\r\n\r\n";
        assert!(matches!(
            parse_request(wire),
            Err(ParseError::BadStartLine(_))
        ));
    }

    #[test]
    fn rejects_header_without_colon() {
        let wire = b"GET / HTTP/1.1\r\nbadheader\r\n\r\n";
        assert!(matches!(parse_request(wire), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok(&b"{\"ok\":true}"[..]).with_header("X-Duration-Ms", "3");
        let wire = resp.encode();
        match parse_response(&wire).unwrap() {
            ParseOutcome::Complete(r, used) => {
                assert_eq!(r.status, Status::OK);
                assert_eq!(r.header("x-duration-ms"), Some("3"));
                assert_eq!(r.body_str(), "{\"ok\":true}");
                assert_eq!(used, wire.len());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Method::Post, "/invoke")
            .with_header("Host", "x")
            .with_body(&b"payload"[..]);
        let wire = req.encode();
        match parse_request(&wire).unwrap() {
            ParseOutcome::Complete(r, used) => {
                assert_eq!(r.method, Method::Post);
                assert_eq!(r.path, "/invoke");
                assert_eq!(&r.body[..], b"payload");
                assert_eq!(used, wire.len());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn oversized_head_rejected() {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        while wire.len() <= MAX_HEAD {
            wire.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        // No terminating blank line: parser must give up rather than wait.
        assert!(matches!(parse_request(&wire), Err(ParseError::TooLarge)));
    }
}
