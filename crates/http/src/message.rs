//! HTTP request/response value types and serialization.

use bytes::{BufMut, Bytes, BytesMut};

/// The request methods the agent protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
    Head,
}

impl Method {
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

/// Response status codes used by the agent and worker APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    pub const OK: Status = Status(200);
    pub const BAD_REQUEST: Status = Status(400);
    pub const NOT_FOUND: Status = Status(404);
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    pub const INTERNAL_ERROR: Status = Status(500);
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Bytes,
}

impl Request {
    pub fn new(method: Method, path: impl Into<String>) -> Self {
        Self {
            method,
            path: path.into(),
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    pub fn with_body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Serialize onto the wire. `Content-Length` is always emitted.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(128 + self.body.len());
        buf.put_slice(self.method.as_str().as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.path.as_bytes());
        buf.put_slice(b" HTTP/1.1\r\n");
        for (k, v) in &self.headers {
            if k.eq_ignore_ascii_case("content-length") {
                continue; // always recomputed
            }
            buf.put_slice(k.as_bytes());
            buf.put_slice(b": ");
            buf.put_slice(v.as_bytes());
            buf.put_slice(b"\r\n");
        }
        buf.put_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        buf.put_slice(&self.body);
        buf.freeze()
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: Status,
    pub headers: Vec<(String, String)>,
    pub body: Bytes,
}

impl Response {
    pub fn new(status: Status) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    pub fn ok(body: impl Into<Bytes>) -> Self {
        Self::new(Status::OK).with_body(body)
    }

    pub fn with_body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(128 + self.body.len());
        buf.put_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason()).as_bytes(),
        );
        for (k, v) in &self.headers {
            if k.eq_ignore_ascii_case("content-length") {
                continue;
            }
            buf.put_slice(k.as_bytes());
            buf.put_slice(b": ");
            buf.put_slice(v.as_bytes());
            buf.put_slice(b"\r\n");
        }
        buf.put_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        buf.put_slice(&self.body);
        buf.freeze()
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_roundtrip() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Head,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(Status::OK.reason(), "OK");
        assert!(Status::OK.is_success());
        assert!(!Status::INTERNAL_ERROR.is_success());
        assert_eq!(Status(599).reason(), "Unknown");
    }

    #[test]
    fn request_encode_includes_length() {
        let r = Request::new(Method::Post, "/invoke")
            .with_header("Host", "container")
            .with_body(&b"{\"x\":1}"[..]);
        let wire = r.encode();
        let text = std::str::from_utf8(&wire).unwrap();
        assert!(text.starts_with("POST /invoke HTTP/1.1\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }

    #[test]
    fn user_content_length_is_overridden() {
        let r = Request::new(Method::Get, "/").with_header("Content-Length", "999");
        let text = String::from_utf8(r.encode().to_vec()).unwrap();
        assert!(text.contains("Content-Length: 0\r\n"));
        assert!(!text.contains("999"));
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let r = Response::new(Status::OK).with_header("X-Duration-Ms", "12");
        assert_eq!(r.header("x-duration-ms"), Some("12"));
        assert_eq!(r.header("missing"), None);
    }

    #[test]
    fn response_body_str() {
        let r = Response::ok(&b"hello"[..]);
        assert_eq!(r.body_str(), "hello");
    }
}
