//! HTTP client with per-address connection pooling.
//!
//! §3.3 ("HTTP Clients"): "Instead of creating a new HTTP client for every
//! invocation, we cache a client per container and use connection pooling.
//! This affects all invocations (even warm starts), and reduces the
//! control-plane overhead latency by up to 3 ms."
//!
//! [`HttpClient`] issues one request over a fresh connection;
//! [`PooledClient`] keeps idle connections per target address and reuses
//! them, transparently reconnecting when the server closed a pooled socket.

use crate::message::{Request, Response};
use crate::parse::{parse_response, ParseOutcome};
use crate::HttpError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issue `req` over `stream` and block for the full response.
fn roundtrip(stream: &mut TcpStream, req: &Request) -> Result<Response, HttpError> {
    stream.write_all(&req.encode())?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut tmp = [0u8; 16 * 1024];
    loop {
        match parse_response(&buf)? {
            ParseOutcome::Complete(resp, _used) => return Ok(resp),
            ParseOutcome::Incomplete => {}
        }
        match stream.read(&mut tmp) {
            Ok(0) => return Err(HttpError::ConnectionClosed),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// A one-shot client: connect, send, receive, drop.
pub struct HttpClient;

impl HttpClient {
    /// Send `req` to `addr` over a new connection.
    pub fn send(addr: SocketAddr, req: &Request, timeout: Duration) -> Result<Response, HttpError> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        roundtrip(&mut stream, req)
    }
}

/// A connection-pooling client.
///
/// Idle connections are keyed by target address. `send` checks a connection
/// out of the pool (or dials), performs the round trip, and returns the
/// connection on success. A pooled connection that the server has since
/// closed is detected by the failed round trip and retried once on a fresh
/// connection.
pub struct PooledClient {
    idle: Mutex<HashMap<SocketAddr, Vec<TcpStream>>>,
    timeout: Duration,
    max_idle_per_addr: usize,
}

impl PooledClient {
    pub fn new(timeout: Duration) -> Self {
        Self {
            idle: Mutex::new(HashMap::new()),
            timeout,
            max_idle_per_addr: 4,
        }
    }

    fn checkout(&self, addr: SocketAddr) -> Option<TcpStream> {
        self.idle.lock().get_mut(&addr)?.pop()
    }

    fn checkin(&self, addr: SocketAddr, stream: TcpStream) {
        let mut idle = self.idle.lock();
        let slot = idle.entry(addr).or_default();
        if slot.len() < self.max_idle_per_addr {
            slot.push(stream);
        }
    }

    fn dial(&self, addr: SocketAddr) -> Result<TcpStream, HttpError> {
        let stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    /// Send `req`, reusing a pooled connection when possible.
    pub fn send(&self, addr: SocketAddr, req: &Request) -> Result<Response, HttpError> {
        if let Some(mut stream) = self.checkout(addr) {
            match roundtrip(&mut stream, req) {
                Ok(resp) => {
                    self.checkin(addr, stream);
                    return Ok(resp);
                }
                Err(_stale) => {
                    // Pooled socket had gone away; fall through to redial.
                }
            }
        }
        let mut stream = self.dial(addr)?;
        let resp = roundtrip(&mut stream, req)?;
        self.checkin(addr, stream);
        Ok(resp)
    }

    /// Number of idle pooled connections to `addr`.
    pub fn idle_count(&self, addr: SocketAddr) -> usize {
        self.idle.lock().get(&addr).map(|v| v.len()).unwrap_or(0)
    }

    /// Drop all idle connections to `addr` (container destroyed).
    pub fn evict(&self, addr: SocketAddr) {
        self.idle.lock().remove(&addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Method, Response as Resp};
    use crate::server::HttpServer;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn server() -> (HttpServer, Arc<AtomicU64>) {
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let s = HttpServer::start(Arc::new(move |req| {
            h2.fetch_add(1, Ordering::SeqCst);
            Resp::ok(req.body.clone())
        }))
        .unwrap();
        (s, hits)
    }

    #[test]
    fn one_shot_client() {
        let (s, _) = server();
        let resp = HttpClient::send(
            s.addr(),
            &Request::new(Method::Post, "/invoke").with_body(&b"x"[..]),
            Duration::from_secs(2),
        )
        .unwrap();
        assert!(resp.status.is_success());
        assert_eq!(resp.body_str(), "x");
    }

    #[test]
    fn pooled_client_reuses_connection() {
        let (s, hits) = server();
        let pc = PooledClient::new(Duration::from_secs(2));
        for i in 0..5 {
            let resp = pc
                .send(
                    s.addr(),
                    &Request::new(Method::Get, "/").with_body(i.to_string()),
                )
                .unwrap();
            assert_eq!(resp.body_str(), i.to_string());
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(pc.idle_count(s.addr()), 1, "one idle pooled connection");
    }

    #[test]
    fn pooled_client_redials_after_server_restart() {
        let (s, _) = server();
        let addr = s.addr();
        let pc = PooledClient::new(Duration::from_secs(2));
        pc.send(addr, &Request::new(Method::Get, "/")).unwrap();
        drop(s); // signal shutdown; connection threads exit within ~200ms
        std::thread::sleep(Duration::from_millis(400));
        // Pooled socket is dead and nothing listens on the port anymore:
        // the retry path must surface an error rather than hang.
        assert!(pc.send(addr, &Request::new(Method::Get, "/")).is_err());
    }

    #[test]
    fn evict_clears_pool() {
        let (s, _) = server();
        let pc = PooledClient::new(Duration::from_secs(2));
        pc.send(s.addr(), &Request::new(Method::Get, "/")).unwrap();
        assert_eq!(pc.idle_count(s.addr()), 1);
        pc.evict(s.addr());
        assert_eq!(pc.idle_count(s.addr()), 0);
    }

    #[test]
    fn pool_caps_idle_connections() {
        let (s, _) = server();
        let pc = PooledClient::new(Duration::from_secs(2));
        // Sequential sends only ever park one connection, so force several.
        let streams: Vec<_> = (0..8).map(|_| pc.dial(s.addr()).unwrap()).collect();
        for st in streams {
            pc.checkin(s.addr(), st);
        }
        assert_eq!(pc.idle_count(s.addr()), pc.max_idle_per_addr);
    }
}
