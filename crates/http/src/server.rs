//! A small threaded HTTP/1.1 server with keep-alive connections.
//!
//! This is the transport under both the in-container agent (§3.2) and the
//! worker's HTTP API (§3.1). One thread per connection is plenty: an agent
//! serves exactly one pooled client (the worker), and test deployments see
//! tens of connections at most.

use crate::message::{Request, Response, Status};
use crate::parse::{parse_request, ParseOutcome};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Request handler: maps a request to a response. Must be cheap to share.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server bound to a local port.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    served: Arc<AtomicU64>,
}

/// A cheap handle carrying the server address and live counters.
#[derive(Clone)]
pub struct ServerHandle {
    pub addr: SocketAddr,
    served: Arc<AtomicU64>,
}

impl ServerHandle {
    /// Total requests served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl HttpServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving `handler`.
    pub fn start(handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        // A short accept timeout lets the accept loop observe shutdown.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let served2 = Arc::clone(&served);
        let accept_thread = std::thread::Builder::new()
            .name(format!("http-accept-{}", addr.port()))
            .spawn(move || accept_loop(listener, handler, stop2, served2))?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            served,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            served: Arc::clone(&self.served),
        }
    }

    /// Signal shutdown and join the accept loop. In-flight connection
    /// threads finish their current request and exit on next read timeout.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: Handler,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let served = Arc::clone(&served);
                let _ = std::thread::Builder::new()
                    .name("http-conn".into())
                    .spawn(move || connection_loop(stream, handler, stop, served));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn connection_loop(
    stream: TcpStream,
    handler: Handler,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut tmp = [0u8; 16 * 1024];
    loop {
        // Parse whatever is already buffered (pipelining / keep-alive).
        match parse_request(&buf) {
            Ok(ParseOutcome::Complete(req, used)) => {
                buf.drain(..used);
                let close = req
                    .header("connection")
                    .map(|v| v.eq_ignore_ascii_case("close"))
                    .unwrap_or(false);
                let resp = handler(req);
                served.fetch_add(1, Ordering::Relaxed);
                // Chaos drop: a handler wrapped by `chaos::wrap_handler` tags
                // responses to be dropped; close without writing a byte.
                if resp.header(crate::chaos::DROP_HEADER).is_some() {
                    return;
                }
                if stream.write_all(&resp.encode()).is_err() {
                    return;
                }
                if close {
                    return;
                }
                continue;
            }
            Ok(ParseOutcome::Incomplete) => {}
            Err(_) => {
                let resp = Response::new(Status::BAD_REQUEST);
                let _ = stream.write_all(&resp.encode());
                return;
            }
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Keep-alive idle; poll the stop flag and wait again.
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Method;

    fn echo_server() -> HttpServer {
        HttpServer::start(Arc::new(|req: Request| {
            Response::ok(req.body.clone()).with_header("X-Path", req.path)
        }))
        .unwrap()
    }

    fn raw_roundtrip(addr: SocketAddr, wire: &[u8]) -> Vec<u8> {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(wire).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut out = Vec::new();
        let mut tmp = [0u8; 4096];
        loop {
            if let Ok(ParseOutcome::Complete(..)) = crate::parse::parse_response(&out) {
                break;
            }
            match s.read(&mut tmp) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&tmp[..n]),
                Err(_) => break,
            }
        }
        out
    }

    #[test]
    fn serves_echo() {
        let server = echo_server();
        let req = Request::new(Method::Post, "/invoke").with_body(&b"ping"[..]);
        let raw = raw_roundtrip(server.addr(), &req.encode());
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("X-Path: /invoke"));
        assert!(text.ends_with("ping"));
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = Vec::new();
        let mut tmp = [0u8; 4096];
        for i in 0..3 {
            let req = Request::new(Method::Post, "/n").with_body(format!("req{i}"));
            s.write_all(&req.encode()).unwrap();
            loop {
                if let Ok(ParseOutcome::Complete(resp, used)) = crate::parse::parse_response(&buf) {
                    assert_eq!(resp.body_str(), format!("req{i}"));
                    buf.drain(..used);
                    break;
                }
                let n = s.read(&mut tmp).unwrap();
                assert!(n > 0, "server closed keep-alive connection");
                buf.extend_from_slice(&tmp[..n]);
            }
        }
        assert_eq!(server.handle().served(), 3);
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let raw = raw_roundtrip(server.addr(), b"NOTHTTP / HTTP/1.1\r\n\r\n");
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    }

    #[test]
    fn connection_close_honored() {
        let server = echo_server();
        let req = Request::new(Method::Get, "/").with_header("Connection", "close");
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&req.encode()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut all = Vec::new();
        let _ = s.read_to_end(&mut all); // server must close, ending the read
        assert!(String::from_utf8_lossy(&all).starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // Connection may be accepted by OS backlog, but a request must not
        // be served; allow either failure mode.
        let res = TcpStream::connect(addr);
        if let Ok(mut s) = res {
            let _ = s.write_all(&Request::new(Method::Get, "/").encode());
            let mut out = Vec::new();
            s.set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            let _ = s.read_to_end(&mut out);
            assert!(out.is_empty(), "shutdown server must not answer");
        }
    }
}
