//! Property tests: encode ∘ parse is the identity for the message types, and
//! the parser never panics on arbitrary bytes.

use iluvatar_http::{
    parse_request, parse_response, Method, ParseOutcome, Request, Response, Status,
};
use proptest::prelude::*;

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Post),
        Just(Method::Put),
        Just(Method::Delete),
        Just(Method::Head),
    ]
}

fn arb_path() -> impl Strategy<Value = String> {
    "/[a-zA-Z0-9_/]{0,30}"
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-zA-Z][a-zA-Z-]{0,15}", "[ -~&&[^:]]{0,30}"), 0..6).prop_map(
        |hs| {
            // Header lookup returns the first case-insensitive match, so the
            // roundtrip property only holds for distinct keys.
            let mut seen = std::collections::HashSet::new();
            hs.into_iter()
                .filter(|(k, _)| !k.eq_ignore_ascii_case("content-length"))
                .filter(|(k, _)| seen.insert(k.to_ascii_lowercase()))
                .map(|(k, v)| (k, v.trim().to_string()))
                .collect()
        },
    )
}

proptest! {
    #[test]
    fn request_encode_parse_roundtrip(
        method in arb_method(),
        path in arb_path(),
        headers in arb_headers(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut req = Request::new(method, path.clone()).with_body(body.clone());
        req.headers = headers.clone();
        let wire = req.encode();
        match parse_request(&wire).unwrap() {
            ParseOutcome::Complete(parsed, used) => {
                prop_assert_eq!(used, wire.len());
                prop_assert_eq!(parsed.method, method);
                prop_assert_eq!(&parsed.path, &path);
                prop_assert_eq!(&parsed.body[..], &body[..]);
                for (k, v) in &headers {
                    prop_assert_eq!(parsed.header(k), Some(v.as_str()));
                }
            }
            ParseOutcome::Incomplete => prop_assert!(false, "complete wire parsed as incomplete"),
        }
    }

    #[test]
    fn response_encode_parse_roundtrip(
        code in 100u16..600,
        headers in arb_headers(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut resp = Response::new(Status(code)).with_body(body.clone());
        resp.headers = headers;
        let wire = resp.encode();
        match parse_response(&wire).unwrap() {
            ParseOutcome::Complete(parsed, used) => {
                prop_assert_eq!(used, wire.len());
                prop_assert_eq!(parsed.status.0, code);
                prop_assert_eq!(&parsed.body[..], &body[..]);
            }
            ParseOutcome::Incomplete => prop_assert!(false, "complete wire parsed as incomplete"),
        }
    }

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_request(&bytes);
        let _ = parse_response(&bytes);
    }

    /// Every strict prefix of a valid message is Incomplete or an error —
    /// never a (shorter) Complete with trailing garbage beyond `used`.
    #[test]
    fn prefix_never_over_consumes(
        body in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..100,
    ) {
        let req = Request::new(Method::Post, "/invoke").with_body(body);
        let wire = req.encode();
        let cut = cut.min(wire.len().saturating_sub(1));
        match parse_request(&wire[..cut]) {
            Ok(ParseOutcome::Complete(_, used)) => prop_assert!(used <= cut),
            Ok(ParseOutcome::Incomplete) | Err(_) => {}
        }
    }
}
