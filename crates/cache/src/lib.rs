//! Control-plane invocation result cache.
//!
//! The cheapest invocation is one that never reaches a worker: for functions
//! explicitly registered as idempotent, a repeated invocation with the same
//! arguments can be served from a control-plane cache of prior results
//! ("Caching Aided Multi-Tenant Serverless Computing"; FastWorker's
//! result-caching coordinator). The cache is consulted by the load balancer
//! before dispatch and by the worker before enqueue, and populated from the
//! completed `InvocationResult` on the return path.
//!
//! Design constraints, in order:
//!
//! * **Hard per-tenant partitions.** Capacity (bytes and entries) is
//!   enforced per tenant and the idempotency key embeds the tenant, so no
//!   entry filled under tenant A is ever served to tenant B and no tenant
//!   can evict another's entries.
//! * **Explicit opt-in.** Only functions whose [`FunctionSpec`] sets
//!   `idempotent` are ever cached; everything else bypasses.
//! * **Deterministic time.** TTL expiry reads the injected [`Clock`], so
//!   tests and session digests drive expiry exactly.
//! * **Invalidation on re-registration.** Seeing a spec for an
//!   already-known fqdn (a new version, a replayed registration) drops every
//!   cached result for that fqdn across all partitions.
//!
//! Every operation is mirrored onto the canonical telemetry stream as
//! `TelemetryKind::Cache` events (`hit`/`miss`/`fill`/`evict`/`expire`/
//! `invalidate`), with `fill` carrying its expiry so the conformance checker
//! can audit hit legality from the stream alone.

use iluvatar_containers::FunctionSpec;
use iluvatar_sync::{Clock, TimeMs};
use iluvatar_telemetry::{TelemetryBus, TelemetryKind};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Result-cache configuration. Defaults to fully disabled so the baseline
/// hot path is untouched; the `0 = built-in default` convention matches the
/// other subsystem configs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Master switch; everything bypasses while false.
    #[serde(default)]
    pub enabled: bool,
    /// Result TTL, ms. 0 selects the built-in default of 60 000.
    #[serde(default)]
    pub ttl_ms: u64,
    /// Per-tenant partition capacity in result-body bytes. 0 selects the
    /// built-in default of 1 MiB.
    #[serde(default)]
    pub tenant_capacity_bytes: u64,
    /// Per-tenant entry bound. 0 selects the built-in default of 1024.
    #[serde(default)]
    pub tenant_max_entries: usize,
}

impl CacheConfig {
    /// An enabled config with the built-in defaults.
    pub fn enabled_default() -> Self {
        Self {
            enabled: true,
            ..Default::default()
        }
    }

    pub fn effective_ttl_ms(&self) -> u64 {
        if self.ttl_ms == 0 {
            60_000
        } else {
            self.ttl_ms
        }
    }

    pub fn effective_capacity_bytes(&self) -> u64 {
        if self.tenant_capacity_bytes == 0 {
            1024 * 1024
        } else {
            self.tenant_capacity_bytes
        }
    }

    pub fn effective_max_entries(&self) -> usize {
        if self.tenant_max_entries == 0 {
            1024
        } else {
            self.tenant_max_entries
        }
    }
}

/// What the cache did for one invocation — rides the
/// `X-Iluvatar-Cache` response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from cache; no worker was touched.
    Hit,
    /// Cacheable but absent (or expired); dispatched and filled on return.
    Miss,
    /// Not cacheable: cache disabled or function not registered idempotent.
    Bypass,
}

impl CacheStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// Outcome of a consult.
pub enum CacheLookup {
    /// A fresh entry; serve it without dispatching.
    Hit(CachedResult),
    /// Cacheable but absent; the key to fill after dispatch completes.
    Miss(String),
    /// Not cacheable.
    Bypass,
}

/// A cached invocation result — the fields a hit can reconstruct a
/// caller-visible result from.
#[derive(Debug, Clone)]
pub struct CachedResult {
    pub body: String,
    /// Execution time of the *original* run, ms (reported so stretch math
    /// stays meaningful for cached serves).
    pub exec_ms: u64,
    /// When the original result was stored (cache clock).
    pub stored_at_ms: TimeMs,
    /// The tenant partition the hit was served from.
    pub tenant: String,
}

/// Per-tenant counters for `/metrics` and session digests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantCacheStats {
    pub tenant: String,
    pub hits: u64,
    pub misses: u64,
    pub fills: u64,
    pub evictions: u64,
    pub expirations: u64,
    pub invalidations: u64,
    /// Lookups that joined an in-flight fill instead of dispatching their
    /// own copy of the same invocation (single-flight suppression).
    pub coalesced: u64,
    pub entries: usize,
    pub bytes: u64,
}

struct Entry {
    fqdn: String,
    body: String,
    exec_ms: u64,
    stored_at_ms: TimeMs,
    expires_at_ms: TimeMs,
    bytes: u64,
    /// Monotone recency tick; the minimum across a partition is the LRU.
    last_used: u64,
}

#[derive(Default)]
struct Partition {
    entries: BTreeMap<String, Entry>,
    bytes: u64,
    hits: u64,
    misses: u64,
    fills: u64,
    evictions: u64,
    expirations: u64,
    invalidations: u64,
    coalesced: u64,
}

struct SpecInfo {
    idempotent: bool,
    tenant: Option<String>,
}

#[derive(Default)]
struct Inner {
    /// Tenant → partition. BTreeMap so stats iterate deterministically.
    partitions: BTreeMap<String, Partition>,
    specs: BTreeMap<String, SpecInfo>,
    tick: u64,
    /// Keys with a dispatch in flight under single-flight: the leader
    /// inserted its key and will [`ResultCache::fill`] (or abandon) it;
    /// followers wait on `flight_cv` instead of stampeding the workers.
    in_flight: BTreeSet<String>,
}

/// The shared result cache. One instance serves a whole load balancer or
/// worker; all state sits behind one mutex — the critical sections are a
/// few map operations, far below the dispatch path they replace.
pub struct ResultCache {
    cfg: CacheConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
    /// Wakes single-flight followers when a fill or abandon releases a key.
    flight_cv: Condvar,
    telemetry: OnceLock<Arc<TelemetryBus>>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Tenant partition label when neither the call nor the registration names
/// one.
pub const DEFAULT_TENANT: &str = "default";

/// The explicit idempotency key: function, tenant, and argument hash.
pub fn idempotency_key(fqdn: &str, tenant: &str, args: &str) -> String {
    format!("{fqdn}@{tenant}#{:016x}", fnv64(args))
}

impl ResultCache {
    pub fn new(cfg: CacheConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            cfg,
            clock,
            inner: Mutex::new(Inner::default()),
            flight_cv: Condvar::new(),
            telemetry: OnceLock::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Attach the canonical telemetry bus (first caller wins).
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) {
        let _ = self.telemetry.set(bus);
    }

    fn emit(&self, trace_id: Option<u64>, tenant: &str, kind: TelemetryKind) {
        if let Some(bus) = self.telemetry.get() {
            bus.emit(trace_id, Some(tenant), kind);
        }
    }

    /// Record a registration. A second sighting of the same fqdn (new
    /// version, replayed registration on a re-admitted worker) invalidates
    /// every cached result for it — the function may have changed.
    pub fn note_spec(&self, spec: &FunctionSpec) {
        if !self.cfg.enabled {
            return;
        }
        let invalidated: Vec<(String, String)> = {
            let mut inner = self.inner.lock();
            let known = inner.specs.contains_key(&spec.fqdn);
            inner.specs.insert(
                spec.fqdn.clone(),
                SpecInfo {
                    idempotent: spec.idempotent,
                    tenant: spec.tenant.clone(),
                },
            );
            if known {
                let mut dropped = Vec::new();
                for (tenant, part) in inner.partitions.iter_mut() {
                    let stale: Vec<String> = part
                        .entries
                        .iter()
                        .filter(|(_, e)| e.fqdn == spec.fqdn)
                        .map(|(k, _)| k.clone())
                        .collect();
                    for k in stale {
                        if let Some(e) = part.entries.remove(&k) {
                            part.bytes = part.bytes.saturating_sub(e.bytes);
                            part.invalidations += 1;
                            dropped.push((tenant.clone(), k));
                        }
                    }
                }
                dropped
            } else {
                Vec::new()
            }
        };
        for (tenant, key) in invalidated {
            self.emit(
                None,
                &tenant,
                TelemetryKind::Cache {
                    op: "invalidate".into(),
                    key,
                    expires_at_ms: None,
                },
            );
        }
    }

    /// Resolve the tenant partition: explicit label, else the registered
    /// spec default, else [`DEFAULT_TENANT`].
    fn resolve_tenant(inner: &Inner, fqdn: &str, tenant: Option<&str>) -> String {
        tenant
            .map(str::to_string)
            .or_else(|| inner.specs.get(fqdn).and_then(|s| s.tenant.clone()))
            .unwrap_or_else(|| DEFAULT_TENANT.to_string())
    }

    /// Consult the cache before dispatch.
    pub fn lookup(&self, fqdn: &str, tenant: Option<&str>, args: &str) -> CacheLookup {
        if !self.cfg.enabled {
            return CacheLookup::Bypass;
        }
        let now = self.clock.now_ms();
        let mut inner = self.inner.lock();
        if !inner.specs.get(fqdn).is_some_and(|s| s.idempotent) {
            return CacheLookup::Bypass;
        }
        let t = Self::resolve_tenant(&inner, fqdn, tenant);
        let key = idempotency_key(fqdn, &t, args);
        inner.tick += 1;
        let tick = inner.tick;
        let part = inner.partitions.entry(t.clone()).or_default();
        let outcome = match part.entries.get_mut(&key) {
            Some(e) if now < e.expires_at_ms => {
                e.last_used = tick;
                part.hits += 1;
                CacheLookup::Hit(CachedResult {
                    body: e.body.clone(),
                    exec_ms: e.exec_ms,
                    stored_at_ms: e.stored_at_ms,
                    tenant: t.clone(),
                })
            }
            Some(_) => {
                // TTL lapsed: drop the entry; the caller dispatches and
                // refills with a fresh result.
                if let Some(e) = part.entries.remove(&key) {
                    part.bytes = part.bytes.saturating_sub(e.bytes);
                }
                part.expirations += 1;
                part.misses += 1;
                CacheLookup::Miss(key.clone())
            }
            None => {
                part.misses += 1;
                CacheLookup::Miss(key.clone())
            }
        };
        drop(inner);
        let op = match &outcome {
            CacheLookup::Hit(_) => "hit",
            CacheLookup::Miss(_) => "miss",
            CacheLookup::Bypass => unreachable!(),
        };
        self.emit(
            None,
            &t,
            TelemetryKind::Cache {
                op: op.into(),
                key,
                expires_at_ms: None,
            },
        );
        outcome
    }

    /// Single-flight consult: like [`ResultCache::lookup`], but when the
    /// same key already has a dispatch in flight the caller *joins* it —
    /// blocking up to `wait_ms` for the leader's [`ResultCache::fill`] —
    /// instead of stampeding the workers with duplicate work.
    ///
    /// A `Miss` return makes the caller the flight leader for that key: it
    /// MUST either `fill` the result or [`ResultCache::abandon`] the key,
    /// or followers will wait out their full budget. A follower whose wait
    /// lapses (leader too slow, or abandoned without a refill) is promoted
    /// to leader and dispatches its own copy — suppression is best-effort,
    /// correctness never depends on it.
    pub fn lookup_single_flight(
        &self,
        fqdn: &str,
        tenant: Option<&str>,
        args: &str,
        wait_ms: u64,
    ) -> CacheLookup {
        if !self.cfg.enabled {
            return CacheLookup::Bypass;
        }
        let deadline = std::time::Instant::now() + Duration::from_millis(wait_ms);
        let mut joined = false;
        loop {
            {
                let inner = self.inner.lock();
                if !inner.specs.get(fqdn).is_some_and(|s| s.idempotent) {
                    return CacheLookup::Bypass;
                }
                let t = Self::resolve_tenant(&inner, fqdn, tenant);
                let key = idempotency_key(fqdn, &t, args);
                let mut inner = inner;
                let fresh = inner
                    .partitions
                    .get(&t)
                    .and_then(|p| p.entries.get(&key))
                    .is_some_and(|e| self.clock.now_ms() < e.expires_at_ms);
                if !fresh && inner.in_flight.contains(&key) && std::time::Instant::now() < deadline
                {
                    if !joined {
                        joined = true;
                        inner.partitions.entry(t.clone()).or_default().coalesced += 1;
                        drop(inner);
                        self.emit(
                            None,
                            &t,
                            TelemetryKind::Cache {
                                op: "coalesce".into(),
                                key,
                                expires_at_ms: None,
                            },
                        );
                    } else {
                        let remaining =
                            deadline.saturating_duration_since(std::time::Instant::now());
                        let _ = self
                            .flight_cv
                            .wait_for(&mut inner, remaining.min(Duration::from_millis(50)));
                    }
                    continue;
                }
            }
            // Fresh entry, no flight, or budget exhausted: fall through to
            // the plain lookup. On a miss, claim flight leadership.
            let outcome = self.lookup(fqdn, tenant, args);
            if let CacheLookup::Miss(key) = &outcome {
                self.inner.lock().in_flight.insert(key.clone());
            }
            return outcome;
        }
    }

    /// Release flight leadership for `key` without filling (the dispatch
    /// failed). Followers wake and the first re-looker becomes leader.
    pub fn abandon(&self, key: &str) {
        if self.inner.lock().in_flight.remove(key) {
            self.flight_cv.notify_all();
        }
    }

    /// Populate from a completed result. `trace_id` correlates the fill to
    /// the invocation that produced it (the conformance checker requires a
    /// durable completion behind every fill on worker streams).
    pub fn fill(
        &self,
        fqdn: &str,
        tenant: Option<&str>,
        args: &str,
        body: &str,
        exec_ms: u64,
        trace_id: Option<u64>,
    ) {
        if !self.cfg.enabled {
            return;
        }
        let now = self.clock.now_ms();
        let expires_at_ms = now + self.cfg.effective_ttl_ms();
        let capacity = self.cfg.effective_capacity_bytes();
        let max_entries = self.cfg.effective_max_entries();
        let mut evicted: Vec<(String, String)> = Vec::new();
        let (t, key, filled) = {
            let mut inner = self.inner.lock();
            if !inner.specs.get(fqdn).is_some_and(|s| s.idempotent) {
                return;
            }
            let t = Self::resolve_tenant(&inner, fqdn, tenant);
            let key = idempotency_key(fqdn, &t, args);
            let bytes = (key.len() + body.len()) as u64;
            if bytes > capacity {
                // A single oversized result can never fit its partition —
                // but it still ends the single-flight it was the leader of.
                inner.in_flight.remove(&key);
                drop(inner);
                self.flight_cv.notify_all();
                return;
            }
            inner.tick += 1;
            let tick = inner.tick;
            let part = inner.partitions.entry(t.clone()).or_default();
            if let Some(old) = part.entries.remove(&key) {
                part.bytes = part.bytes.saturating_sub(old.bytes);
            }
            // LRU eviction until the new entry fits both bounds.
            while part.bytes + bytes > capacity || part.entries.len() + 1 > max_entries {
                let lru = part
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match lru {
                    Some(k) => {
                        if let Some(e) = part.entries.remove(&k) {
                            part.bytes = part.bytes.saturating_sub(e.bytes);
                        }
                        part.evictions += 1;
                        evicted.push((t.clone(), k));
                    }
                    None => break,
                }
            }
            part.entries.insert(
                key.clone(),
                Entry {
                    fqdn: fqdn.to_string(),
                    body: body.to_string(),
                    exec_ms,
                    stored_at_ms: now,
                    expires_at_ms,
                    bytes,
                    last_used: tick,
                },
            );
            part.bytes += bytes;
            part.fills += 1;
            // The fill ends any single-flight on this key: wake followers
            // so they re-look and hit the entry just stored.
            inner.in_flight.remove(&key);
            (t, key, true)
        };
        self.flight_cv.notify_all();
        for (tenant, key) in evicted {
            self.emit(
                None,
                &tenant,
                TelemetryKind::Cache {
                    op: "evict".into(),
                    key,
                    expires_at_ms: None,
                },
            );
        }
        if filled {
            self.emit(
                trace_id,
                &t,
                TelemetryKind::Cache {
                    op: "fill".into(),
                    key,
                    expires_at_ms: Some(expires_at_ms),
                },
            );
        }
    }

    /// Per-tenant counters, tenant-sorted (deterministic for digests).
    pub fn stats(&self) -> Vec<TenantCacheStats> {
        let inner = self.inner.lock();
        inner
            .partitions
            .iter()
            .map(|(t, p)| TenantCacheStats {
                tenant: t.clone(),
                hits: p.hits,
                misses: p.misses,
                fills: p.fills,
                evictions: p.evictions,
                expirations: p.expirations,
                invalidations: p.invalidations,
                coalesced: p.coalesced,
                entries: p.entries.len(),
                bytes: p.bytes,
            })
            .collect()
    }

    /// Aggregate (hits, misses, evictions) across all partitions.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.stats().iter().fold((0, 0, 0), |(h, m, e), s| {
            (h + s.hits, m + s.misses, e + s.evictions)
        })
    }

    /// The live keys of one tenant's partition, key-sorted. Test/tooling
    /// surface — the proptests compare this against a reference model.
    pub fn keys(&self, tenant: &str) -> Vec<String> {
        let inner = self.inner.lock();
        inner
            .partitions
            .get(tenant)
            .map(|p| p.entries.keys().cloned().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::{ManualClock, SystemClock};
    use iluvatar_telemetry::VecSink;
    use iluvatar_telemetry::{TelemetryBus, TelemetrySink};

    fn cache_with(cfg: CacheConfig) -> (Arc<ResultCache>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let cache = Arc::new(ResultCache::new(cfg, Arc::clone(&clock) as Arc<dyn Clock>));
        (cache, clock)
    }

    fn spec(fqdn: &str, tenant: Option<&str>) -> FunctionSpec {
        let s = FunctionSpec::new(fqdn.split('-').next().unwrap(), "1").with_idempotent();
        match tenant {
            Some(t) => s.with_tenant(t),
            None => s,
        }
    }

    #[test]
    fn disabled_cache_always_bypasses() {
        let (cache, _) = cache_with(CacheConfig::default());
        cache.note_spec(&spec("f-1", None));
        cache.fill("f-1", None, "{}", "r", 5, None);
        assert!(matches!(
            cache.lookup("f-1", None, "{}"),
            CacheLookup::Bypass
        ));
        assert!(cache.stats().is_empty());
    }

    #[test]
    fn non_idempotent_functions_bypass() {
        let (cache, _) = cache_with(CacheConfig::enabled_default());
        let s = FunctionSpec::new("f", "1"); // not idempotent
        cache.note_spec(&s);
        assert!(matches!(
            cache.lookup("f-1", None, "{}"),
            CacheLookup::Bypass
        ));
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let (cache, _) = cache_with(CacheConfig::enabled_default());
        cache.note_spec(&spec("f-1", Some("gold")));
        assert!(matches!(
            cache.lookup("f-1", None, "{\"x\":1}"),
            CacheLookup::Miss(_)
        ));
        cache.fill("f-1", None, "{\"x\":1}", "result", 42, Some(7));
        match cache.lookup("f-1", None, "{\"x\":1}") {
            CacheLookup::Hit(r) => {
                assert_eq!(r.body, "result");
                assert_eq!(r.exec_ms, 42);
                assert_eq!(r.tenant, "gold");
            }
            _ => panic!("expected hit"),
        }
        // Different args hash to a different key.
        assert!(matches!(
            cache.lookup("f-1", None, "{\"x\":2}"),
            CacheLookup::Miss(_)
        ));
        let st = cache.stats();
        assert_eq!(st.len(), 1);
        assert_eq!((st[0].hits, st[0].misses, st[0].fills), (1, 2, 1));
    }

    #[test]
    fn ttl_expiry_is_exact_under_injected_clock() {
        let (cache, clock) = cache_with(CacheConfig {
            enabled: true,
            ttl_ms: 100,
            ..Default::default()
        });
        cache.note_spec(&spec("f-1", None));
        cache.fill("f-1", None, "{}", "r", 1, None);
        clock.advance(99);
        assert!(matches!(
            cache.lookup("f-1", None, "{}"),
            CacheLookup::Hit(_)
        ));
        clock.advance(1); // now == stored + ttl: expired
        assert!(matches!(
            cache.lookup("f-1", None, "{}"),
            CacheLookup::Miss(_)
        ));
        assert_eq!(cache.stats()[0].expirations, 1);
    }

    #[test]
    fn tenants_are_partitioned() {
        let (cache, _) = cache_with(CacheConfig::enabled_default());
        cache.note_spec(&spec("f-1", None));
        cache.fill("f-1", Some("a"), "{}", "for-a", 1, None);
        match cache.lookup("f-1", Some("a"), "{}") {
            CacheLookup::Hit(r) => assert_eq!(r.body, "for-a"),
            _ => panic!("tenant a must hit"),
        }
        // Same fqdn + args under another tenant: a miss, never a's body.
        assert!(matches!(
            cache.lookup("f-1", Some("b"), "{}"),
            CacheLookup::Miss(_)
        ));
    }

    #[test]
    fn re_registration_invalidates() {
        let (cache, _) = cache_with(CacheConfig::enabled_default());
        cache.note_spec(&spec("f-1", None));
        cache.fill("f-1", None, "{}", "v1", 1, None);
        assert!(matches!(
            cache.lookup("f-1", None, "{}"),
            CacheLookup::Hit(_)
        ));
        cache.note_spec(&spec("f-1", None)); // replayed registration
        assert!(matches!(
            cache.lookup("f-1", None, "{}"),
            CacheLookup::Miss(_)
        ));
        assert_eq!(cache.stats()[0].invalidations, 1);
    }

    #[test]
    fn telemetry_mirrors_operations() {
        let (cache, _) = cache_with(CacheConfig::enabled_default());
        let bus = TelemetryBus::new("cache-test", SystemClock::shared());
        let sink = Arc::new(VecSink::new());
        bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        cache.set_telemetry(bus);
        cache.note_spec(&spec("f-1", None));
        let _ = cache.lookup("f-1", None, "{}");
        cache.fill("f-1", None, "{}", "r", 1, Some(9));
        let _ = cache.lookup("f-1", None, "{}");
        let labels: Vec<String> = sink.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, vec!["cache:miss", "cache:fill", "cache:hit"]);
        let fill = &sink.events()[1];
        assert_eq!(fill.trace_id, Some(9));
        assert!(
            matches!(
                &fill.kind,
                TelemetryKind::Cache {
                    expires_at_ms: Some(_),
                    ..
                }
            ),
            "fill must carry its expiry"
        );
    }

    #[test]
    fn lru_eviction_under_entry_bound() {
        let (cache, _) = cache_with(CacheConfig {
            enabled: true,
            tenant_max_entries: 2,
            ..Default::default()
        });
        cache.note_spec(&spec("f-1", None));
        cache.fill("f-1", None, "a", "r", 1, None);
        cache.fill("f-1", None, "b", "r", 1, None);
        let _ = cache.lookup("f-1", None, "a"); // "a" is now the MRU
        cache.fill("f-1", None, "c", "r", 1, None); // evicts "b"
        assert!(matches!(
            cache.lookup("f-1", None, "a"),
            CacheLookup::Hit(_)
        ));
        assert!(matches!(
            cache.lookup("f-1", None, "b"),
            CacheLookup::Miss(_)
        ));
        assert!(matches!(
            cache.lookup("f-1", None, "c"),
            CacheLookup::Hit(_)
        ));
        assert_eq!(cache.stats()[0].evictions, 1);
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let (cache, _) = cache_with(CacheConfig {
            enabled: true,
            tenant_capacity_bytes: 16,
            ..Default::default()
        });
        cache.note_spec(&spec("f-1", None));
        cache.fill("f-1", None, "{}", &"x".repeat(64), 1, None);
        assert!(matches!(
            cache.lookup("f-1", None, "{}"),
            CacheLookup::Miss(_)
        ));
    }

    #[test]
    fn single_flight_coalesces_a_stampede() {
        // Wall clock: followers block on a condvar while the leader works.
        let clock = SystemClock::shared();
        let cache = Arc::new(ResultCache::new(CacheConfig::enabled_default(), clock));
        cache.note_spec(&spec("f-1", Some("acme")));

        // Leader takes the flight...
        let key = match cache.lookup_single_flight("f-1", None, "{}", 5_000) {
            CacheLookup::Miss(k) => k,
            _ => panic!("first looker must lead"),
        };
        // ...followers pile onto the same key concurrently.
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || cache.lookup_single_flight("f-1", None, "{}", 5_000))
            })
            .collect();
        // Give followers time to join, then land the leader's result.
        std::thread::sleep(std::time::Duration::from_millis(50));
        cache.fill("f-1", None, "{}", "shared", 9, Some(1));
        cache.abandon(&key);

        for f in followers {
            match f.join().unwrap() {
                CacheLookup::Hit(r) => assert_eq!(r.body, "shared"),
                _ => panic!("followers must be served the leader's fill"),
            }
        }
        let st = cache.stats();
        let acme = st.iter().find(|t| t.tenant == "acme").unwrap();
        assert_eq!(acme.coalesced, 4, "every follower coalesced");
        assert_eq!(acme.hits, 4, "every follower hit the shared fill");
        assert_eq!(acme.misses, 1, "exactly one dispatch for the stampede");
    }

    #[test]
    fn abandoned_flight_promotes_a_follower() {
        let clock = SystemClock::shared();
        let cache = Arc::new(ResultCache::new(CacheConfig::enabled_default(), clock));
        cache.note_spec(&spec("f-1", Some("acme")));

        let key = match cache.lookup_single_flight("f-1", None, "{}", 5_000) {
            CacheLookup::Miss(k) => k,
            _ => panic!("first looker must lead"),
        };
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.lookup_single_flight("f-1", None, "{}", 5_000))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Leader's dispatch failed: no fill, flight released.
        cache.abandon(&key);
        match follower.join().unwrap() {
            CacheLookup::Miss(_) => {}
            _ => panic!("follower must be promoted to leader after abandon"),
        }
    }

    #[test]
    fn config_serde_defaults_off() {
        let cfg: CacheConfig = serde_json::from_str("{}").unwrap();
        assert!(!cfg.enabled);
        assert_eq!(cfg.effective_ttl_ms(), 60_000);
        assert_eq!(cfg.effective_capacity_bytes(), 1024 * 1024);
        assert_eq!(cfg.effective_max_entries(), 1024);
    }
}
