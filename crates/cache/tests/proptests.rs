//! Property tests for the result-cache core: the four invariants the
//! tentpole promises — capacity bounds, exact TTL under an injected clock,
//! hard per-tenant isolation, and true LRU eviction order.

use iluvatar_cache::{CacheConfig, CacheLookup, ResultCache};
use iluvatar_containers::FunctionSpec;
use iluvatar_sync::{Clock, ManualClock};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

fn cache(cfg: CacheConfig) -> (ResultCache, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new());
    let c = ResultCache::new(cfg, Arc::clone(&clock) as Arc<dyn Clock>);
    c.note_spec(&FunctionSpec::new("f", "1").with_idempotent());
    (c, clock)
}

proptest! {
    /// Capacity bound: no sequence of fills ever pushes a partition past
    /// its byte or entry bound, per tenant.
    #[test]
    fn capacity_bound_never_exceeded(
        ops in proptest::collection::vec((0usize..3, 0u64..64, 1usize..200), 1..120),
        capacity in 64u64..512,
        max_entries in 1usize..12,
    ) {
        let (c, _) = cache(CacheConfig {
            enabled: true,
            tenant_capacity_bytes: capacity,
            tenant_max_entries: max_entries,
            ..Default::default()
        });
        let tenants = ["a", "b", "c"];
        for (t_idx, arg, body_len) in ops {
            let tenant = tenants[t_idx];
            let args = format!("{{\"k\":{arg}}}");
            c.fill("f-1", Some(tenant), &args, &"x".repeat(body_len), 1, None);
            for s in c.stats() {
                prop_assert!(
                    s.bytes <= capacity,
                    "tenant {} holds {} bytes over the {} bound", s.tenant, s.bytes, capacity
                );
                prop_assert!(
                    s.entries <= max_entries,
                    "tenant {} holds {} entries over the {} bound", s.tenant, s.entries, max_entries
                );
            }
        }
    }

    /// TTL expiry is exact under the injected clock: a lookup at
    /// `stored + dt` hits iff `dt < ttl`, bit-for-bit.
    #[test]
    fn ttl_expiry_exact(ttl in 1u64..10_000, dt in 0u64..20_000) {
        let (c, clock) = cache(CacheConfig {
            enabled: true,
            ttl_ms: ttl,
            ..Default::default()
        });
        c.fill("f-1", None, "{}", "r", 1, None);
        clock.advance(dt);
        let hit = matches!(c.lookup("f-1", None, "{}"), CacheLookup::Hit(_));
        prop_assert_eq!(hit, dt < ttl, "ttl={} dt={}", ttl, dt);
    }

    /// Hard tenant isolation: bodies are tagged with the filling tenant,
    /// and no lookup ever returns a body tagged with a different tenant —
    /// even when both tenants use identical fqdns and argument strings.
    #[test]
    fn no_cross_tenant_serves(
        ops in proptest::collection::vec((0usize..2, 0u64..8, proptest::any::<bool>()), 1..200),
    ) {
        let (c, _) = cache(CacheConfig {
            enabled: true,
            tenant_max_entries: 4, // force churn so eviction interleaves
            ..Default::default()
        });
        let tenants = ["alpha", "beta"];
        for (t_idx, arg, is_fill) in ops {
            let tenant = tenants[t_idx];
            let args = format!("{{\"k\":{arg}}}");
            if is_fill {
                c.fill("f-1", Some(tenant), &args, &format!("body-of-{tenant}"), 1, None);
            } else if let CacheLookup::Hit(r) = c.lookup("f-1", Some(tenant), &args) {
                prop_assert_eq!(
                    r.body, format!("body-of-{tenant}"),
                    "tenant {} served another tenant's result", tenant
                );
                prop_assert_eq!(r.tenant, tenant.to_string());
            }
        }
    }

    /// LRU order: against a reference recency list, the cache's surviving
    /// key set after any fill/lookup interleaving is exactly the model's.
    #[test]
    fn lru_eviction_order(
        ops in proptest::collection::vec((0u64..10, proptest::any::<bool>()), 1..200),
        max_entries in 1usize..6,
    ) {
        let (c, _) = cache(CacheConfig {
            enabled: true,
            tenant_max_entries: max_entries,
            ..Default::default()
        });
        // Reference model: front = LRU, back = MRU.
        let mut model: VecDeque<String> = VecDeque::new();
        for (arg, is_fill) in ops {
            let args = format!("{{\"k\":{arg}}}");
            let key = iluvatar_cache::idempotency_key("f-1", "default", &args);
            if is_fill {
                c.fill("f-1", None, &args, "r", 1, None);
                model.retain(|k| k != &key);
                if model.len() == max_entries {
                    model.pop_front(); // evict the LRU
                }
                model.push_back(key);
            } else {
                let hit = matches!(c.lookup("f-1", None, &args), CacheLookup::Hit(_));
                prop_assert_eq!(hit, model.contains(&key), "presence diverged for {}", key);
                if hit {
                    model.retain(|k| k != &key);
                    model.push_back(key); // touch refreshes recency
                }
            }
            let mut got = c.keys("default");
            let mut want: Vec<String> = model.iter().cloned().collect();
            got.sort();
            want.sort();
            prop_assert_eq!(got, want, "survivor sets diverged");
        }
    }
}
