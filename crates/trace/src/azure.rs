//! Synthetic Azure-Functions-like trace generation.
//!
//! Reproduces the published marginals of the Azure 2019 dataset that the
//! evaluation depends on (§2, §6):
//!
//! * extreme popularity skew — "a tiny 1% of functions account for nearly
//!   90% of all invocations, with an IAT of under a minute", while "over
//!   half of all functions have an inter-arrival time over 30 minutes";
//! * execution times whose 50th–95th percentiles span ~1 s to ~1 min;
//! * memory recorded per *application* and split evenly across the app's
//!   functions;
//! * invocations delivered in minute buckets: a single invocation lands at
//!   the start of its minute, multiple invocations are equally spaced
//!   through it (the paper's replay rule);
//! * optional diurnal modulation matching the day-scale wave of the full
//!   trace (App. Fig. "whole trace").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One function of the synthetic population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// Stable identifier, e.g. `app12-fn3`.
    pub fqdn: String,
    /// Owning application (memory is tracked per app).
    pub app: u32,
    /// Mean inter-arrival time of this function's Poisson process, ms.
    pub mean_iat_ms: f64,
    /// Warm execution time, ms.
    pub warm_ms: u64,
    /// Initialization overhead (the cold-start penalty), ms. Estimated in
    /// the paper as `maximum - average` runtime.
    pub init_ms: u64,
    /// Per-function memory: the app allocation split evenly.
    pub memory_mb: u64,
    /// Whether this function's rate follows the diurnal wave.
    pub diurnal: bool,
}

impl FunctionProfile {
    pub fn cold_ms(&self) -> u64 {
        self.warm_ms + self.init_ms
    }
}

/// One invocation in the replayable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time since trace start, ms.
    pub time_ms: u64,
    /// Index into the profile table.
    pub func: u32,
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AzureTraceConfig {
    /// Number of applications; each has 1–4 functions.
    pub apps: usize,
    /// Trace duration, ms (default: one day, matching "we use the first
    /// day's data").
    pub duration_ms: u64,
    /// RNG seed: the population and arrivals are fully reproducible.
    pub seed: u64,
    /// Fraction of functions carrying the diurnal wave.
    pub diurnal_fraction: f64,
    /// Global rate multiplier — the Little's-law load scaling hook (§5):
    /// scale IATs to match the system under test.
    pub rate_scale: f64,
}

impl Default for AzureTraceConfig {
    fn default() -> Self {
        Self {
            apps: 400,
            duration_ms: 24 * 3600 * 1000,
            seed: 0xA22E,
            diurnal_fraction: 0.25,
            rate_scale: 1.0,
        }
    }
}

/// A generated population plus its replayable event stream.
#[derive(Debug, Clone)]
pub struct SyntheticAzureTrace {
    pub profiles: Vec<FunctionProfile>,
    /// Sorted by time.
    pub events: Vec<TraceEvent>,
    pub duration_ms: u64,
}

/// Draw from LogUniform(lo, hi).
fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo);
    (rng.gen_range(lo.ln()..hi.ln())).exp()
}

/// Sample one function's mean IAT from the popularity mixture.
fn sample_iat_ms(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen();
    if u < 0.01 {
        // Heavy hitters: sub-minute IATs, dominating total invocations.
        log_uniform(rng, 100.0, 30_000.0)
    } else if u < 0.15 {
        // Warm-friendly middle class: 30 s – 5 min.
        log_uniform(rng, 30_000.0, 300_000.0)
    } else if u < 0.55 {
        // The TTL-sensitive bulk: 5 – 40 min idle between invocations —
        // cold forever under a 10-minute TTL, trivially warm for any
        // work-conserving policy with memory to spare.
        log_uniform(rng, 300_000.0, 2_400_000.0)
    } else {
        // The long tail: 40 min – 12 h.
        log_uniform(rng, 2_400_000.0, 12.0 * 3_600_000.0)
    }
}

/// Sample a warm execution time, ms, conditioned on the function's mean
/// IAT: frequently invoked functions are short interactive handlers, while
/// long runtimes (up to the trace's ~1 min tail) appear only among rarer
/// functions. Capping warm time at half the IAT also bounds the steady
/// concurrency any single function needs (Little's law ≤ 0.5).
fn sample_warm_ms(rng: &mut StdRng, mean_iat_ms: f64) -> u64 {
    let hi = (mean_iat_ms * 0.5).clamp(250.0, 80_000.0);
    log_uniform(rng, 100.0, hi).round().max(1.0) as u64
}

/// Diurnal rate multiplier at `t` (period = 1 day): a smooth day/night wave
/// between 0.4× and 1.6×.
pub fn diurnal_factor(t_ms: u64) -> f64 {
    let day = 24.0 * 3_600_000.0;
    let phase = 2.0 * std::f64::consts::PI * (t_ms as f64 % day) / day;
    1.0 + 0.6 * phase.sin()
}

impl SyntheticAzureTrace {
    /// Generate the population and one day of arrivals.
    pub fn generate(cfg: &AzureTraceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut profiles = Vec::new();
        for app in 0..cfg.apps as u32 {
            let fns = rng.gen_range(1..=4usize);
            // App-level memory split evenly across its functions
            // (geometric mean ≈ 190 MB, matching the trace's skew toward
            // small applications).
            let app_mem = log_uniform(&mut rng, 48.0, 768.0) as u64;
            let per_fn_mem = (app_mem / fns as u64).max(32);
            let diurnal = rng.gen_bool(cfg.diurnal_fraction);
            for i in 0..fns {
                let mean_iat_ms = sample_iat_ms(&mut rng) / cfg.rate_scale;
                let warm_ms = sample_warm_ms(&mut rng, mean_iat_ms);
                // Cold penalty: a fraction-to-multiple of warm time,
                // right-skewed — the paper's `max − avg` estimate, which it
                // notes "ends up with pretty small startup overheads".
                let init_ms = (warm_ms as f64 * log_uniform(&mut rng, 0.1, 2.0)) as u64;
                profiles.push(FunctionProfile {
                    fqdn: format!("app{app}-fn{i}"),
                    app,
                    mean_iat_ms,
                    warm_ms,
                    init_ms,
                    memory_mb: per_fn_mem,
                    diurnal,
                });
            }
        }
        let events = Self::arrivals(&profiles, cfg.duration_ms, &mut rng);
        Self {
            profiles,
            events,
            duration_ms: cfg.duration_ms,
        }
    }

    /// Regenerate the event stream for an existing (sub)population.
    pub fn regenerate_events(profiles: Vec<FunctionProfile>, duration_ms: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let events = Self::arrivals(&profiles, duration_ms, &mut rng);
        Self {
            profiles,
            events,
            duration_ms,
        }
    }

    /// Poisson arrivals per function (thinned by the diurnal wave where
    /// enabled), then minute-bucketed and re-spread per the replay rule.
    fn arrivals(
        profiles: &[FunctionProfile],
        duration_ms: u64,
        rng: &mut StdRng,
    ) -> Vec<TraceEvent> {
        // Minute buckets: counts per (function, minute).
        let minutes = (duration_ms / 60_000).max(1) as usize;
        let mut events = Vec::new();
        for (idx, p) in profiles.iter().enumerate() {
            let mut counts = vec![0u32; minutes];
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival; thinning for diurnal functions.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -p.mean_iat_ms * u.ln();
                if t >= duration_ms as f64 {
                    break;
                }
                if p.diurnal && rng.gen::<f64>() > diurnal_factor(t as u64) / 1.6 {
                    continue;
                }
                let m = (t / 60_000.0) as usize;
                if m < minutes {
                    counts[m] += 1;
                }
            }
            // Replay rule: 1 invocation at minute start; k invocations
            // equally spaced through the minute.
            for (m, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let base = m as u64 * 60_000;
                if c == 1 {
                    events.push(TraceEvent {
                        time_ms: base,
                        func: idx as u32,
                    });
                } else {
                    let step = 60_000 / c as u64;
                    for k in 0..c as u64 {
                        events.push(TraceEvent {
                            time_ms: base + k * step,
                            func: idx as u32,
                        });
                    }
                }
            }
        }
        events.sort_by_key(|e| e.time_ms);
        events
    }

    /// Total invocations per function index.
    pub fn invocations_per_function(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.profiles.len()];
        for e in &self.events {
            counts[e.func as usize] += 1;
        }
        counts
    }

    /// Invocations per second over `bucket_ms` windows — the appendix
    /// timeseries figures.
    pub fn rate_timeseries(&self, bucket_ms: u64) -> Vec<f64> {
        assert!(bucket_ms > 0);
        let buckets = (self.duration_ms / bucket_ms + 1) as usize;
        let mut counts = vec![0u64; buckets];
        for e in &self.events {
            counts[(e.time_ms / bucket_ms) as usize] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 * 1000.0 / bucket_ms as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticAzureTrace {
        SyntheticAzureTrace::generate(&AzureTraceConfig {
            apps: 120,
            duration_ms: 2 * 3600 * 1000, // 2h keeps tests fast
            seed: 7,
            diurnal_fraction: 0.2,
            rate_scale: 1.0,
        })
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events.first(), b.events.first());
        assert_eq!(a.profiles.len(), b.profiles.len());
    }

    #[test]
    fn events_sorted_and_in_range() {
        let t = small();
        assert!(!t.events.is_empty());
        let mut prev = 0;
        for e in &t.events {
            assert!(e.time_ms >= prev, "events must be time-sorted");
            assert!(e.time_ms < t.duration_ms);
            assert!((e.func as usize) < t.profiles.len());
            prev = e.time_ms;
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let t = SyntheticAzureTrace::generate(&AzureTraceConfig {
            apps: 400,
            duration_ms: 24 * 3600 * 1000,
            seed: 11,
            diurnal_fraction: 0.0,
            rate_scale: 1.0,
        });
        let mut counts = t.invocations_per_function();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top5pct: u64 = counts.iter().take(counts.len() / 20).sum();
        assert!(
            top5pct as f64 / total as f64 > 0.5,
            "top 5% of functions should dominate: {top5pct}/{total}"
        );
        // And the long tail: many functions with >30min IATs → <48/day.
        let rare = counts.iter().filter(|&&c| c < 48).count();
        assert!(
            rare as f64 / counts.len() as f64 > 0.3,
            "rare fraction {rare}"
        );
    }

    #[test]
    fn minute_bucket_replay_rule() {
        // A single-function trace with a slow rate: every event lands at a
        // minute boundary (single invocations inject at minute start).
        let profiles = vec![FunctionProfile {
            fqdn: "app0-fn0".into(),
            app: 0,
            mean_iat_ms: 10.0 * 60_000.0,
            warm_ms: 1000,
            init_ms: 500,
            memory_mb: 128,
            diurnal: false,
        }];
        let t = SyntheticAzureTrace::regenerate_events(profiles, 6 * 3600 * 1000, 3);
        assert!(!t.events.is_empty());
        let singles = t.events.iter().filter(|e| e.time_ms % 60_000 == 0).count();
        assert!(
            singles as f64 / t.events.len() as f64 > 0.8,
            "slow functions mostly inject at minute starts"
        );
    }

    #[test]
    fn memory_split_across_app() {
        let t = small();
        // All functions of an app share the same per-function allocation.
        for w in t.profiles.windows(2) {
            if w[0].app == w[1].app {
                assert_eq!(w[0].memory_mb, w[1].memory_mb);
            }
        }
        assert!(t.profiles.iter().all(|p| p.memory_mb >= 32));
    }

    #[test]
    fn rate_scale_multiplies_load() {
        let base = AzureTraceConfig {
            apps: 100,
            duration_ms: 3_600_000,
            seed: 5,
            diurnal_fraction: 0.0,
            rate_scale: 1.0,
        };
        let slow = SyntheticAzureTrace::generate(&base);
        let fast = SyntheticAzureTrace::generate(&AzureTraceConfig {
            rate_scale: 4.0,
            ..base
        });
        let r = fast.events.len() as f64 / slow.events.len() as f64;
        assert!(r > 2.5 && r < 6.0, "4x rate scale gave {r}x events");
    }

    #[test]
    fn diurnal_factor_waves() {
        assert!((diurnal_factor(0) - 1.0).abs() < 1e-9);
        let peak = diurnal_factor(6 * 3_600_000); // quarter day
        let trough = diurnal_factor(18 * 3_600_000);
        assert!(peak > 1.5 && trough < 0.5);
    }

    #[test]
    fn timeseries_covers_duration() {
        let t = small();
        let ts = t.rate_timeseries(60_000);
        assert_eq!(ts.len() as u64, t.duration_ms / 60_000 + 1);
        let total_from_ts: f64 = ts.iter().sum::<f64>() * 60.0;
        assert!((total_from_ts - t.events.len() as f64).abs() < 1.0);
    }
}
