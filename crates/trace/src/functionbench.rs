//! FunctionBench application models (Table 3) and real in-process bodies.
//!
//! The OpenWhisk evaluation runs seven FunctionBench applications whose
//! memory, end-to-end run time, and initialization time the paper tabulates.
//! [`FbApp::spec`] carries those numbers for the simulated backends;
//! [`FbApp::behavior`] provides genuine (small) computations for the
//! in-process backend so control-plane latency experiments exercise real
//! work.

use iluvatar_containers::agent::FunctionBehavior;
use iluvatar_containers::{FunctionSpec, ResourceLimits};

/// The Table 3 applications plus PyAES (Figure 1's workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FbApp {
    /// SqueezeNet CNN inference (TensorFlow).
    MlInference,
    /// mp4 → grayscale avi (cv2).
    VideoEncoding,
    /// `numpy.linalg.solve` on a random 20×20 matrix.
    MatrixMultiply,
    /// 1000 × 128k-block dd read/write.
    DiskBench,
    /// Chameleon HTML generation.
    WebServing,
    /// Trigonometric loop over the math library.
    FloatingPoint,
    /// PIL transforms (Table 3's "Image Manip").
    ImageManip,
    /// AES encrypt/decrypt loop — the Figure 1 overhead workload.
    PyAes,
}

impl FbApp {
    pub fn all() -> [FbApp; 8] {
        [
            FbApp::MlInference,
            FbApp::VideoEncoding,
            FbApp::MatrixMultiply,
            FbApp::DiskBench,
            FbApp::WebServing,
            FbApp::FloatingPoint,
            FbApp::ImageManip,
            FbApp::PyAes,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            FbApp::MlInference => "ml-inference",
            FbApp::VideoEncoding => "video-encoding",
            FbApp::MatrixMultiply => "matrix-multiply",
            FbApp::DiskBench => "disk-bench",
            FbApp::WebServing => "web-serving",
            FbApp::FloatingPoint => "floating-point",
            FbApp::ImageManip => "image-manip",
            FbApp::PyAes => "pyaes",
        }
    }

    /// (memory MB, total run ms, init ms) — Table 3. Run time *includes*
    /// initialization ("the floating point function has a very high
    /// initialization overhead — 1.7 of the total 2 seconds").
    pub fn table3(&self) -> (u64, u64, u64) {
        match self {
            FbApp::MlInference => (512, 6_500, 4_500),
            FbApp::VideoEncoding => (500, 56_000, 3_000),
            FbApp::MatrixMultiply => (256, 2_500, 2_200),
            FbApp::DiskBench => (256, 2_200, 1_800),
            FbApp::ImageManip => (300, 9_000, 6_000),
            FbApp::WebServing => (64, 2_400, 2_000),
            FbApp::FloatingPoint => (128, 2_000, 1_700),
            // Not in Table 3: a small sub-100ms function.
            FbApp::PyAes => (128, 60, 40),
        }
    }

    /// The modelled [`FunctionSpec`]: warm time = run − init.
    pub fn spec(&self) -> FunctionSpec {
        let (mem, run, init) = self.table3();
        FunctionSpec::new(self.name(), "1")
            .with_image(format!("functionbench/{}:1", self.name()))
            .with_limits(ResourceLimits {
                cpus: 1.0,
                memory_mb: mem,
            })
            .with_timing(run - init, init)
    }

    /// A genuine small computation standing in for the Python body, for the
    /// in-process backend. Durations are NOT meant to match Table 3 (that's
    /// the simulated backends' job); these exercise real CPU work on the
    /// real hot path.
    pub fn behavior(&self) -> FunctionBehavior {
        match self {
            FbApp::MatrixMultiply => FunctionBehavior::from_body(|_| {
                // 20×20 matmul, like the numpy workload.
                const N: usize = 20;
                let mut a = [[0.0f64; N]; N];
                let mut b = [[0.0f64; N]; N];
                for i in 0..N {
                    for j in 0..N {
                        a[i][j] = ((i * 31 + j * 17) % 97) as f64;
                        b[i][j] = ((i * 13 + j * 7) % 89) as f64;
                    }
                }
                let mut c = [[0.0f64; N]; N];
                for i in 0..N {
                    for k in 0..N {
                        let aik = a[i][k];
                        for j in 0..N {
                            c[i][j] += aik * b[k][j];
                        }
                    }
                }
                format!("{{\"trace\":{}}}", c[0][0] + c[N - 1][N - 1])
            }),
            FbApp::FloatingPoint => FunctionBehavior::from_body(|_| {
                let mut acc = 0.0f64;
                for i in 1..20_000u64 {
                    let x = i as f64;
                    acc += (x.sin() * x.cos()).atan() / x.sqrt();
                }
                format!("{{\"acc\":{acc}}}")
            }),
            FbApp::WebServing => FunctionBehavior::from_body(|args| {
                let mut page = String::with_capacity(4096);
                page.push_str("<html><body><ul>");
                for i in 0..100 {
                    page.push_str(&format!("<li>item {i}</li>"));
                }
                page.push_str("</ul></body></html>");
                format!("{{\"bytes\":{},\"args\":{}}}", page.len(), args.len())
            }),
            FbApp::PyAes => FunctionBehavior::from_body(|args| {
                // A toy block cipher round loop, standing in for pyaes.
                let mut state = [0u8; 16];
                for (i, b) in args.bytes().enumerate().take(16) {
                    state[i] = b;
                }
                for round in 0u8..64 {
                    for b in state.iter_mut() {
                        *b = b.rotate_left(3) ^ round.wrapping_mul(31);
                    }
                    state.rotate_left(1);
                }
                format!(
                    "{{\"ct\":{}}}",
                    state.iter().map(|&b| b as u64).sum::<u64>()
                )
            }),
            // The heavyweight apps use a deterministic CPU spin scaled down:
            // real work, bounded duration.
            _ => FunctionBehavior::from_body(|_| {
                let mut h = 0x9E3779B97F4A7C15u64;
                for i in 0..200_000u64 {
                    h = (h ^ i).wrapping_mul(0xBF58476D1CE4E5B9);
                    h ^= h >> 31;
                }
                format!("{{\"h\":{h}}}")
            }),
        }
    }

    /// §5's trace-to-benchmark mapping: represent a trace function by the
    /// FunctionBench app with the closest mean running time.
    pub fn closest_by_runtime(mean_ms: u64) -> FbApp {
        let mut best = FbApp::PyAes;
        let mut best_d = u64::MAX;
        for app in FbApp::all() {
            let (_, run, _) = app.table3();
            let d = run.abs_diff(mean_ms);
            if d < best_d {
                best_d = d;
                best = app;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        assert_eq!(FbApp::MlInference.table3(), (512, 6_500, 4_500));
        assert_eq!(FbApp::VideoEncoding.table3(), (500, 56_000, 3_000));
        assert_eq!(FbApp::WebServing.table3(), (64, 2_400, 2_000));
        assert_eq!(FbApp::FloatingPoint.table3(), (128, 2_000, 1_700));
    }

    #[test]
    fn spec_timing_decomposes_run_time() {
        let s = FbApp::FloatingPoint.spec();
        assert_eq!(s.warm_exec_ms, 300, "warm = run - init");
        assert_eq!(s.init_ms, 1700);
        assert_eq!(s.cold_exec_ms(), 2000, "cold = full Table 3 run time");
        assert_eq!(s.limits.memory_mb, 128);
    }

    #[test]
    fn behaviors_run_and_return_json() {
        for app in FbApp::all() {
            let b = app.behavior();
            let out = (b.body)("{\"x\":1}");
            assert!(out.starts_with('{'), "{}: {out}", app.name());
        }
    }

    #[test]
    fn closest_by_runtime_maps_sensibly() {
        // The paper's example: an 8s function maps to the ~9s app
        // (Image Manip at 9s here; their text used ML-training at 6s).
        assert_eq!(FbApp::closest_by_runtime(8_000), FbApp::ImageManip);
        assert_eq!(FbApp::closest_by_runtime(50), FbApp::PyAes);
        assert_eq!(FbApp::closest_by_runtime(60_000), FbApp::VideoEncoding);
        assert_eq!(FbApp::closest_by_runtime(2_449), FbApp::WebServing);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = FbApp::all().iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
