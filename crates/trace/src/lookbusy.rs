//! `lookbusy`-style synthetic load functions.
//!
//! §5: the load framework "can use ... custom sized functions that run
//! lookbusy for generating specific CPU and memory load". A lookbusy
//! function is parameterized by its busy duration and resident memory; the
//! in-process behavior actually spins the CPU and holds an allocation.

use iluvatar_containers::agent::FunctionBehavior;
use iluvatar_containers::{FunctionSpec, ResourceLimits};
use std::time::{Duration, Instant};

/// Parameters of one synthetic function.
#[derive(Debug, Clone, Copy)]
pub struct LookbusySpec {
    /// Busy-loop duration per invocation, ms.
    pub busy_ms: u64,
    /// Extra one-time initialization spin, ms (cold-start cost).
    pub init_ms: u64,
    /// Resident memory to hold, MB.
    pub memory_mb: u64,
    pub cpus: f64,
}

impl LookbusySpec {
    /// The registry spec for this synthetic function.
    pub fn function_spec(&self, name: &str) -> FunctionSpec {
        FunctionSpec::new(name, "1")
            .with_image(format!("lookbusy/{name}:1"))
            .with_limits(ResourceLimits {
                cpus: self.cpus,
                memory_mb: self.memory_mb,
            })
            .with_timing(self.busy_ms, self.init_ms)
    }

    /// An in-process behavior that really burns CPU for `busy_ms` and pins
    /// `memory_mb` of heap while running; init spins for `init_ms`.
    pub fn behavior(&self) -> FunctionBehavior {
        let busy = Duration::from_millis(self.busy_ms);
        let init = Duration::from_millis(self.init_ms);
        let mem_bytes = (self.memory_mb as usize) * 1024 * 1024;
        FunctionBehavior {
            init: std::sync::Arc::new(move || spin_for(init)),
            body: std::sync::Arc::new(move |_args| {
                // Hold the working set while spinning, like lookbusy -m.
                let held: Vec<u8> = vec![0xAB; mem_bytes.min(8 * 1024 * 1024)];
                spin_for(busy);
                format!(
                    "{{\"held_mb\":{},\"busy_ms\":{}}}",
                    held.len() >> 20,
                    busy.as_millis()
                )
            }),
        }
    }
}

/// Busy-wait (not sleep): consumes real CPU like lookbusy.
fn spin_for(d: Duration) {
    let start = Instant::now();
    let mut x = 0u64;
    while start.elapsed() < d {
        for _ in 0..512 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_carries_parameters() {
        let lb = LookbusySpec {
            busy_ms: 250,
            init_ms: 100,
            memory_mb: 256,
            cpus: 2.0,
        };
        let s = lb.function_spec("load-a");
        assert_eq!(s.fqdn, "load-a-1");
        assert_eq!(s.warm_exec_ms, 250);
        assert_eq!(s.init_ms, 100);
        assert_eq!(s.limits.memory_mb, 256);
        assert_eq!(s.limits.cpus, 2.0);
    }

    #[test]
    fn behavior_burns_cpu_for_duration() {
        let lb = LookbusySpec {
            busy_ms: 30,
            init_ms: 0,
            memory_mb: 1,
            cpus: 1.0,
        };
        let b = lb.behavior();
        let start = Instant::now();
        let out = (b.body)("");
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(28), "spun {elapsed:?}");
        assert!(out.contains("busy_ms"));
    }

    #[test]
    fn init_spins_separately() {
        let lb = LookbusySpec {
            busy_ms: 0,
            init_ms: 25,
            memory_mb: 1,
            cpus: 1.0,
        };
        let b = lb.behavior();
        let start = Instant::now();
        (b.init)();
        assert!(start.elapsed() >= Duration::from_millis(23));
    }
}
