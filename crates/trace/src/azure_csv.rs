//! Importer for the real Azure Functions 2019 dataset.
//!
//! The synthetic generator ([`crate::azure`]) stands in for the dataset in
//! this repository, but users who download Microsoft's actual release
//! (`AzureFunctionsDataset2019`) can load it here and drive every
//! experiment with the genuine trace. Three CSV schemas are consumed, as
//! described in the dataset's README:
//!
//! * `invocations_per_function_md.anon.d01.csv` — `HashOwner, HashApp,
//!   HashFunction, Trigger, 1, 2, …, 1440` (per-minute invocation counts);
//! * `function_durations_percentiles.anon.d01.csv` — per-function
//!   `Average, Count, Minimum, Maximum, percentile_* …` execution times;
//! * `app_memory_percentiles.anon.d01.csv` — per-app `AverageAllocatedMb`.
//!
//! The adaptation rules follow §6 exactly: functions with fewer than two
//! invocations are discarded, app memory is split evenly across the app's
//! functions, the cold-start penalty is estimated as `Maximum − Average`
//! duration, and minute-bucket counts are replayed with one invocation at
//! the minute start or `k` equally spaced.

use crate::azure::{FunctionProfile, SyntheticAzureTrace, TraceEvent};
use std::collections::HashMap;

/// Import failures.
#[derive(Debug, PartialEq, Eq)]
pub enum CsvError {
    /// Header missing a required column.
    MissingColumn(&'static str),
    /// A row had too few fields.
    ShortRow(usize),
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: String },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingColumn(c) => write!(f, "missing column {c}"),
            CsvError::ShortRow(l) => write!(f, "short row at line {l}"),
            CsvError::BadNumber { line, field } => {
                write!(f, "bad number {field:?} at line {line}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Split a CSV line (the Azure files are plain comma-separated, unquoted).
fn fields(line: &str) -> Vec<&str> {
    line.split(',').map(|s| s.trim()).collect()
}

fn col(header: &[&str], name: &'static str) -> Result<usize, CsvError> {
    header
        .iter()
        .position(|&h| h.eq_ignore_ascii_case(name))
        .ok_or(CsvError::MissingColumn(name))
}

fn parse_num(s: &str, line: usize) -> Result<f64, CsvError> {
    s.parse().map_err(|_| CsvError::BadNumber {
        line,
        field: s.to_string(),
    })
}

/// Per-minute invocation counts for one function.
#[derive(Debug)]
pub struct InvocationRow {
    pub app: String,
    pub function: String,
    /// 1440 per-minute counts (one day).
    pub counts: Vec<u32>,
}

/// Parse the invocations-per-function CSV.
pub fn parse_invocations(csv: &str) -> Result<Vec<InvocationRow>, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::ShortRow(0))?;
    let header = fields(header);
    let app_i = col(&header, "HashApp")?;
    let func_i = col(&header, "HashFunction")?;
    let first_min = col(&header, "1")?;
    let mut out = Vec::new();
    for (ln, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(line);
        if f.len() <= first_min {
            return Err(CsvError::ShortRow(ln + 1));
        }
        let counts = f[first_min..]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                parse_num(s, ln + 1)
                    .map(|v| v as u32)
                    .map_err(|_| CsvError::BadNumber {
                        line: ln + 1,
                        field: f[first_min + i].to_string(),
                    })
            })
            .collect::<Result<Vec<u32>, _>>()?;
        out.push(InvocationRow {
            app: f[app_i].to_string(),
            function: f[func_i].to_string(),
            counts,
        });
    }
    Ok(out)
}

/// Per-function duration stats (ms).
#[derive(Debug)]
pub struct DurationRow {
    pub function: String,
    pub average_ms: f64,
    pub maximum_ms: f64,
}

/// Parse the durations CSV.
pub fn parse_durations(csv: &str) -> Result<Vec<DurationRow>, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::ShortRow(0))?;
    let header = fields(header);
    let func_i = col(&header, "HashFunction")?;
    let avg_i = col(&header, "Average")?;
    let max_i = col(&header, "Maximum")?;
    let mut out = Vec::new();
    for (ln, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(line);
        let need = func_i.max(avg_i).max(max_i);
        if f.len() <= need {
            return Err(CsvError::ShortRow(ln + 1));
        }
        out.push(DurationRow {
            function: f[func_i].to_string(),
            average_ms: parse_num(f[avg_i], ln + 1)?,
            maximum_ms: parse_num(f[max_i], ln + 1)?,
        });
    }
    Ok(out)
}

/// Per-app memory (MB).
#[derive(Debug)]
pub struct MemoryRow {
    pub app: String,
    pub average_mb: f64,
}

/// Parse the app-memory CSV.
pub fn parse_memory(csv: &str) -> Result<Vec<MemoryRow>, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::ShortRow(0))?;
    let header = fields(header);
    let app_i = col(&header, "HashApp")?;
    let mem_i = col(&header, "AverageAllocatedMb")?;
    let mut out = Vec::new();
    for (ln, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(line);
        if f.len() <= app_i.max(mem_i) {
            return Err(CsvError::ShortRow(ln + 1));
        }
        out.push(MemoryRow {
            app: f[app_i].to_string(),
            average_mb: parse_num(f[mem_i], ln + 1)?,
        });
    }
    Ok(out)
}

/// Assemble the three parsed files into a replayable trace, applying the
/// paper's adaptation rules (§6).
pub fn assemble(
    invocations: Vec<InvocationRow>,
    durations: Vec<DurationRow>,
    memory: Vec<MemoryRow>,
) -> SyntheticAzureTrace {
    let dur_by_fn: HashMap<&str, &DurationRow> =
        durations.iter().map(|d| (d.function.as_str(), d)).collect();
    let mem_by_app: HashMap<&str, f64> = memory
        .iter()
        .map(|m| (m.app.as_str(), m.average_mb))
        .collect();
    // Functions per app, to split the app allocation evenly.
    let mut fns_per_app: HashMap<&str, u64> = HashMap::new();
    for r in &invocations {
        *fns_per_app.entry(r.app.as_str()).or_insert(0) += 1;
    }

    let mut app_ids: HashMap<String, u32> = HashMap::new();
    let mut profiles = Vec::new();
    let mut events = Vec::new();
    for row in &invocations {
        let total: u64 = row.counts.iter().map(|&c| c as u64).sum();
        if total < 2 {
            continue; // "we do not consider functions that are never reused"
        }
        let dur = dur_by_fn.get(row.function.as_str());
        let average_ms = dur.map(|d| d.average_ms).unwrap_or(1_000.0).max(1.0);
        let maximum_ms = dur.map(|d| d.maximum_ms).unwrap_or(average_ms);
        // Cold penalty: maximum − average (§6).
        let init_ms = (maximum_ms - average_ms).max(0.0) as u64;
        let next_app = app_ids.len() as u32;
        let app_id = *app_ids.entry(row.app.clone()).or_insert(next_app);
        let app_mem = mem_by_app.get(row.app.as_str()).copied().unwrap_or(170.0);
        let split = fns_per_app
            .get(row.app.as_str())
            .copied()
            .unwrap_or(1)
            .max(1);
        let minutes = row.counts.len() as u64;
        let idx = profiles.len() as u32;
        profiles.push(FunctionProfile {
            fqdn: format!(
                "{}-{}",
                &row.app[..row.app.len().min(8)],
                &row.function[..row.function.len().min(8)]
            ),
            app: app_id,
            mean_iat_ms: minutes as f64 * 60_000.0 / total as f64,
            warm_ms: average_ms as u64,
            init_ms,
            memory_mb: ((app_mem / split as f64) as u64).max(32),
            diurnal: false,
        });
        // Replay rule: 1 invocation at minute start, k equally spaced.
        for (m, &c) in row.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let base = m as u64 * 60_000;
            if c == 1 {
                events.push(TraceEvent {
                    time_ms: base,
                    func: idx,
                });
            } else {
                let step = 60_000 / c as u64;
                for k in 0..c as u64 {
                    events.push(TraceEvent {
                        time_ms: base + k * step,
                        func: idx,
                    });
                }
            }
        }
    }
    events.sort_by_key(|e| e.time_ms);
    let duration_ms = invocations
        .first()
        .map(|r| r.counts.len() as u64 * 60_000)
        .unwrap_or(24 * 3600 * 1000);
    SyntheticAzureTrace {
        profiles,
        events,
        duration_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute_header() -> String {
        let mins: Vec<String> = (1..=5).map(|m| m.to_string()).collect();
        format!("HashOwner,HashApp,HashFunction,Trigger,{}", mins.join(","))
    }

    #[test]
    fn parses_invocations() {
        let csv = format!(
            "{}\nown1,appA,fn1,http,0,2,0,1,0\nown1,appA,fn2,timer,1,0,0,0,0\n",
            minute_header()
        );
        let rows = parse_invocations(&csv).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].function, "fn1");
        assert_eq!(rows[0].counts, vec![0, 2, 0, 1, 0]);
    }

    #[test]
    fn rejects_missing_column() {
        let csv = "HashOwner,HashApp,Trigger,1\na,b,c,0\n";
        assert_eq!(
            parse_invocations(csv).unwrap_err(),
            CsvError::MissingColumn("HashFunction")
        );
    }

    #[test]
    fn rejects_bad_counts() {
        let csv = format!("{}\no,a,f,t,0,xyz,0,0,0\n", minute_header());
        assert!(matches!(
            parse_invocations(&csv),
            Err(CsvError::BadNumber { line: 2, .. })
        ));
    }

    #[test]
    fn parses_durations_and_memory() {
        let d = "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n\
                 o,a,fn1,1500.5,10,100,9000\n";
        let rows = parse_durations(d).unwrap();
        assert_eq!(rows[0].average_ms, 1500.5);
        assert_eq!(rows[0].maximum_ms, 9000.0);
        let m = "HashOwner,HashApp,SampleCount,AverageAllocatedMb\no,appA,42,340\n";
        let rows = parse_memory(m).unwrap();
        assert_eq!(rows[0].average_mb, 340.0);
        assert_eq!(rows[0].app, "appA");
    }

    #[test]
    fn assemble_applies_adaptation_rules() {
        let inv = format!(
            "{}\no,appA,fn1,http,0,3,0,0,1\no,appA,fn2,http,0,1,0,0,0\n",
            minute_header()
        );
        let dur = "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n\
                   o,appA,fn1,1000,4,900,4000\n";
        let mem = "HashOwner,HashApp,SampleCount,AverageAllocatedMb\no,appA,9,400\n";
        let trace = assemble(
            parse_invocations(&inv).unwrap(),
            parse_durations(dur).unwrap(),
            parse_memory(mem).unwrap(),
        );
        // fn2 has <2 invocations → discarded.
        assert_eq!(trace.profiles.len(), 1);
        let p = &trace.profiles[0];
        assert_eq!(p.warm_ms, 1000);
        assert_eq!(p.init_ms, 3000, "max - avg");
        assert_eq!(p.memory_mb, 200, "400MB app split over 2 functions");
        // Replay: 3 invocations in minute 2 → equally spaced at 20s; 1 in
        // minute 5 → at minute start.
        let times: Vec<u64> = trace.events.iter().map(|e| e.time_ms).collect();
        assert_eq!(times, vec![60_000, 80_000, 100_000, 240_000]);
        assert_eq!(trace.duration_ms, 5 * 60_000);
    }

    #[test]
    fn assemble_handles_missing_side_tables() {
        let inv = format!("{}\no,appB,fnX,http,1,1,0,0,0\n", minute_header());
        let trace = assemble(parse_invocations(&inv).unwrap(), vec![], vec![]);
        assert_eq!(trace.profiles.len(), 1);
        assert_eq!(trace.profiles[0].memory_mb, 170, "dataset-wide default");
    }
}
