//! Workload substrate for the Ilúvatar evaluation.
//!
//! The paper's evaluation (§6) replays samples of the Azure Functions 2019
//! trace and runs FunctionBench applications. The raw Microsoft dataset is
//! not redistributable, so [`azure`] synthesizes a statistically equivalent
//! population from the trace's published marginals — heavy-tailed function
//! popularity (a tiny fraction of functions produce the vast majority of
//! invocations), minute-bucketed arrivals spread per the paper's replay
//! rule, application-level memory split evenly across functions, and
//! execution times spanning the published 1 s–1 min quantile range. The
//! three evaluation samples (RARE / REPRESENTATIVE / RANDOM, Table 2) are
//! drawn in [`samples`].
//!
//! [`functionbench`] carries the seven Table 3 applications; [`lookbusy`]
//! generates fixed CPU/memory load functions; [`loadgen`] provides the
//! open- and closed-loop load generation framework of §5.

pub mod azure;
pub mod azure_csv;
pub mod functionbench;
pub mod loadgen;
pub mod lookbusy;
pub mod samples;

pub use azure::{AzureTraceConfig, FunctionProfile, SyntheticAzureTrace, TraceEvent};
pub use loadgen::{ClosedLoopConfig, InvokerTarget, OpenLoopRunner};
pub use samples::{SampleKind, TraceSample, TraceStats};
