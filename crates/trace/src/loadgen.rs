//! Open- and closed-loop load generation (§5).
//!
//! "It can do closed and open loop load generation, and be parameterized by
//! the number and mixture of functions, their IAT distributions, etc. The
//! open-loop generation produces a timeseries of function invocations, which
//! is helpful for repeatable experiments."
//!
//! Targets implement [`InvokerTarget`]; the generators are agnostic to
//! whether they drive an Ilúvatar worker, the OpenWhisk baseline model, or a
//! load balancer in front of a cluster.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of one fired invocation, as seen by the client.
#[derive(Debug, Clone)]
pub struct FireOutcome {
    pub fqdn: String,
    /// End-to-end client-observed latency, ms.
    pub e2e_ms: u64,
    /// Function execution time reported by the platform, ms.
    pub exec_ms: u64,
    pub cold: bool,
    /// The platform rejected/dropped the request.
    pub dropped: bool,
    /// Client-side send timestamp, ms since generator start.
    pub sent_at_ms: u64,
    /// Tenant label the invocation was fired under, if any.
    pub tenant: Option<String>,
}

impl FireOutcome {
    /// Control-plane overhead: client latency minus function execution.
    pub fn overhead_ms(&self) -> u64 {
        self.e2e_ms.saturating_sub(self.exec_ms)
    }
}

/// Anything that can execute one blocking invocation.
pub trait InvokerTarget: Send + Sync + 'static {
    /// Fire `fqdn` synchronously. Returns (exec_ms, cold) or Err for a
    /// dropped/rejected request.
    fn fire(&self, fqdn: &str, args: &str) -> Result<(u64, bool), String>;

    /// Fire under a tenant label. Targets without multi-tenant support
    /// drop the label and dispatch as usual.
    fn fire_as(&self, fqdn: &str, args: &str, tenant: Option<&str>) -> Result<(u64, bool), String> {
        let _ = tenant;
        self.fire(fqdn, args)
    }
}

/// Closed-loop configuration: `clients` threads each invoking their
/// assigned function back-to-back (the Figure 1 methodology: "invoking the
/// function repeatedly in a closed loop ... concurrent invocations are
/// achieved by using multiple client threads").
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    pub clients: usize,
    pub invocations_per_client: usize,
    /// Warmup invocations per client, excluded from results.
    pub warmup_per_client: usize,
}

/// Run a closed loop where every client hammers `fqdn`.
pub fn closed_loop(
    target: Arc<dyn InvokerTarget>,
    fqdn: &str,
    cfg: &ClosedLoopConfig,
) -> Vec<FireOutcome> {
    let start = Instant::now();
    let threads: Vec<_> = (0..cfg.clients)
        .map(|_| {
            let target = Arc::clone(&target);
            let fqdn = fqdn.to_string();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut out = Vec::with_capacity(cfg.invocations_per_client);
                for i in 0..cfg.warmup_per_client + cfg.invocations_per_client {
                    let sent = Instant::now();
                    let sent_at_ms = start.elapsed().as_millis() as u64;
                    let res = target.fire(&fqdn, "{}");
                    let e2e_ms = sent.elapsed().as_millis() as u64;
                    if i < cfg.warmup_per_client {
                        continue;
                    }
                    out.push(match res {
                        Ok((exec_ms, cold)) => FireOutcome {
                            fqdn: fqdn.clone(),
                            e2e_ms,
                            exec_ms,
                            cold,
                            dropped: false,
                            sent_at_ms,
                            tenant: None,
                        },
                        Err(_) => FireOutcome {
                            fqdn: fqdn.clone(),
                            e2e_ms,
                            exec_ms: 0,
                            cold: false,
                            dropped: true,
                            sent_at_ms,
                            tenant: None,
                        },
                    });
                }
                out
            })
        })
        .collect();
    let mut all = Vec::new();
    for t in threads {
        all.extend(t.join().expect("client thread"));
    }
    all
}

/// One scheduled open-loop invocation.
#[derive(Debug, Clone)]
pub struct ScheduledInvocation {
    /// Fire time relative to run start, ms (already time-scaled).
    pub at_ms: u64,
    pub fqdn: String,
    pub args: String,
    /// Tenant label to fire under, if any.
    pub tenant: Option<String>,
}

/// Open-loop runner: fires a pre-computed schedule at (scaled) wall-clock
/// times, regardless of completion of earlier invocations.
pub struct OpenLoopRunner {
    schedule: Vec<ScheduledInvocation>,
}

impl OpenLoopRunner {
    /// `schedule` need not be sorted; it will be.
    pub fn new(mut schedule: Vec<ScheduledInvocation>) -> Self {
        schedule.sort_by_key(|s| s.at_ms);
        Self { schedule }
    }

    /// Build a schedule from (time, fqdn) pairs with a time-scale factor
    /// (<1 compresses the trace).
    pub fn from_events<'a>(events: impl Iterator<Item = (u64, &'a str)>, time_scale: f64) -> Self {
        let schedule = events
            .map(|(t, f)| ScheduledInvocation {
                at_ms: (t as f64 * time_scale) as u64,
                fqdn: f.to_string(),
                args: "{}".to_string(),
                tenant: None,
            })
            .collect();
        Self::new(schedule)
    }

    /// Assign tenants to the schedule round-robin, weighted by `share`
    /// (e.g. `[("gold", 3), ("free", 1)]` labels 3 of every 4 invocations
    /// "gold"). Deterministic: same schedule + shares → same labels.
    pub fn with_tenants(mut self, shares: &[(&str, u32)]) -> Self {
        let total: u32 = shares.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return self;
        }
        for (i, inv) in self.schedule.iter_mut().enumerate() {
            let mut slot = (i as u32) % total;
            for &(tenant, n) in shares {
                if slot < n {
                    inv.tenant = Some(tenant.to_string());
                    break;
                }
                slot -= n;
            }
        }
        self
    }

    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Fire the whole schedule; blocks until every invocation returns.
    /// Each invocation runs on its own thread (they are open-loop —
    /// arrivals never wait for completions).
    pub fn run(&self, target: Arc<dyn InvokerTarget>) -> Vec<FireOutcome> {
        let start = Instant::now();
        let mut handles = Vec::with_capacity(self.schedule.len());
        for inv in &self.schedule {
            // Pace the arrival process.
            let due = Duration::from_millis(inv.at_ms);
            let now = start.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
            let target = Arc::clone(&target);
            let fqdn = inv.fqdn.clone();
            let args = inv.args.clone();
            let tenant = inv.tenant.clone();
            let sent_at_ms = start.elapsed().as_millis() as u64;
            handles.push(std::thread::spawn(move || {
                let sent = Instant::now();
                let res = target.fire_as(&fqdn, &args, tenant.as_deref());
                let e2e_ms = sent.elapsed().as_millis() as u64;
                match res {
                    Ok((exec_ms, cold)) => FireOutcome {
                        fqdn,
                        e2e_ms,
                        exec_ms,
                        cold,
                        dropped: false,
                        sent_at_ms,
                        tenant,
                    },
                    Err(_) => FireOutcome {
                        fqdn,
                        e2e_ms,
                        exec_ms: 0,
                        cold: false,
                        dropped: true,
                        sent_at_ms,
                        tenant,
                    },
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("invocation thread"))
            .collect()
    }
}

/// Little's law (§5): expected concurrent invocations of a function =
/// arrival rate × mean residence time.
pub fn littles_law_concurrency(mean_iat_ms: f64, mean_exec_ms: f64) -> f64 {
    if mean_iat_ms <= 0.0 {
        return 0.0;
    }
    mean_exec_ms / mean_iat_ms
}

/// Expected system load for a set of functions — the sum of per-function
/// concurrencies; used to pick a `rate_scale` that fits the target server.
pub fn expected_load(functions: impl Iterator<Item = (f64, f64)>) -> f64 {
    functions
        .map(|(iat, exec)| littles_law_concurrency(iat, exec))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Target that sleeps a fixed time; drops every 5th request.
    struct FakeTarget {
        exec_ms: u64,
        calls: AtomicU64,
        drop_every: u64,
    }

    impl InvokerTarget for FakeTarget {
        fn fire(&self, _fqdn: &str, _args: &str) -> Result<(u64, bool), String> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
            if self.drop_every > 0 && n.is_multiple_of(self.drop_every) {
                return Err("dropped".into());
            }
            std::thread::sleep(Duration::from_millis(self.exec_ms));
            Ok((self.exec_ms, n == 1))
        }
    }

    #[test]
    fn closed_loop_counts() {
        let t = Arc::new(FakeTarget {
            exec_ms: 2,
            calls: AtomicU64::new(0),
            drop_every: 0,
        });
        let out = closed_loop(
            Arc::clone(&t) as Arc<dyn InvokerTarget>,
            "f-1",
            &ClosedLoopConfig {
                clients: 4,
                invocations_per_client: 10,
                warmup_per_client: 2,
            },
        );
        assert_eq!(out.len(), 40, "warmups excluded");
        assert_eq!(t.calls.load(Ordering::SeqCst), 48, "warmups still fired");
        assert!(out
            .iter()
            .all(|o| o.e2e_ms >= o.exec_ms || o.e2e_ms + 1 >= o.exec_ms));
    }

    #[test]
    fn closed_loop_records_drops() {
        let t = Arc::new(FakeTarget {
            exec_ms: 1,
            calls: AtomicU64::new(0),
            drop_every: 3,
        });
        let out = closed_loop(
            t as Arc<dyn InvokerTarget>,
            "f-1",
            &ClosedLoopConfig {
                clients: 1,
                invocations_per_client: 9,
                warmup_per_client: 0,
            },
        );
        let drops = out.iter().filter(|o| o.dropped).count();
        assert_eq!(drops, 3);
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let t = Arc::new(FakeTarget {
            exec_ms: 1,
            calls: AtomicU64::new(0),
            drop_every: 0,
        });
        let runner = OpenLoopRunner::from_events(
            [(0u64, "a-1"), (30, "a-1"), (60, "a-1")]
                .iter()
                .map(|&(t, f)| (t, f)),
            1.0,
        );
        assert_eq!(runner.len(), 3);
        let start = Instant::now();
        let out = runner.run(t as Arc<dyn InvokerTarget>);
        let elapsed = start.elapsed();
        assert_eq!(out.len(), 3);
        assert!(
            elapsed >= Duration::from_millis(58),
            "paced to the schedule"
        );
        assert!(out[2].sent_at_ms >= 55, "third fired near t=60");
    }

    #[test]
    fn open_loop_time_scale_compresses() {
        let runner =
            OpenLoopRunner::from_events([(1000u64, "a-1")].iter().map(|&(t, f)| (t, f)), 0.01);
        assert_eq!(runner.schedule[0].at_ms, 10);
    }

    #[test]
    fn open_loop_sorts_schedule() {
        let runner = OpenLoopRunner::new(vec![
            ScheduledInvocation {
                at_ms: 50,
                fqdn: "b-1".into(),
                args: "{}".into(),
                tenant: None,
            },
            ScheduledInvocation {
                at_ms: 10,
                fqdn: "a-1".into(),
                args: "{}".into(),
                tenant: None,
            },
        ]);
        assert_eq!(runner.schedule[0].fqdn, "a-1");
    }

    #[test]
    fn with_tenants_assigns_weighted_shares() {
        let runner = OpenLoopRunner::from_events((0..8u64).map(|t| (t, "f-1")), 1.0)
            .with_tenants(&[("gold", 3), ("free", 1)]);
        let gold = runner
            .schedule
            .iter()
            .filter(|s| s.tenant.as_deref() == Some("gold"))
            .count();
        let free = runner
            .schedule
            .iter()
            .filter(|s| s.tenant.as_deref() == Some("free"))
            .count();
        assert_eq!((gold, free), (6, 2), "3:1 share over 8 invocations");
    }

    /// Target that records the tenant labels it saw.
    struct TenantTarget {
        seen: std::sync::Mutex<Vec<Option<String>>>,
    }

    impl InvokerTarget for TenantTarget {
        fn fire(&self, _fqdn: &str, _args: &str) -> Result<(u64, bool), String> {
            self.fire_as(_fqdn, _args, None)
        }

        fn fire_as(
            &self,
            _fqdn: &str,
            _args: &str,
            tenant: Option<&str>,
        ) -> Result<(u64, bool), String> {
            self.seen.lock().unwrap().push(tenant.map(str::to_string));
            Ok((1, false))
        }
    }

    #[test]
    fn open_loop_fires_under_tenant_labels() {
        let t = Arc::new(TenantTarget {
            seen: std::sync::Mutex::new(Vec::new()),
        });
        let runner = OpenLoopRunner::from_events((0..4u64).map(|i| (i, "f-1")), 1.0)
            .with_tenants(&[("acme", 1)]);
        let out = runner.run(Arc::clone(&t) as Arc<dyn InvokerTarget>);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|o| o.tenant.as_deref() == Some("acme")));
        assert!(t
            .seen
            .lock()
            .unwrap()
            .iter()
            .all(|s| s.as_deref() == Some("acme")));
    }

    #[test]
    fn littles_law() {
        assert_eq!(littles_law_concurrency(100.0, 200.0), 2.0);
        assert_eq!(littles_law_concurrency(0.0, 200.0), 0.0);
        let load = expected_load([(100.0, 200.0), (50.0, 25.0)].into_iter());
        assert!((load - 2.5).abs() < 1e-12);
    }

    #[test]
    fn overhead_computation() {
        let o = FireOutcome {
            fqdn: "f-1".into(),
            e2e_ms: 110,
            exec_ms: 100,
            cold: false,
            dropped: false,
            sent_at_ms: 0,
            tenant: None,
        };
        assert_eq!(o.overhead_ms(), 10);
    }
}
