//! The three evaluation trace samples (Table 2).
//!
//! §6: "We use the following three trace samples:
//! **RARE** — a random sample of 1000 of the rarest, most infrequently
//! invoked functions (usually cold under a classic 10-minute TTL);
//! **REPRESENTATIVE** — ~400 functions sampled from each quartile of the
//! dataset by frequency; **RANDOM** — a random sample of 200 functions."

use crate::azure::{AzureTraceConfig, SyntheticAzureTrace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which Table 2 sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    Rare,
    Representative,
    Random,
}

impl SampleKind {
    pub fn name(&self) -> &'static str {
        match self {
            SampleKind::Rare => "Rare",
            SampleKind::Representative => "Representative",
            SampleKind::Random => "Random",
        }
    }

    pub fn all() -> [SampleKind; 3] {
        [
            SampleKind::Representative,
            SampleKind::Rare,
            SampleKind::Random,
        ]
    }
}

/// Aggregate statistics of a sample — the Table 2 columns.
#[derive(Debug, Clone)]
pub struct TraceStats {
    pub functions: usize,
    pub invocations: u64,
    pub reqs_per_sec: f64,
    /// Mean IAT of the merged arrival stream, ms.
    pub avg_iat_ms: f64,
}

/// A named sample with its regenerated event stream.
pub struct TraceSample {
    pub kind: SampleKind,
    pub trace: SyntheticAzureTrace,
}

impl TraceSample {
    /// Draw `kind` from a base population. The base should be generated
    /// with [`base_population_config`] so quartiles are well-populated.
    pub fn draw(kind: SampleKind, base: &SyntheticAzureTrace, seed: u64) -> Self {
        let counts = base.invocations_per_function();
        // Function indexes sorted by invocation count, ascending.
        let mut by_freq: Vec<usize> = (0..base.profiles.len()).collect();
        by_freq.sort_by_key(|&i| counts[i]);
        let mut rng = StdRng::seed_from_u64(seed);

        let picked: Vec<usize> = match kind {
            SampleKind::Rare => {
                // The rarest active functions ("we do not consider
                // functions that are never reused"). Capped at a third of
                // the active population so the sample stays genuinely
                // rare even for small synthetic bases.
                let active: Vec<usize> = by_freq
                    .iter()
                    .copied()
                    .filter(|&i| counts[i] >= 2)
                    .collect();
                let n = 1000.min((active.len() / 3).max(1));
                let pool = (n * 3 / 2).min(active.len());
                let mut rare: Vec<usize> = active[..pool].to_vec();
                rare.shuffle(&mut rng);
                rare.truncate(n);
                rare
            }
            SampleKind::Representative => {
                // 98 per frequency quartile → 392 functions.
                let active: Vec<usize> = by_freq
                    .iter()
                    .copied()
                    .filter(|&i| counts[i] >= 2)
                    .collect();
                let q = active.len() / 4;
                let mut picked = Vec::new();
                for quartile in 0..4 {
                    let lo = quartile * q;
                    let hi = if quartile == 3 {
                        active.len()
                    } else {
                        (quartile + 1) * q
                    };
                    let mut slice: Vec<usize> = active[lo..hi].to_vec();
                    slice.shuffle(&mut rng);
                    picked.extend(slice.into_iter().take(98));
                }
                picked
            }
            SampleKind::Random => {
                let mut all: Vec<usize> = by_freq
                    .iter()
                    .copied()
                    .filter(|&i| counts[i] >= 2)
                    .collect();
                all.shuffle(&mut rng);
                all.truncate(200);
                all
            }
        };

        let profiles = picked
            .iter()
            .map(|&i| base.profiles[i].clone())
            .collect::<Vec<_>>();
        let trace =
            SyntheticAzureTrace::regenerate_events(profiles, base.duration_ms, seed ^ 0xDEAD);
        Self { kind, trace }
    }

    pub fn stats(&self) -> TraceStats {
        let invocations = self.trace.events.len() as u64;
        let secs = self.trace.duration_ms as f64 / 1000.0;
        TraceStats {
            functions: self.trace.profiles.len(),
            invocations,
            reqs_per_sec: invocations as f64 / secs,
            avg_iat_ms: if invocations > 1 {
                self.trace.duration_ms as f64 / invocations as f64
            } else {
                0.0
            },
        }
    }
}

/// The base population the samples are drawn from: large enough that the
/// rare tail and all quartiles are well populated.
pub fn base_population_config(seed: u64) -> AzureTraceConfig {
    AzureTraceConfig {
        apps: 1200, // ~3000 functions
        duration_ms: 24 * 3600 * 1000,
        seed,
        diurnal_fraction: 0.25,
        rate_scale: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SyntheticAzureTrace {
        // Smaller population for test speed; same structure.
        SyntheticAzureTrace::generate(&AzureTraceConfig {
            apps: 300,
            duration_ms: 6 * 3600 * 1000,
            seed: 21,
            diurnal_fraction: 0.2,
            rate_scale: 1.0,
        })
    }

    #[test]
    fn rare_sample_is_infrequent() {
        let b = base();
        let rare = TraceSample::draw(SampleKind::Rare, &b, 1);
        let random = TraceSample::draw(SampleKind::Random, &b, 1);
        let rare_rate = rare.stats().invocations as f64 / rare.trace.profiles.len() as f64;
        let rand_rate = random.stats().invocations as f64 / random.trace.profiles.len() as f64;
        assert!(
            rare_rate < rand_rate,
            "rare per-fn rate {rare_rate} should be below random {rand_rate}"
        );
        // Rare functions mostly have IATs beyond the 10-minute TTL.
        let long_iat = rare
            .trace
            .profiles
            .iter()
            .filter(|p| p.mean_iat_ms > 600_000.0)
            .count();
        assert!(
            long_iat as f64 / rare.trace.profiles.len() as f64 > 0.5,
            "most rare functions exceed the TTL: {long_iat}"
        );
    }

    #[test]
    fn representative_has_392_functions() {
        let b = base();
        let rep = TraceSample::draw(SampleKind::Representative, &b, 2);
        assert_eq!(rep.trace.profiles.len(), 392);
        // Spread: both frequent and rare functions present.
        let iats: Vec<f64> = rep.trace.profiles.iter().map(|p| p.mean_iat_ms).collect();
        let min = iats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = iats.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 50.0, "quartile sampling spans frequencies");
    }

    #[test]
    fn random_has_200_functions() {
        let b = base();
        let r = TraceSample::draw(SampleKind::Random, &b, 3);
        assert_eq!(r.trace.profiles.len(), 200);
        assert!(r.stats().invocations > 0);
    }

    #[test]
    fn stats_consistent() {
        let b = base();
        let s = TraceSample::draw(SampleKind::Representative, &b, 4);
        let st = s.stats();
        assert_eq!(st.functions, 392);
        let recomputed = st.invocations as f64 / (s.trace.duration_ms as f64 / 1000.0);
        assert!((st.reqs_per_sec - recomputed).abs() < 1e-9);
        assert!(st.avg_iat_ms > 0.0);
    }

    #[test]
    fn draws_are_deterministic() {
        let b = base();
        let a1 = TraceSample::draw(SampleKind::Random, &b, 9);
        let a2 = TraceSample::draw(SampleKind::Random, &b, 9);
        assert_eq!(a1.trace.events.len(), a2.trace.events.len());
        let d = TraceSample::draw(SampleKind::Random, &b, 10);
        assert_ne!(
            a1.trace
                .profiles
                .iter()
                .map(|p| &p.fqdn)
                .collect::<Vec<_>>(),
            d.trace.profiles.iter().map(|p| &p.fqdn).collect::<Vec<_>>(),
            "different seeds draw different samples"
        );
    }
}
