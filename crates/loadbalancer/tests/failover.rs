//! Worker failover: kill one of two workers mid-run and require that the
//! cluster loses no invocations — the balancer evicts the dead worker,
//! re-routes its in-flight work, and reports the eviction on `/metrics`.

use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::api::WorkerApi;
use iluvatar_core::{InvocationResult, InvokeError, Worker, WorkerConfig};
use iluvatar_http::{HttpClient, Method, Request};
use iluvatar_lb::cluster::RemoteWorker;
use iluvatar_lb::{ChBlConfig, Cluster, LbApi, LbPolicy, WorkerHandle};
use iluvatar_sync::SystemClock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A stub worker that can be "killed": invocations then fail like a dead
/// backend, deterministically — no TCP drain windows. The first status poll
/// after death still reports the old load (a real balancer always works from
/// a slightly stale status), so the balancer dispatches into the death once
/// and must recover via re-route rather than the health check.
struct KillableWorker {
    name: String,
    dead: AtomicBool,
    stale_status: AtomicBool,
    calls: AtomicU64,
}

impl KillableWorker {
    fn new(name: &str) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            dead: AtomicBool::new(false),
            stale_status: AtomicBool::new(false),
            calls: AtomicU64::new(0),
        })
    }

    fn kill(&self) {
        self.stale_status.store(true, Ordering::SeqCst);
        self.dead.store(true, Ordering::SeqCst);
    }
}

impl WorkerHandle for KillableWorker {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn load(&self) -> f64 {
        if self.dead.load(Ordering::SeqCst) {
            if self.stale_status.swap(false, Ordering::SeqCst) {
                0.1 // one stale read before the poll starts failing
            } else {
                f64::INFINITY
            }
        } else {
            0.1
        }
    }

    fn register(&self, _spec: FunctionSpec) -> Result<(), String> {
        Ok(())
    }

    fn invoke(&self, _fqdn: &str, _args: &str) -> Result<InvocationResult, InvokeError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(InvokeError::Backend("connection refused".into()));
        }
        self.calls.fetch_add(1, Ordering::SeqCst);
        Ok(InvocationResult {
            body: "ok".into(),
            exec_ms: 1,
            e2e_ms: 1,
            cold: false,
            queue_ms: 0,
            arrived_at: 0,
            trace_id: 0,
            tenant: None,
        })
    }
}

/// The deterministic half: a worker that dies *between* the health check and
/// the dispatch is evicted on the failed call and its invocation re-routed
/// to the surviving worker — nothing is lost.
#[test]
fn mid_call_death_evicts_and_reroutes_without_loss() {
    let stubs = [KillableWorker::new("w0"), KillableWorker::new("w1")];
    let handles: Vec<Arc<dyn WorkerHandle>> = stubs
        .iter()
        .map(|s| Arc::clone(s) as Arc<dyn WorkerHandle>)
        .collect();
    let cluster = Cluster::new(handles, LbPolicy::ChBl(ChBlConfig::default()));
    cluster.register_all(FunctionSpec::new("f", "1")).unwrap();

    for _ in 0..5 {
        cluster.invoke("f-1", "{}").unwrap();
    }
    let before = cluster.stats();
    let home = if before.dispatched[0] > 0 { 0 } else { 1 };
    assert_eq!(
        before.dispatched[home], 5,
        "CH-BL locality: one home worker"
    );
    assert_eq!(before.evictions, 0);

    // The home dies mid-run. Its first status poll still reads healthy, so
    // CH-BL dispatches invocation #1 into the death — the failed call must
    // evict the worker and re-route without losing the invocation. Later
    // picks see the failing poll and route around it outright.
    stubs[home].kill();
    for i in 0..10 {
        let r = cluster
            .invoke("f-1", "{}")
            .unwrap_or_else(|e| panic!("invocation {i} lost: {e}"));
        assert_eq!(r.body, "ok");
    }

    let after = cluster.stats();
    assert_eq!(after.evictions, 1, "exactly one healthy→unhealthy edge");
    assert_eq!(
        after.rerouted, 1,
        "the in-flight invocation was re-dispatched"
    );
    assert!(!after.healthy[home]);
    assert!(after.healthy[1 - home]);
    assert_eq!(
        stubs[1 - home].calls.load(Ordering::SeqCst),
        10 + before.dispatched[1 - home],
        "every post-kill invocation ran on the survivor"
    );

    // Revival: a healthy status poll readmits the worker.
    stubs[home].dead.store(false, Ordering::SeqCst);
    cluster.scrape();
    assert!(cluster.stats().healthy[home], "recovered worker readmitted");
}

fn served_worker(name: &str) -> (Arc<Worker>, WorkerApi) {
    served_worker_with(name, |_| {})
}

fn served_worker_with(
    name: &str,
    tweak: impl FnOnce(&mut WorkerConfig),
) -> (Arc<Worker>, WorkerApi) {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let mut cfg = WorkerConfig::for_testing();
    cfg.name = name.to_string();
    tweak(&mut cfg);
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    let api = WorkerApi::serve(Arc::clone(&worker)).unwrap();
    (worker, api)
}

fn lb_invoke(addr: std::net::SocketAddr, fqdn: &str) -> Result<String, String> {
    let body = format!("{{\"fqdn\":{fqdn:?},\"args\":\"{{}}\"}}");
    let resp = HttpClient::send(
        addr,
        &Request::new(Method::Post, "/invoke").with_body(body),
        Duration::from_secs(10),
    )
    .map_err(|e| e.to_string())?;
    if resp.status.0 == 200 {
        Ok(resp.body_str().to_string())
    } else {
        Err(format!("status {}: {}", resp.status.0, resp.body_str()))
    }
}

/// Counter value from a Prometheus text payload (label-free family).
fn metric_value(text: &str, family: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(family) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// The end-to-end half: a real worker API killed under a real balancer.
/// The TCP teardown makes exact eviction-edge counts racy (keep-alive
/// connections drain for up to ~200 ms), so this test pins the invariants
/// that must hold regardless: zero lost invocations, the dead worker ends
/// evicted, and `/metrics` reports the eviction.
#[test]
fn killing_a_worker_api_mid_run_loses_no_invocations() {
    let (_w0, api0) = served_worker("w0");
    let (_w1, api1) = served_worker("w1");
    let handles: Vec<Arc<dyn WorkerHandle>> = vec![
        Arc::new(RemoteWorker::connect(api0.addr())),
        Arc::new(RemoteWorker::connect(api1.addr())),
    ];
    let cluster = Arc::new(Cluster::new(handles, LbPolicy::ChBl(ChBlConfig::default())));
    cluster
        .register_all(FunctionSpec::new("f", "1").with_timing(100, 400))
        .unwrap();
    let mut lb = LbApi::serve(Arc::clone(&cluster), Duration::from_millis(20)).unwrap();

    for _ in 0..5 {
        lb_invoke(lb.addr(), "f-1").unwrap();
    }
    let before = cluster.stats();
    assert_eq!(before.dispatched.iter().sum::<u64>(), 5);
    let home = if before.dispatched[0] > 0 { 0 } else { 1 };

    // Kill the home worker's API server mid-run and keep invoking through
    // the balancer: every invocation must complete on the survivor.
    let mut apis = [Some(api0), Some(api1)];
    apis[home] = None;
    for i in 0..10 {
        lb_invoke(lb.addr(), "f-1").unwrap_or_else(|e| panic!("invocation {i} lost: {e}"));
    }

    // Settle: let lingering keep-alive connections drain and the periodic
    // scrape register the death, then verify the terminal state.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let st = cluster.stats();
        if (!st.healthy[home] && st.evictions >= 1) || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let after = cluster.stats();
    assert!(after.evictions >= 1, "the dead worker was evicted");
    assert!(!after.healthy[home], "dead worker stays evicted");
    assert!(after.healthy[1 - home], "survivor stays healthy");

    // And invocations still flow after eviction.
    lb_invoke(lb.addr(), "f-1").expect("post-eviction invocation");

    // The eviction reaches /metrics once the periodic scrape lands.
    let deadline = Instant::now() + Duration::from_secs(5);
    let text = loop {
        let resp = HttpClient::send(
            lb.addr(),
            &Request::new(Method::Get, "/metrics"),
            Duration::from_secs(5),
        )
        .unwrap();
        let text = resp.body_str().to_string();
        let evicted = metric_value(&text, "iluvatar_lb_worker_evictions_total")
            .map(|v| v >= 1.0)
            .unwrap_or(false);
        if evicted || Instant::now() > deadline {
            break text;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        metric_value(&text, "iluvatar_lb_worker_evictions_total").unwrap_or(0.0) >= 1.0,
        "eviction counter exported:\n{text}"
    );
    assert!(
        text.contains("iluvatar_lb_rerouted_total"),
        "reroute counter exported"
    );
    let survivor = if home == 0 { "w1" } else { "w0" };
    assert!(
        text.contains(&format!(
            "iluvatar_lb_worker_healthy{{worker=\"{survivor}\"}} 1"
        )),
        "survivor healthy on /metrics:\n{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("iluvatar_lb_worker_healthy") && l.ends_with(" 0")),
        "dead worker unhealthy on /metrics:\n{text}"
    );

    lb.shutdown();
}

/// Graceful drain under the balancer: a draining worker is routed around
/// via its circuit state — without being marked failed — while its
/// in-flight work completes, and a fresh worker on the same address would
/// be re-admitted by the same probe that cleared the drain.
#[test]
fn lb_routes_around_draining_worker_without_eviction() {
    let (_w0, api0) = served_worker("w0");
    let (_w1, api1) = served_worker("w1");
    let apis = [&api0, &api1];
    let handles: Vec<Arc<dyn WorkerHandle>> = vec![
        Arc::new(RemoteWorker::connect(api0.addr())),
        Arc::new(RemoteWorker::connect(api1.addr())),
    ];
    let cluster = Cluster::new(handles, LbPolicy::ChBl(ChBlConfig::default()));
    cluster
        .register_all(FunctionSpec::new("f", "1").with_timing(100, 400))
        .unwrap();

    for _ in 0..5 {
        cluster.invoke("f-1", "{}").unwrap();
    }
    let home = if cluster.stats().dispatched[0] > 0 {
        0
    } else {
        1
    };

    // Drain the home worker over its API, then keep invoking through the
    // balancer: nothing is lost, nothing is evicted.
    let client = iluvatar_core::api::WorkerApiClient::new(apis[home].addr());
    client.drain().unwrap();
    for i in 0..10 {
        cluster
            .invoke("f-1", "{}")
            .unwrap_or_else(|e| panic!("invocation {i} lost to the drain: {e}"));
    }
    let st = cluster.stats();
    assert_eq!(st.evictions, 0, "draining must not trip the breaker");
    assert!(st.healthy[home], "draining worker stays healthy");
    assert!(st.healthy[1 - home]);
    assert_eq!(st.breaker[home], "closed");
    assert!(st.draining[home], "the drain is visible to the balancer");
    assert!(!st.draining[1 - home]);
    // The survivor absorbed every post-drain invocation.
    let survivor_status = iluvatar_core::api::WorkerApiClient::new(apis[1 - home].addr())
        .status()
        .unwrap();
    assert!(
        survivor_status.completed >= 10,
        "survivor served the drained worker's share"
    );
    // The drained worker finishes what it had and reports stopped.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = client.status().unwrap();
        if s.lifecycle == "stopped" && s.drain_pending == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drain never completed: {}",
            s.lifecycle
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A [`KillableWorker`] that also tracks per-tenant served counts, so the
/// rollup's eviction behaviour can be pinned deterministically: a dead
/// worker reports no tenant stats (like a failed scrape), and the balancer
/// must keep serving its last-known counters from the cache.
struct TenantKillableWorker {
    inner: Arc<KillableWorker>,
    tenant_calls: AtomicU64,
}

impl WorkerHandle for TenantKillableWorker {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn load(&self) -> f64 {
        self.inner.load()
    }

    fn register(&self, spec: FunctionSpec) -> Result<(), String> {
        self.inner.register(spec)
    }

    fn invoke(&self, fqdn: &str, args: &str) -> Result<InvocationResult, InvokeError> {
        self.invoke_tenant(fqdn, args, None)
    }

    fn invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<InvocationResult, InvokeError> {
        let mut r = self.inner.invoke(fqdn, args)?;
        if tenant == Some("acme") {
            self.tenant_calls.fetch_add(1, Ordering::SeqCst);
            r.tenant = Some("acme".into());
        }
        Ok(r)
    }

    fn tenant_stats(&self) -> Vec<iluvatar_core::TenantSnapshot> {
        if self.inner.dead.load(Ordering::SeqCst) {
            return Vec::new(); // a dead worker's scrape comes back empty
        }
        let served = self.tenant_calls.load(Ordering::SeqCst);
        vec![iluvatar_core::TenantSnapshot {
            tenant: "acme".into(),
            weight: 1.0,
            admitted: served,
            served,
            ..Default::default()
        }]
    }
}

/// Per-tenant accounting must survive a worker eviction: the balancer keeps
/// the dead worker's last-known tenant counters in the rollup, its own
/// per-tenant dispatch counters live on, and re-routed tenant invocations
/// keep flowing to the survivor under their label.
#[test]
fn tenant_metrics_survive_worker_eviction_and_reroute() {
    let stubs = [KillableWorker::new("w0"), KillableWorker::new("w1")];
    let handles: Vec<Arc<dyn WorkerHandle>> = stubs
        .iter()
        .map(|s| {
            Arc::new(TenantKillableWorker {
                inner: Arc::clone(s),
                tenant_calls: AtomicU64::new(0),
            }) as Arc<dyn WorkerHandle>
        })
        .collect();
    let cluster = Cluster::new(handles, LbPolicy::ChBl(ChBlConfig::default()));
    cluster.register_all(FunctionSpec::new("f", "1")).unwrap();

    for _ in 0..5 {
        let r = cluster.invoke_tenant("f-1", "{}", Some("acme")).unwrap();
        assert_eq!(r.tenant.as_deref(), Some("acme"));
    }
    // Both workers reachable: the home worker's counters enter the rollup
    // (and the balancer's last-known cache).
    let before = cluster.tenant_rollup();
    let acme = before
        .iter()
        .find(|t| t.tenant == "acme")
        .expect("tenant tracked");
    assert_eq!(acme.lb_dispatched, 5);
    assert_eq!(acme.served, 5);
    assert_eq!(acme.lb_rerouted, 0);
    let home = if cluster.stats().dispatched[0] > 0 {
        0
    } else {
        1
    };

    // The home dies with one stale status read, so the next dispatch goes
    // into the death and must recover by re-routing under the label.
    stubs[home].kill();
    for i in 0..6 {
        let r = cluster
            .invoke_tenant("f-1", "{}", Some("acme"))
            .unwrap_or_else(|e| panic!("tenant invocation {i} lost: {e}"));
        assert_eq!(r.tenant.as_deref(), Some("acme"), "label survives re-route");
    }

    let after = cluster.tenant_rollup();
    let acme = after.iter().find(|t| t.tenant == "acme").unwrap();
    assert_eq!(
        acme.lb_rerouted, 1,
        "the in-flight invocation was re-dispatched"
    );
    // 5 + 6 first dispatches plus one per re-route attempt.
    assert_eq!(
        acme.lb_dispatched,
        11 + acme.lb_rerouted,
        "LB counters survive eviction"
    );
    // The dead home scrapes empty, yet its 5 served stay in the rollup via
    // the last-known cache; the survivor contributes the re-routed 6.
    assert_eq!(acme.served, 11, "dead worker's counters kept from cache");
    assert!(cluster.stats().evictions >= 1, "home worker evicted");
}
