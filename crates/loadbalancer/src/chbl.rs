//! Consistent hashing with bounded loads.
//!
//! Functions hash onto a ring of virtual nodes. An invocation starts at its
//! function's home position (locality → warm starts) and walks clockwise
//! past workers whose load exceeds the bound `c × max(1, mean load)`,
//! falling back to the least-loaded worker if every stop is saturated.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// CH-BL parameters.
#[derive(Debug, Clone)]
pub struct ChBlConfig {
    /// Load-bound factor `c` (>1). 1.0 degenerates to always-forward;
    /// typical values are 1.2–2.0.
    pub c: f64,
    /// Virtual nodes per worker: smooths the ring.
    pub vnodes: usize,
}

impl Default for ChBlConfig {
    fn default() -> Self {
        Self { c: 1.5, vnodes: 64 }
    }
}

/// The hash ring. Workers are identified by dense indices `0..n`.
pub struct ChBl {
    cfg: ChBlConfig,
    /// (ring position, worker index), sorted by position.
    ring: Vec<(u64, usize)>,
    workers: usize,
}

fn hash_of(x: impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}

impl ChBl {
    pub fn new(workers: usize, cfg: ChBlConfig) -> Self {
        assert!(workers > 0 && cfg.vnodes > 0 && cfg.c >= 1.0);
        let mut ring = Vec::with_capacity(workers * cfg.vnodes);
        for w in 0..workers {
            for v in 0..cfg.vnodes {
                ring.push((hash_of((w, v, "chbl-vnode")), w));
            }
        }
        ring.sort_unstable();
        Self { cfg, ring, workers }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The home worker of `fqdn` (ignoring loads): where locality puts it.
    pub fn home(&self, fqdn: &str) -> usize {
        let h = hash_of(fqdn);
        let start = self.ring.partition_point(|&(pos, _)| pos < h) % self.ring.len();
        self.ring[start].1
    }

    /// Pick a worker for `fqdn` given current per-worker loads. Walks the
    /// ring from the home position, skipping workers over the bound;
    /// returns (worker, forwarded_hops).
    pub fn pick(&self, fqdn: &str, loads: &[f64]) -> (usize, usize) {
        assert_eq!(loads.len(), self.workers);
        let h = hash_of(fqdn);
        let start = self.ring.partition_point(|&(pos, _)| pos < h) % self.ring.len();
        // Evicted workers report infinite load; they must not poison the
        // mean (an infinite bound admits everyone, including the dead).
        let (sum, finite) = loads
            .iter()
            .filter(|l| l.is_finite())
            .fold((0.0, 0usize), |(s, n), l| (s + l, n + 1));
        let mean = if finite == 0 {
            0.0
        } else {
            sum / finite as f64
        };
        let bound = self.cfg.c * mean.max(1.0);
        let mut hops = 0;
        let mut seen = vec![false; self.workers];
        let mut distinct = 0;
        for i in 0..self.ring.len() {
            let (_, w) = self.ring[(start + i) % self.ring.len()];
            if seen[w] {
                continue;
            }
            seen[w] = true;
            if loads[w].is_finite() && loads[w] <= bound {
                return (w, hops);
            }
            hops += 1;
            distinct += 1;
            if distinct == self.workers {
                break;
            }
        }
        // Everyone saturated: least loaded.
        let w = (0..self.workers)
            .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap())
            .unwrap();
        (w, hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_is_deterministic_and_sticky() {
        let ring = ChBl::new(8, ChBlConfig::default());
        let a = ring.home("video-encode-1");
        assert_eq!(a, ring.home("video-encode-1"));
        // Under zero load, pick == home: locality preserved.
        let loads = vec![0.0; 8];
        assert_eq!(ring.pick("video-encode-1", &loads).0, a);
        assert_eq!(ring.pick("video-encode-1", &loads).1, 0, "no forwarding");
    }

    #[test]
    fn different_functions_spread() {
        let ring = ChBl::new(8, ChBlConfig::default());
        let mut used = std::collections::HashSet::new();
        for i in 0..256 {
            used.insert(ring.home(&format!("fn-{i}")));
        }
        assert_eq!(used.len(), 8, "256 functions should hit all 8 workers");
    }

    #[test]
    fn forwards_past_overloaded_home() {
        let ring = ChBl::new(4, ChBlConfig { c: 1.5, vnodes: 64 });
        let fqdn = "hot-1";
        let home = ring.home(fqdn);
        let mut loads = vec![0.0; 4];
        loads[home] = 100.0; // way over bound
        let (picked, hops) = ring.pick(fqdn, &loads);
        assert_ne!(picked, home, "overloaded home must be skipped");
        assert!(hops >= 1);
    }

    #[test]
    fn picked_worker_always_under_bound_when_one_exists() {
        let ring = ChBl::new(4, ChBlConfig { c: 1.0, vnodes: 32 });
        let loads = vec![50.0, 40.0, 60.0, 45.0];
        // mean = 48.75 = bound with c=1: workers 1 and 3 qualify.
        let (picked, _) = ring.pick("f-1", &loads);
        assert!(loads[picked] <= 48.75, "picked over-bound worker {picked}");
        // With c=1 some worker is always at or below the mean, so the
        // walk must always terminate on an under-bound worker.
        for seed in 0..32 {
            let (p, _) = ring.pick(&format!("g-{seed}"), &loads);
            assert!(loads[p] <= 48.75);
        }
    }

    #[test]
    fn bound_scales_with_mean_load() {
        let ring = ChBl::new(2, ChBlConfig { c: 1.2, vnodes: 32 });
        let fqdn = "f-1";
        let home = ring.home(fqdn);
        // Home at 3, other at 2: mean 2.5 → bound 3.0: home at the bound
        // stays (locality preserved under mild imbalance).
        let mut loads = vec![2.0, 2.0];
        loads[home] = 3.0;
        assert_eq!(ring.pick(fqdn, &loads).0, home);
        // Home hot (30) while the other idles (2): mean 16 → bound 19.2,
        // home is over and the invocation forwards.
        loads[home] = 30.0;
        loads[1 - home] = 2.0;
        assert_eq!(ring.pick(fqdn, &loads).0, 1 - home);
        // Same home load but the whole cluster busy: mean 29 → bound 34.8,
        // so the home is back under the (relative) bound and keeps the
        // function — the bound scales with mean load.
        loads[1 - home] = 28.0;
        assert_eq!(ring.pick(fqdn, &loads).0, home);
    }

    #[test]
    fn minimal_disruption_on_resize() {
        // Consistent hashing: adding a worker remaps only ~1/n of keys.
        let small = ChBl::new(8, ChBlConfig::default());
        let big = ChBl::new(9, ChBlConfig::default());
        let keys: Vec<String> = (0..2000).map(|i| format!("fn-{i}")).collect();
        let moved = keys
            .iter()
            .filter(|k| {
                let a = small.home(k);
                let b = big.home(k);
                a != b
            })
            .count();
        let frac = moved as f64 / keys.len() as f64;
        assert!(
            frac < 0.25,
            "adding 1 of 9 workers should move ~11% of keys, moved {frac}"
        );
    }
}
