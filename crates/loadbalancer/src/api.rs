//! The load balancer's HTTP front-end.
//!
//! Clients invoke through the balancer (`POST /invoke`), and operators
//! scrape it: a background task periodically polls every worker's status
//! and `/spans` distributions and merges them into one [`ClusterSnapshot`];
//! `GET /metrics` renders that snapshot — per-worker loads, dispatch
//! counters, and the cluster-wide Table-1 span histograms (merged
//! losslessly across workers) — in the Prometheus text format.
//!
//! Routes:
//!
//! | method & path   | body                   | response |
//! |-----------------|------------------------|----------|
//! | `POST /invoke`  | `{"fqdn":…, "args":…}` | `WireResult` JSON (+ `X-Iluvatar-Seq` header) |
//! | `GET  /status`  |                        | `LbStatus` JSON |
//! | `GET  /fleet`   |                        | `FleetStatus` JSON (elastic fleet only) |
//! | `GET  /metrics` |                        | Prometheus text |
//! | `GET  /breakdown` |                      | cluster-merged `BreakdownReport` JSON |
//! | `GET  /debug/flightrecorder` |           | the balancer's `FlightDump` JSON |
//!
//! The balancer runs its own [`TelemetryBus`] (source `lb`): dispatch,
//! reroute, breaker, membership, and fleet scale events all flow through
//! it into a flight recorder and a Prometheus counter bridge.

use crate::cluster::{Cluster, ClusterSnapshot, TenantClusterStats};
use crate::fleet::Fleet;
use crate::pull::{CompleteBody, CompleteReply, PullBody};
use iluvatar_cache::TenantCacheStats;
use iluvatar_core::api::WireResult;
use iluvatar_core::exposition::{render_span_histograms, PromWriter};
use iluvatar_core::InvokeError;
use iluvatar_dispatch::{DispatchMode, EnqueueError, PullPlane};
use iluvatar_http::server::Handler;
use iluvatar_http::{HttpServer, Method, Request, Response, Status, CACHE_HEADER, SEQ_HEADER};
use iluvatar_sync::{SystemClock, TaskPool};
use iluvatar_telemetry::{CounterBridge, FlightRecorder, TelemetryBus, TelemetrySink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

#[derive(Serialize, Deserialize)]
struct InvokeBody {
    fqdn: String,
    #[serde(default)]
    args: String,
    /// Tenant label; the `X-Iluvatar-Tenant` header takes precedence.
    #[serde(default)]
    tenant: Option<String>,
}

/// Wire form of the balancer's status.
#[derive(Debug, Serialize, Deserialize)]
pub struct LbStatus {
    pub workers: Vec<LbWorkerStatus>,
    pub forwarded: u64,
    /// Health-check evictions (healthy→unhealthy transitions).
    #[serde(default)]
    pub evictions: u64,
    /// Invocations re-dispatched after a worker failed mid-call.
    #[serde(default)]
    pub rerouted: u64,
    /// Cluster-wide per-tenant rollup (admission + LB counters).
    #[serde(default)]
    pub tenants: Vec<TenantClusterStats>,
    /// Pull-dispatch central queue depth per priority class (empty when no
    /// pull plane is attached) — the same signal the autoscale loop reads.
    #[serde(default)]
    pub pull_queues: Vec<PullQueueDepth>,
    /// Pull leases currently live (issued, neither completed nor expired).
    #[serde(default)]
    pub live_leases: u64,
}

/// One priority class's central-queue depth, as `/status` reports it.
#[derive(Debug, Serialize, Deserialize)]
pub struct PullQueueDepth {
    pub class: String,
    pub depth: u64,
}

/// One worker as the balancer sees it.
#[derive(Debug, Serialize, Deserialize)]
pub struct LbWorkerStatus {
    pub name: String,
    /// Normalized load; `-1` for an evicted worker (JSON has no infinity).
    pub load: f64,
    pub dispatched: u64,
    #[serde(default)]
    pub healthy: bool,
    /// Circuit breaker state: `closed`, `open`, or `half_open`.
    #[serde(default)]
    pub breaker: String,
    /// Whether the worker reported itself draining at the last scrape.
    #[serde(default)]
    pub draining: bool,
    /// Whether a worker currently occupies this slot (elastic fleets
    /// detach retired workers; their slots stay for accounting).
    #[serde(default)]
    pub present: bool,
}

fn status_of(snap: &ClusterSnapshot, dispatch: Option<&PullPlane>) -> LbStatus {
    LbStatus {
        workers: snap
            .workers
            .iter()
            .zip(snap.dispatched.iter())
            .enumerate()
            .map(|(i, ((name, load), &dispatched))| LbWorkerStatus {
                name: name.clone(),
                load: if load.is_finite() { *load } else { -1.0 },
                dispatched,
                healthy: snap.healthy.get(i).copied().unwrap_or(true),
                breaker: snap
                    .breaker
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| "closed".into()),
                draining: snap.draining.get(i).copied().unwrap_or(false),
                present: snap.present.get(i).copied().unwrap_or(true),
            })
            .collect(),
        forwarded: snap.forwarded,
        evictions: snap.evictions,
        rerouted: snap.rerouted,
        tenants: snap.tenants.clone(),
        pull_queues: dispatch
            .map(|p| {
                p.depths()
                    .into_iter()
                    .map(|(class, depth)| PullQueueDepth { class, depth })
                    .collect()
            })
            .unwrap_or_default(),
        live_leases: dispatch.map(|p| p.live_leases()).unwrap_or(0),
    }
}

fn render_metrics(
    snap: &ClusterSnapshot,
    served: u64,
    fleet: Option<&Fleet>,
    tel: &CounterBridge,
    cache: &[TenantCacheStats],
    dispatch: Option<&PullPlane>,
) -> String {
    let mut w = PromWriter::new();
    w.gauge(
        "iluvatar_lb_workers",
        "Workers in the cluster",
        &[],
        snap.workers.len() as f64,
    );
    for (i, ((name, load), dispatched)) in
        snap.workers.iter().zip(snap.dispatched.iter()).enumerate()
    {
        // Detached slots are bookkeeping, not workers: skip their gauges
        // (the dispatch counter below still renders — counters never drop).
        if !snap.present.get(i).copied().unwrap_or(true) {
            w.counter(
                "iluvatar_lb_dispatched_total",
                "Invocations dispatched to this worker",
                &[("worker", name)],
                *dispatched as f64,
            );
            continue;
        }
        w.gauge(
            "iluvatar_lb_worker_load",
            "Worker-reported normalized load at last scrape (-1 when evicted)",
            &[("worker", name)],
            if load.is_finite() { *load } else { -1.0 },
        );
        w.gauge(
            "iluvatar_lb_worker_healthy",
            "1 while the worker passes health checks, 0 after eviction",
            &[("worker", name)],
            if snap.healthy.get(i).copied().unwrap_or(true) {
                1.0
            } else {
                0.0
            },
        );
        w.gauge(
            "iluvatar_lb_worker_draining",
            "1 while the worker reports a draining/stopped lifecycle",
            &[("worker", name)],
            if snap.draining.get(i).copied().unwrap_or(false) {
                1.0
            } else {
                0.0
            },
        );
        let breaker = snap.breaker.get(i).map(String::as_str).unwrap_or("closed");
        let breaker_value = match breaker {
            "half_open" => 1.0,
            "open" => 2.0,
            _ => 0.0,
        };
        w.gauge(
            "iluvatar_lb_worker_breaker_open",
            "0 closed, 1 half-open, 2 open",
            &[("worker", name)],
            breaker_value,
        );
        w.gauge(
            "iluvatar_breaker_state",
            "Circuit breaker state per worker: 0 closed, 1 half-open, 2 open",
            &[("worker", name), ("state", breaker)],
            breaker_value,
        );
        w.counter(
            "iluvatar_lb_dispatched_total",
            "Invocations dispatched to this worker",
            &[("worker", name)],
            *dispatched as f64,
        );
    }
    w.counter(
        "iluvatar_lb_forwarded_total",
        "Invocations forwarded off their CH-BL home worker",
        &[],
        snap.forwarded as f64,
    );
    w.counter(
        "iluvatar_lb_worker_evictions_total",
        "Workers evicted by health checks or failed invocations",
        &[],
        snap.evictions as f64,
    );
    w.counter(
        "iluvatar_lb_rerouted_total",
        "Invocations re-dispatched to another worker after a failure",
        &[],
        snap.rerouted as f64,
    );
    for t in &snap.tenants {
        let labels: &[(&str, &str)] = &[("tenant", &t.tenant)];
        w.counter(
            "iluvatar_lb_tenant_dispatched_total",
            "Tenant invocations dispatched by the balancer",
            labels,
            t.lb_dispatched as f64,
        );
        w.counter(
            "iluvatar_lb_tenant_rerouted_total",
            "Tenant invocations re-routed after worker failures",
            labels,
            t.lb_rerouted as f64,
        );
        w.counter(
            "iluvatar_lb_tenant_admitted_total",
            "Tenant invocations admitted across workers",
            labels,
            t.admitted as f64,
        );
        w.counter(
            "iluvatar_lb_tenant_throttled_total",
            "Tenant invocations throttled across workers",
            labels,
            t.throttled as f64,
        );
        w.counter(
            "iluvatar_lb_tenant_shed_total",
            "Tenant invocations shed across workers",
            labels,
            t.shed as f64,
        );
        w.counter(
            "iluvatar_lb_tenant_served_total",
            "Tenant invocations completed across workers",
            labels,
            t.served as f64,
        );
    }
    // Balancer-side result cache: cluster totals plus per-tenant eviction
    // pressure (hard partitions make evictions a per-tenant signal).
    let (hits, misses, coalesced): (u64, u64, u64) =
        cache.iter().fold((0, 0, 0), |(h, m, c), t| {
            (h + t.hits, m + t.misses, c + t.coalesced)
        });
    w.counter(
        "iluvatar_cache_hits_total",
        "Invocations served from the balancer's result cache",
        &[("source", "lb")],
        hits as f64,
    );
    w.counter(
        "iluvatar_cache_misses_total",
        "Cache-eligible invocations that missed and were dispatched",
        &[("source", "lb")],
        misses as f64,
    );
    w.counter(
        "iluvatar_cache_coalesced_total",
        "Cache-eligible invocations that joined an identical in-flight dispatch (single-flight)",
        &[("source", "lb")],
        coalesced as f64,
    );
    for t in cache {
        w.counter(
            "iluvatar_cache_evictions_total",
            "Result-cache evictions (capacity pressure) per tenant",
            &[("source", "lb"), ("tenant", &t.tenant)],
            t.evictions as f64,
        );
    }
    if let Some(f) = fleet {
        w.counter(
            "iluvatar_warm_handoffs_total",
            "Warm-pool residency entries prewarmed onto survivors at scale-down",
            &[],
            f.handoffs() as f64,
        );
        w.gauge(
            "iluvatar_fleet_size",
            "Live (routable) workers in the elastic fleet",
            &[],
            f.live() as f64,
        );
        w.gauge(
            "iluvatar_fleet_draining",
            "Workers draining toward retirement",
            &[],
            f.draining() as f64,
        );
        w.counter(
            "iluvatar_fleet_stopped_total",
            "Workers retired (drained and detached) since start",
            &[],
            f.stopped() as f64,
        );
        for (direction, reason, count) in f.event_counts() {
            w.counter(
                "iluvatar_scale_events_total",
                "Applied scaling decisions by direction and reason",
                &[("direction", &direction), ("reason", &reason)],
                count as f64,
            );
        }
    }
    if let Some(p) = dispatch {
        for (class, depth) in p.depths() {
            w.gauge(
                "iluvatar_pull_queue_depth",
                "Pull-dispatch central queue depth per priority class",
                &[("class", &class)],
                depth as f64,
            );
        }
        w.gauge(
            "iluvatar_lease_live",
            "Pull leases currently live",
            &[],
            p.live_leases() as f64,
        );
        let c = p.counters();
        for (op, n) in [
            ("queued", c.queued),
            ("issued", c.issued),
            ("stolen", c.stolen),
            ("completed", c.completed),
            ("expired", c.expired),
            ("requeued", c.requeued),
            ("dead_completion", c.dead_completions),
        ] {
            w.counter(
                "iluvatar_lease_events_total",
                "Pull-dispatch lease transitions by op",
                &[("op", op)],
                n as f64,
            );
        }
    }
    w.counter(
        "iluvatar_lb_http_requests_total",
        "Requests served by the balancer API",
        &[],
        served as f64,
    );
    for (kind, tenant, count) in tel.counts() {
        let labels: Vec<(&str, &str)> = if tenant.is_empty() {
            vec![("source", "lb"), ("kind", &kind)]
        } else {
            vec![("source", "lb"), ("kind", &kind), ("tenant", &tenant)]
        };
        w.counter(
            "iluvatar_telemetry_events_total",
            "Canonical telemetry events by kind",
            &labels,
            count as f64,
        );
    }
    // Cluster-wide Table-1 histograms, merged across workers.
    render_span_histograms(&mut w, &[("scope", "cluster")], &snap.spans);
    w.finish()
}

/// Pull-mode `/invoke`: accept into the central queues (durable first when
/// a WAL is attached) and block until a worker's lease completes the task.
fn pull_invoke(plane: &PullPlane, fqdn: &str, args: &str, tenant: Option<&str>) -> Response {
    let started = std::time::Instant::now();
    let id = match plane.enqueue(fqdn, args, tenant) {
        Ok(id) => id,
        Err(e @ EnqueueError::NoWorkers) | Err(e @ EnqueueError::NotDurable) => {
            return json_resp(
                Status::SERVICE_UNAVAILABLE,
                format!("{{\"error\":{:?}}}", e.to_string()),
            );
        }
    };
    match plane.wait(id, PULL_INVOKE_TIMEOUT_MS) {
        Some(r) if r.ok => {
            let wire = WireResult {
                body: r.body,
                exec_ms: r.exec_ms,
                e2e_ms: started.elapsed().as_millis() as u64,
                cold: false,
                queue_ms: 0,
                trace_id: id,
                tenant: tenant.map(str::to_string),
            };
            json_resp(Status::OK, serde_json::to_string(&wire).unwrap())
        }
        Some(r) => json_resp(
            Status::INTERNAL_ERROR,
            format!("{{\"error\":{:?}}}", r.body),
        ),
        // The task stays queued and durable; only this caller's wait ends.
        None => json_resp(
            Status::SERVICE_UNAVAILABLE,
            "{\"error\":\"pull dispatch timed out\"}".into(),
        ),
    }
}

fn json_resp(status: Status, body: String) -> Response {
    Response::new(status)
        .with_header("Content-Type", "application/json")
        .with_body(body)
}

fn error_resp(e: &InvokeError) -> Response {
    let status = match e {
        InvokeError::NotRegistered(_) => Status::NOT_FOUND,
        InvokeError::QueueFull | InvokeError::NoResources => Status::TOO_MANY_REQUESTS,
        InvokeError::Backend(_) => Status::INTERNAL_ERROR,
        InvokeError::ShuttingDown | InvokeError::WalUnavailable => Status::SERVICE_UNAVAILABLE,
        InvokeError::Throttled(_) | InvokeError::Shed(_) => Status::TOO_MANY_REQUESTS,
    };
    json_resp(status, format!("{{\"error\":{:?}}}", e.to_string()))
}

/// Events the balancer's flight recorder keeps (dispatch churn is high, so
/// the LB ring is larger than a worker's).
const LB_FLIGHT_RECORDER_CAPACITY: usize = 512;

/// How long a pull-mode `/invoke` blocks for a worker to lease and finish
/// the task before the balancer gives up with a 503 (the task stays queued
/// and durable; only this caller's wait ends).
const PULL_INVOKE_TIMEOUT_MS: u64 = 30_000;

/// Cap on a single `/pull` long-poll so a worker's client timeout cannot
/// outlive the server's patience.
const PULL_WAIT_CAP_MS: u64 = 10_000;

/// The balancer's HTTP server plus its background scrape task (and, for
/// elastic fleets, the autoscale control loop).
pub struct LbApi {
    server: HttpServer,
    tasks: TaskPool,
    snapshot: Arc<Mutex<ClusterSnapshot>>,
    fleet: Option<Arc<Fleet>>,
    dispatch: Option<Arc<PullPlane>>,
    telemetry: Arc<TelemetryBus>,
    recorder: Arc<FlightRecorder>,
}

impl LbApi {
    /// Serve `cluster` on an ephemeral loopback port, rescraping every
    /// worker each `scrape_period`.
    pub fn serve(cluster: Arc<Cluster>, scrape_period: Duration) -> std::io::Result<Self> {
        Self::serve_with_fleet(cluster, scrape_period, None)
    }

    /// Serve an elastic cluster: same routes plus `GET /fleet`, with the
    /// autoscale control loop ticking every `autoscale.interval_ms`.
    pub fn serve_with_fleet(
        cluster: Arc<Cluster>,
        scrape_period: Duration,
        fleet: Option<Arc<Fleet>>,
    ) -> std::io::Result<Self> {
        Self::serve_with_dispatch(cluster, scrape_period, fleet, None)
    }

    /// Serve with a pull-dispatch plane attached: same routes plus
    /// `POST /pull` / `POST /pull/complete`, with `/invoke` routed by
    /// `dispatch.mode` (push = CH-BL as ever, pull = central queues,
    /// hybrid = warm-hit-likely pushes, the rest spills to pull).
    pub fn serve_with_dispatch(
        cluster: Arc<Cluster>,
        scrape_period: Duration,
        fleet: Option<Arc<Fleet>>,
        dispatch: Option<Arc<PullPlane>>,
    ) -> std::io::Result<Self> {
        // The balancer's own canonical telemetry stream: the cluster's
        // dispatch/reroute/breaker/membership events and the fleet's scale
        // events fan out to a flight recorder and a counter bridge.
        let telemetry = TelemetryBus::new("lb", SystemClock::shared());
        let recorder = Arc::new(FlightRecorder::new(LB_FLIGHT_RECORDER_CAPACITY));
        let tel_counts = Arc::new(CounterBridge::new());
        telemetry.add_sink(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
        telemetry.add_sink(Arc::clone(&tel_counts) as Arc<dyn TelemetrySink>);
        cluster.set_telemetry(Arc::clone(&telemetry));
        if let Some(f) = fleet.as_ref() {
            f.set_telemetry(Arc::clone(&telemetry));
        }
        if let Some(p) = dispatch.as_ref() {
            p.set_telemetry(Arc::clone(&telemetry));
            // Feed the central pull backlog into autoscale observations:
            // pull-mode demand lives in the plane, not worker queues.
            if let Some(f) = fleet.as_ref() {
                let plane = Arc::clone(p);
                f.set_pull_depth_provider(Box::new(move || plane.depth()));
            }
        }
        let snapshot = Arc::new(Mutex::new(cluster.scrape()));
        let tasks = TaskPool::new(if fleet.is_some() { 2 } else { 1 });
        {
            let cluster = Arc::clone(&cluster);
            let snapshot = Arc::clone(&snapshot);
            tasks.spawn_periodic("lb-scrape", scrape_period, move || {
                *snapshot.lock() = cluster.scrape();
            });
        }
        if let Some(f) = fleet.as_ref().filter(|f| f.config().enabled) {
            let f = Arc::clone(f);
            let interval = Duration::from_millis(f.config().interval_ms.max(10));
            let started = std::time::Instant::now();
            tasks.spawn_periodic("lb-autoscale", interval, move || {
                // Control-loop time is elapsed-since-start so the policy's
                // cooldown arithmetic sees small monotone values.
                let now_ms = started.elapsed().as_millis() as u64;
                if let Err(e) = f.tick(now_ms) {
                    eprintln!("autoscale tick failed: {e}");
                }
            });
        }
        let snap = Arc::clone(&snapshot);
        let fleet_for_handler = fleet.clone();
        let dispatch_for_handler = dispatch.clone();
        let tel_for_handler = Arc::clone(&tel_counts);
        let bus_for_handler = Arc::clone(&telemetry);
        let recorder_for_handler = Arc::clone(&recorder);
        let served = Arc::new(Mutex::new(None::<iluvatar_http::ServerHandle>));
        let served2 = Arc::clone(&served);
        let handler: Handler = Arc::new(move |req: Request| {
            let body = std::str::from_utf8(&req.body).unwrap_or("");
            match (req.method, req.path.as_str()) {
                (Method::Get, "/status") => json_resp(
                    Status::OK,
                    serde_json::to_string(&status_of(
                        &snap.lock(),
                        dispatch_for_handler.as_deref(),
                    ))
                    .unwrap(),
                ),
                (Method::Get, "/metrics") => {
                    let n = served2.lock().as_ref().map(|h| h.served()).unwrap_or(0);
                    Response::ok(render_metrics(
                        &snap.lock(),
                        n,
                        fleet_for_handler.as_deref(),
                        &tel_for_handler,
                        &cluster.cache_stats(),
                        dispatch_for_handler.as_deref(),
                    ))
                    .with_header("Content-Type", "text/plain; version=0.0.4")
                }
                (Method::Get, "/breakdown") => json_resp(
                    Status::OK,
                    serde_json::to_string(&cluster.breakdown()).unwrap(),
                ),
                (Method::Get, "/debug/flightrecorder") => json_resp(
                    Status::OK,
                    serde_json::to_string(&recorder_for_handler.wire_dump()).unwrap(),
                ),
                (Method::Get, "/fleet") => match &fleet_for_handler {
                    Some(f) => json_resp(Status::OK, serde_json::to_string(&f.status()).unwrap()),
                    None => json_resp(
                        Status::NOT_FOUND,
                        "{\"error\":\"no elastic fleet configured\"}".into(),
                    ),
                },
                (Method::Post, "/pull") => match (
                    serde_json::from_str::<PullBody>(body),
                    dispatch_for_handler.as_ref(),
                ) {
                    (Ok(b), Some(plane)) => {
                        let leases = if b.wait_ms > 0 {
                            plane.pull_wait(&b.worker, b.max, b.wait_ms.min(PULL_WAIT_CAP_MS))
                        } else {
                            plane.pull(&b.worker, b.max)
                        };
                        json_resp(Status::OK, serde_json::to_string(&leases).unwrap())
                    }
                    (_, None) => json_resp(
                        Status::NOT_FOUND,
                        "{\"error\":\"no pull-dispatch plane attached\"}".into(),
                    ),
                    (Err(e), _) => json_resp(
                        Status::BAD_REQUEST,
                        format!("{{\"error\":{:?}}}", e.to_string()),
                    ),
                },
                (Method::Post, "/pull/complete") => match (
                    serde_json::from_str::<CompleteBody>(body),
                    dispatch_for_handler.as_ref(),
                ) {
                    (Ok(b), Some(plane)) => {
                        let accepted = plane.complete(b.lease_id, b.ok, &b.body, b.exec_ms);
                        json_resp(
                            Status::OK,
                            serde_json::to_string(&CompleteReply { accepted }).unwrap(),
                        )
                    }
                    (_, None) => json_resp(
                        Status::NOT_FOUND,
                        "{\"error\":\"no pull-dispatch plane attached\"}".into(),
                    ),
                    (Err(e), _) => json_resp(
                        Status::BAD_REQUEST,
                        format!("{{\"error\":{:?}}}", e.to_string()),
                    ),
                },
                (Method::Post, "/invoke") => match serde_json::from_str::<InvokeBody>(body) {
                    Ok(b) => {
                        let tenant = req
                            .header(iluvatar_http::TENANT_HEADER)
                            .map(str::to_string)
                            .or(b.tenant);
                        // Feed the autoscaler's arrival counters.
                        if let Some(f) = &fleet_for_handler {
                            f.note_arrival(&b.fqdn);
                        }
                        // Route by dispatch mode: push stays on CH-BL, pull
                        // spills to the central queues, hybrid pushes only
                        // warm-hit-likely fqdns.
                        let via_pull = dispatch_for_handler
                            .as_ref()
                            .map(|p| match p.mode() {
                                DispatchMode::Push => false,
                                DispatchMode::Pull => true,
                                DispatchMode::Hybrid => p.warm_target(&b.fqdn).is_none(),
                            })
                            .unwrap_or(false);
                        let resp = if via_pull {
                            let plane = dispatch_for_handler.as_ref().expect("checked");
                            pull_invoke(plane, &b.fqdn, &b.args, tenant.as_deref())
                        } else {
                            match cluster.invoke_cached(&b.fqdn, &b.args, tenant.as_deref()) {
                                Ok((r, cache)) => {
                                    // Keep the hybrid warm signal alive for
                                    // fqdns the push path keeps serving.
                                    if let Some(p) = dispatch_for_handler
                                        .as_ref()
                                        .filter(|p| p.mode() == DispatchMode::Hybrid)
                                    {
                                        p.note_warm(&b.fqdn, "chbl");
                                    }
                                    let wire: WireResult = r.into();
                                    json_resp(Status::OK, serde_json::to_string(&wire).unwrap())
                                        .with_header(CACHE_HEADER, cache.as_str())
                                }
                                Err(e) => error_resp(&e),
                            }
                        };
                        // Propagate the latest balancer event seqno so callers
                        // can correlate responses with the telemetry stream.
                        resp.with_header(SEQ_HEADER, bus_for_handler.latest_seq().to_string())
                    }
                    Err(e) => json_resp(
                        Status::BAD_REQUEST,
                        format!("{{\"error\":{:?}}}", e.to_string()),
                    ),
                },
                _ => Response::new(Status::NOT_FOUND),
            }
        });
        let server = HttpServer::start(handler)?;
        *served.lock() = Some(server.handle());
        Ok(Self {
            server,
            tasks,
            snapshot,
            fleet,
            dispatch,
            telemetry,
            recorder,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The most recent cluster scrape.
    pub fn snapshot(&self) -> ClusterSnapshot {
        self.snapshot.lock().clone()
    }

    /// The elastic fleet, when one is attached.
    pub fn fleet(&self) -> Option<&Arc<Fleet>> {
        self.fleet.as_ref()
    }

    /// The pull-dispatch plane, when one is attached.
    pub fn dispatch(&self) -> Option<&Arc<PullPlane>> {
        self.dispatch.as_ref()
    }

    /// The balancer's canonical telemetry bus (source `lb`).
    pub fn telemetry(&self) -> &Arc<TelemetryBus> {
        &self.telemetry
    }

    /// The balancer's flight recorder (served at `/debug/flightrecorder`).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    pub fn shutdown(&mut self) {
        self.tasks.shutdown();
        self.server.shutdown();
    }
}

impl Drop for LbApi {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{LbPolicy, WorkerHandle};
    use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
    use iluvatar_core::config::WorkerConfig;
    use iluvatar_core::{FunctionSpec, Worker};
    use iluvatar_http::HttpClient;
    use iluvatar_sync::SystemClock;
    use std::time::Instant;

    fn live_worker(name: &str) -> Arc<Worker> {
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 0.02,
                ..Default::default()
            },
        ));
        let mut cfg = WorkerConfig::for_testing();
        cfg.name = name.to_string();
        Arc::new(Worker::new(cfg, backend, clock))
    }

    fn get(addr: SocketAddr, path: &str) -> Response {
        HttpClient::send(
            addr,
            &Request::new(Method::Get, path),
            Duration::from_secs(5),
        )
        .unwrap()
    }

    #[test]
    fn invoke_status_metrics_over_http() {
        let workers: Vec<Arc<dyn WorkerHandle>> = vec![live_worker("w0"), live_worker("w1")];
        let cluster = Arc::new(Cluster::new(workers, LbPolicy::RoundRobin));
        cluster
            .register_all(FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        let api = LbApi::serve(Arc::clone(&cluster), Duration::from_millis(25)).unwrap();

        // Invoke twice through the balancer: round-robin touches both workers.
        for _ in 0..2 {
            let body = serde_json::to_vec(&InvokeBody {
                fqdn: "f-1".into(),
                args: "{}".into(),
                tenant: None,
            })
            .unwrap();
            let resp = HttpClient::send(
                api.addr(),
                &Request::new(Method::Post, "/invoke").with_body(body),
                Duration::from_secs(10),
            )
            .unwrap();
            assert_eq!(resp.status, Status::OK, "body: {}", resp.body_str());
            let wire: WireResult = serde_json::from_str(resp.body_str()).unwrap();
            assert_ne!(wire.trace_id, 0, "trace id survives the LB hop");
            assert_eq!(
                resp.header(CACHE_HEADER),
                Some("bypass"),
                "no cache attached: every response is a bypass"
            );
        }

        // The periodic scraper merges both workers' spans into /metrics. Wait
        // until a scrape taken *after both* invocations lands: a scrape
        // between the two sees only one worker's call_container sample.
        let deadline = Instant::now() + Duration::from_secs(5);
        let text = loop {
            let text = get(api.addr(), "/metrics").body_str().to_string();
            let both_merged = api
                .snapshot()
                .spans
                .iter()
                .any(|s| s.name == "call_container" && s.count >= 2);
            if (text.contains("iluvatar_span_seconds_bucket") && both_merged)
                || Instant::now() > deadline
            {
                break text;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(text.contains("iluvatar_lb_workers 2"), "text:\n{text}");
        assert!(text.contains("iluvatar_lb_worker_load{worker=\"w0\"}"));
        assert!(text.contains("iluvatar_lb_dispatched_total{worker=\"w1\"} 1"));
        assert!(
            text.contains("iluvatar_span_seconds_bucket{scope=\"cluster\",span=\"call_container\""),
            "merged cluster histograms present:\n{text}"
        );
        assert!(text.contains("iluvatar_lb_http_requests_total"));

        // The merged call_container count covers both workers' invocations.
        let snap = api.snapshot();
        let call = snap
            .spans
            .iter()
            .find(|s| s.name == "call_container")
            .unwrap();
        assert_eq!(call.count, 2, "one invocation per worker merged");
        assert_eq!(call.hist.count(), 2);

        // /status mirrors the snapshot as JSON.
        let st: LbStatus = serde_json::from_str(get(api.addr(), "/status").body_str()).unwrap();
        assert_eq!(st.workers.len(), 2);
        assert_eq!(st.workers.iter().map(|w| w.dispatched).sum::<u64>(), 2);
    }

    #[test]
    fn cache_hit_skips_the_worker_over_http() {
        use iluvatar_cache::{CacheConfig, ResultCache};

        let workers: Vec<Arc<dyn WorkerHandle>> = vec![live_worker("w0")];
        let cluster = Arc::new(Cluster::new(workers, LbPolicy::RoundRobin));
        let cache = Arc::new(ResultCache::new(
            CacheConfig::enabled_default(),
            SystemClock::shared(),
        ));
        cluster.set_cache(cache);
        cluster
            .register_all(
                FunctionSpec::new("f", "1")
                    .with_timing(100, 400)
                    .with_idempotent(),
            )
            .unwrap();
        let api = LbApi::serve(Arc::clone(&cluster), Duration::from_millis(25)).unwrap();

        let body = serde_json::to_vec(&InvokeBody {
            fqdn: "f-1".into(),
            args: "{\"k\":1}".into(),
            tenant: None,
        })
        .unwrap();
        let send = || {
            HttpClient::send(
                api.addr(),
                &Request::new(Method::Post, "/invoke").with_body(body.clone()),
                Duration::from_secs(10),
            )
            .unwrap()
        };
        let first = send();
        assert_eq!(first.status, Status::OK, "body: {}", first.body_str());
        assert_eq!(first.header(CACHE_HEADER), Some("miss"));
        let second = send();
        assert_eq!(second.header(CACHE_HEADER), Some("hit"));
        let miss: WireResult = serde_json::from_str(first.body_str()).unwrap();
        let hit: WireResult = serde_json::from_str(second.body_str()).unwrap();
        assert_eq!(hit.body, miss.body, "served body is the cached body");
        assert_eq!(
            cluster.stats().dispatched.iter().sum::<u64>(),
            1,
            "the hit never reached a worker"
        );

        let text = get(api.addr(), "/metrics").body_str().to_string();
        assert!(
            text.contains("iluvatar_cache_hits_total{source=\"lb\"} 1"),
            "text:\n{text}"
        );
        assert!(text.contains("iluvatar_cache_misses_total{source=\"lb\"} 1"));
        assert!(text.contains("iluvatar_cache_evictions_total{source=\"lb\",tenant=\"default\"} 0"));
    }

    #[test]
    fn tenant_label_rides_the_lb_hop() {
        use crate::cluster::RemoteWorker;
        use iluvatar_core::api::WorkerApi;
        use iluvatar_core::{AdmissionConfig, TenantSpec};
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 0.02,
                ..Default::default()
            },
        ));
        let mut cfg = WorkerConfig::for_testing();
        cfg.admission =
            AdmissionConfig::enabled_with(vec![TenantSpec::new("free").with_rate(0.001, 1.0)]);
        let worker = Arc::new(Worker::new(cfg, backend, clock));
        let wapi = WorkerApi::serve(Arc::clone(&worker)).unwrap();
        let remote: Arc<dyn WorkerHandle> = Arc::new(RemoteWorker::connect(wapi.addr()));
        let cluster = Arc::new(Cluster::new(vec![remote], LbPolicy::RoundRobin));
        cluster
            .register_all(FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        let api = LbApi::serve(Arc::clone(&cluster), Duration::from_millis(25)).unwrap();

        let body = serde_json::to_vec(&InvokeBody {
            fqdn: "f-1".into(),
            args: "{}".into(),
            tenant: None,
        })
        .unwrap();
        let send = || {
            HttpClient::send(
                api.addr(),
                &Request::new(Method::Post, "/invoke")
                    .with_body(body.clone())
                    .with_header(iluvatar_http::TENANT_HEADER, "free"),
                Duration::from_secs(10),
            )
            .unwrap()
        };
        let resp = send();
        assert_eq!(resp.status.0, 200, "body: {}", resp.body_str());
        let wire: WireResult = serde_json::from_str(resp.body_str()).unwrap();
        assert_eq!(
            wire.tenant.as_deref(),
            Some("free"),
            "label survives LB→worker→result"
        );
        // The tenant's rate bucket is empty: the rejection propagates as a
        // 429 through both HTTP hops.
        let resp = send();
        assert_eq!(resp.status.0, 429, "body: {}", resp.body_str());
        assert!(
            resp.body_str().contains("throttled"),
            "body: {}",
            resp.body_str()
        );
        // The rollup lands in /status once a scrape observes the worker.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let st: LbStatus = serde_json::from_str(get(api.addr(), "/status").body_str()).unwrap();
            let free = st.tenants.iter().find(|t| t.tenant == "free");
            if free.map(|t| t.throttled == 1 && t.served == 1 && t.lb_dispatched == 2) == Some(true)
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "rollup never converged: {:?}",
                st.tenants
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // Per-tenant families render on the balancer's /metrics.
        let text = get(api.addr(), "/metrics").body_str().to_string();
        assert!(
            text.contains("iluvatar_lb_tenant_dispatched_total{tenant=\"free\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("iluvatar_lb_tenant_throttled_total{tenant=\"free\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn breakdown_and_flightrecorder_over_lb_http() {
        use iluvatar_core::BreakdownReport;
        use iluvatar_telemetry::FlightDump;

        let workers: Vec<Arc<dyn WorkerHandle>> = vec![live_worker("w0"), live_worker("w1")];
        let cluster = Arc::new(Cluster::new(workers, LbPolicy::RoundRobin));
        cluster
            .register_all(FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        let api = LbApi::serve(Arc::clone(&cluster), Duration::from_millis(25)).unwrap();

        for i in 0..4 {
            let body = serde_json::to_vec(&InvokeBody {
                fqdn: "f-1".into(),
                args: "{}".into(),
                tenant: Some("acme".into()),
            })
            .unwrap();
            let resp = HttpClient::send(
                api.addr(),
                &Request::new(Method::Post, "/invoke").with_body(body),
                Duration::from_secs(10),
            )
            .unwrap();
            assert_eq!(resp.status, Status::OK, "body: {}", resp.body_str());
            // Every invocation response carries the balancer's event seqno.
            let seq: u64 = resp.header(SEQ_HEADER).unwrap().parse().unwrap();
            assert!(seq > i, "seq {seq} after {} dispatches", i + 1);
        }

        // /breakdown merges both workers' reports into one cluster view.
        let resp = get(api.addr(), "/breakdown");
        assert_eq!(resp.status, Status::OK);
        let report: BreakdownReport = serde_json::from_str(resp.body_str()).unwrap();
        assert_eq!(report.source, "cluster");
        assert_eq!(report.invocations, 4, "two workers, four invocations");
        assert_eq!(report.cold + report.warm, 4);
        assert!(
            report.stages.iter().any(|s| s.count > 0),
            "stage histograms populated"
        );

        // The balancer's flight recorder holds the dispatch events.
        let resp = get(api.addr(), "/debug/flightrecorder");
        assert_eq!(resp.status, Status::OK);
        let dump: FlightDump = serde_json::from_str(resp.body_str()).unwrap();
        assert!(
            dump.events.iter().any(|e| e.kind.label() == "dispatch"),
            "dispatches recorded: {:?}",
            dump.events.len()
        );
        assert!(
            dump.events.iter().all(|e| e.source == "lb"),
            "one source per bus"
        );

        // The telemetry counter bridge renders on /metrics.
        let text = get(api.addr(), "/metrics").body_str().to_string();
        assert!(
            text.contains("iluvatar_telemetry_events_total{source=\"lb\",kind=\"dispatch\",tenant=\"acme\"} 4"),
            "text:\n{text}"
        );
    }

    #[test]
    fn scraped_span_percentiles_within_one_bucket_of_direct() {
        use iluvatar_core::{merge_span_exports, SpanExport};
        use iluvatar_sync::LogHistogram;

        // Two workers' raw span durations, kept for the direct computation.
        let samples_a: Vec<u64> = (0..500u64).map(|i| i * 97 + 13).collect();
        let samples_b: Vec<u64> = (0..500u64).map(|i| i * 131 + 7).collect();
        let export = |samples: &[u64]| {
            let mut hist = LogHistogram::new();
            for &v in samples {
                hist.record(v);
            }
            SpanExport {
                name: "call_container".into(),
                count: samples.len() as u64,
                total_us: samples.iter().sum(),
                hist,
            }
        };
        // The scrape hop: each export crosses worker → LB as JSON, exactly
        // as `GET /spans` does, then merges into the cluster view.
        let wire = |e: &SpanExport| -> SpanExport {
            serde_json::from_str(&serde_json::to_string(e).unwrap()).unwrap()
        };
        let merged = merge_span_exports(&[
            vec![wire(&export(&samples_a))],
            vec![wire(&export(&samples_b))],
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].count, 1000);

        let mut all: Vec<u64> = samples_a.iter().chain(&samples_b).copied().collect();
        all.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * all.len() as f64).ceil() as usize).max(1);
            let exact = all[rank - 1] as f64;
            let est = merged[0].hist.percentile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= LogHistogram::REL_ERROR,
                "p{q}: merged {est} vs direct {exact} (rel {rel})"
            );
        }
    }

    #[test]
    fn pull_mode_invoke_over_http_round_trips() {
        use crate::pull::HttpLeaseSource;
        use iluvatar_dispatch::{DispatchConfig, PullLoop, PullPlane, PullTask, TaskExecutor};

        let w0 = live_worker("w0");
        let w1 = live_worker("w1");
        let workers: Vec<Arc<dyn WorkerHandle>> = vec![Arc::clone(&w0) as _, Arc::clone(&w1) as _];
        let cluster = Arc::new(Cluster::new(workers, LbPolicy::RoundRobin));
        cluster
            .register_all(FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        let plane = Arc::new(PullPlane::new(
            DispatchConfig::pull(),
            SystemClock::shared(),
        ));
        plane.register_worker("w0");
        plane.register_worker("w1");
        let api = LbApi::serve_with_dispatch(
            Arc::clone(&cluster),
            Duration::from_millis(25),
            None,
            Some(Arc::clone(&plane)),
        )
        .unwrap();

        // Worker-side pull loops, leasing through the HTTP routes and
        // executing on the live workers.
        let spawn_loop = |name: &'static str, worker: Arc<Worker>| {
            let source = Arc::new(HttpLeaseSource::new(api.addr(), 200));
            let exec: Arc<TaskExecutor> = Arc::new(move |t: &PullTask| {
                match worker.invoke_tenant(&t.fqdn, &t.args, t.tenant.as_deref()) {
                    Ok(r) => (true, r.body, r.exec_ms),
                    Err(e) => (false, e.to_string(), 0),
                }
            });
            PullLoop::spawn(
                source as Arc<dyn iluvatar_dispatch::LeaseSource>,
                name.to_string(),
                2,
                Duration::from_millis(5),
                exec,
            )
        };
        let lp0 = spawn_loop("w0", w0);
        let lp1 = spawn_loop("w1", w1);

        for i in 0..3 {
            let body = serde_json::to_vec(&InvokeBody {
                fqdn: "f-1".into(),
                args: format!("{{\"k\":{i}}}"),
                tenant: Some("acme".into()),
            })
            .unwrap();
            let resp = HttpClient::send(
                api.addr(),
                &Request::new(Method::Post, "/invoke").with_body(body),
                Duration::from_secs(30),
            )
            .unwrap();
            assert_eq!(resp.status, Status::OK, "body: {}", resp.body_str());
            let wire: WireResult = serde_json::from_str(resp.body_str()).unwrap();
            assert_ne!(wire.trace_id, 0);
            assert_eq!(wire.tenant.as_deref(), Some("acme"));
        }
        lp0.stop();
        lp1.stop();

        let c = plane.counters();
        assert_eq!(c.queued, 3);
        assert_eq!(c.completed, 3);
        assert_eq!(plane.live_leases(), 0);
        assert_eq!(plane.depth(), 0);

        // /status exposes the pull-plane signal alongside the cluster view.
        let st: LbStatus = serde_json::from_str(get(api.addr(), "/status").body_str()).unwrap();
        assert_eq!(st.live_leases, 0);
        let classes: Vec<&str> = st.pull_queues.iter().map(|q| q.class.as_str()).collect();
        assert_eq!(classes, vec!["best_effort", "guaranteed"]);
        assert!(st.pull_queues.iter().all(|q| q.depth == 0));

        // Lease series land on /metrics.
        let text = get(api.addr(), "/metrics").body_str().to_string();
        assert!(
            text.contains("iluvatar_lease_events_total{op=\"completed\"} 3"),
            "text:\n{text}"
        );
        assert!(text.contains("iluvatar_pull_queue_depth{class=\"guaranteed\"} 0"));
        assert!(
            text.contains("iluvatar_telemetry_events_total{source=\"lb\",kind=\"lease:completed\",tenant=\"acme\"} 3"),
            "lease events flow through the balancer bus:\n{text}"
        );
    }

    #[test]
    fn invoke_unregistered_is_404_and_bad_body_400() {
        let workers: Vec<Arc<dyn WorkerHandle>> = vec![live_worker("w0")];
        let cluster = Arc::new(Cluster::new(workers, LbPolicy::LeastLoaded));
        let api = LbApi::serve(cluster, Duration::from_secs(60)).unwrap();
        let resp = HttpClient::send(
            api.addr(),
            &Request::new(Method::Post, "/invoke").with_body(&b"{\"fqdn\":\"ghost-1\"}"[..]),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resp.status.0, 404);
        let resp = HttpClient::send(
            api.addr(),
            &Request::new(Method::Post, "/invoke").with_body(&b"not json"[..]),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resp.status.0, 400);
        assert_eq!(get(api.addr(), "/nope").status.0, 404);
    }
}
