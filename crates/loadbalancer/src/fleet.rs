//! The fleet manager: applies scaling decisions to a live cluster.
//!
//! The [`iluvatar_autoscale`] policies are pure deciders — observation in,
//! decision out. The [`Fleet`] here owns everything stateful around them:
//! the live/draining/stopped worker registry, worker spawn on scale-up
//! (with every known [`FunctionSpec`] re-registered and admission through
//! the cluster's HalfOpen breaker probe), graceful drain on scale-down
//! (drain request, wait for in-flight work, then detach — never a kill),
//! the scale-event journal, and the counters behind
//! `iluvatar_fleet_size` / `iluvatar_scale_events_total{direction,reason}`.

use crate::cluster::{Cluster, WorkerHandle};
use iluvatar_autoscale::{
    AutoscaleConfig, FleetObservation, ScaleDirection, ScaleEvent, ScalingDecision, ScalingPolicy,
    VictimPolicyKind,
};
use iluvatar_containers::FunctionSpec;
use iluvatar_telemetry::{TelemetryBus, TelemetryKind};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Spawns workers for scale-up. `seq` is a monotonically increasing fleet
/// sequence number, for stable worker naming (`elastic-3`, …).
pub trait WorkerFactory: Send + Sync {
    fn spawn(&self, seq: usize) -> Result<Arc<dyn WorkerHandle>, String>;
}

impl<F> WorkerFactory for F
where
    F: Fn(usize) -> Result<Arc<dyn WorkerHandle>, String> + Send + Sync,
{
    fn spawn(&self, seq: usize) -> Result<Arc<dyn WorkerHandle>, String> {
        self(seq)
    }
}

/// A worker on its way out: drain requested, waiting for in-flight work.
struct DrainingSlot {
    slot: usize,
    /// When the drain was requested (injected clock, ms) — diagnostics.
    since_ms: u64,
}

/// Wire form of the fleet's state for `GET /fleet`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetStatus {
    pub policy: String,
    pub enabled: bool,
    /// Routable workers (attached, not draining).
    pub live: usize,
    /// Workers draining toward retirement.
    pub draining: usize,
    /// Workers retired so far (drained and detached).
    pub stopped: usize,
    /// Slot capacity (= `max_workers`).
    pub capacity: usize,
    pub min_workers: usize,
    pub max_workers: usize,
    /// Warm-pool handoffs: prewarm requests replayed from drain victims
    /// onto surviving workers.
    #[serde(default)]
    pub handoffs: u64,
    /// The applied-decision journal, oldest first.
    pub events: Vec<ScaleEvent>,
}

/// The elastic fleet: a cluster, a worker factory, and a scaling policy.
pub struct Fleet {
    cluster: Arc<Cluster>,
    factory: Box<dyn WorkerFactory>,
    policy: Mutex<Box<dyn ScalingPolicy>>,
    cfg: AutoscaleConfig,
    /// Every spec registered so far; scale-up replays them on the new
    /// worker before it joins the routable set.
    specs: Mutex<Vec<FunctionSpec>>,
    /// Monotonic spawn counter for worker naming.
    spawn_seq: AtomicU64,
    /// Slots whose drain was requested and not yet completed.
    draining: Mutex<Vec<DrainingSlot>>,
    /// Workers fully retired (drained + detached).
    stopped: AtomicU64,
    /// Warm-pool handoffs issued so far (prewarms replayed onto survivors).
    handoffs: AtomicU64,
    /// Applied decisions, oldest first.
    journal: Mutex<Vec<ScaleEvent>>,
    /// `(direction, reason) → count`, the metric behind
    /// `iluvatar_scale_events_total`. BTreeMap for stable render order.
    event_counts: Mutex<BTreeMap<(String, String), u64>>,
    /// Per-function arrivals since the last observation (fed by the LB's
    /// invoke path, drained each tick into the observation).
    arrivals: Mutex<BTreeMap<String, u64>>,
    /// Canonical telemetry stream: every journaled scale event is mirrored
    /// here once a bus is attached.
    telemetry: OnceLock<Arc<TelemetryBus>>,
    /// Central pull-queue depth sampler, set when a dispatch plane is
    /// attached. Push-mode fleets never set this, so observations carry 0
    /// and existing policy traces are unchanged.
    pull_depth: OnceLock<Box<dyn Fn() -> u64 + Send + Sync>>,
}

impl Fleet {
    pub fn new(
        cluster: Arc<Cluster>,
        factory: Box<dyn WorkerFactory>,
        cfg: AutoscaleConfig,
    ) -> Self {
        let policy = cfg.build_policy();
        let live = cluster.live();
        Self {
            cluster,
            factory,
            policy: Mutex::new(policy),
            cfg,
            specs: Mutex::new(Vec::new()),
            spawn_seq: AtomicU64::new(live as u64),
            draining: Mutex::new(Vec::new()),
            stopped: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
            journal: Mutex::new(Vec::new()),
            event_counts: Mutex::new(BTreeMap::new()),
            arrivals: Mutex::new(BTreeMap::new()),
            telemetry: OnceLock::new(),
            pull_depth: OnceLock::new(),
        }
    }

    /// Attach a sampler for the central pull-queue depth (the dispatch
    /// plane's backlog). First call wins. Once set, every observation
    /// carries the sampled depth so scale-up sees pull-mode demand and
    /// scale-down waits for the central queue to drain.
    pub fn set_pull_depth_provider(&self, f: Box<dyn Fn() -> u64 + Send + Sync>) {
        let _ = self.pull_depth.set(f);
    }

    /// Attach the canonical telemetry bus. First call wins; scale events
    /// journaled before any bus is attached are not mirrored.
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) {
        let _ = self.telemetry.set(bus);
    }

    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Remember `spec` for replay onto future workers (the caller is
    /// expected to have registered it on the current fleet already).
    pub fn remember_spec(&self, spec: FunctionSpec) {
        let mut specs = self.specs.lock();
        if !specs.iter().any(|s| s.fqdn == spec.fqdn) {
            specs.push(spec);
        }
    }

    /// Count one arrival of `fqdn` toward the next observation.
    pub fn note_arrival(&self, fqdn: &str) {
        *self.arrivals.lock().entry(fqdn.to_string()).or_default() += 1;
    }

    /// Routable workers: attached and not draining.
    pub fn live(&self) -> usize {
        let st = self.cluster.stats();
        st.present
            .iter()
            .zip(&st.draining)
            .filter(|&(&p, &d)| p && !d)
            .count()
    }

    /// Workers currently draining toward retirement.
    pub fn draining(&self) -> usize {
        self.draining.lock().len()
    }

    /// Workers retired so far.
    pub fn stopped(&self) -> u64 {
        self.stopped.load(Ordering::Relaxed)
    }

    /// Warm-pool handoffs issued so far.
    pub fn handoffs(&self) -> u64 {
        self.handoffs.load(Ordering::Relaxed)
    }

    /// Build one observation from live worker stats plus the arrival
    /// counters accumulated since the previous call (which it drains).
    pub fn observe(&self, now_ms: u64) -> FleetObservation {
        let st = self.cluster.stats();
        let mut live = 0usize;
        let mut queued = 0u64;
        let mut running = 0u64;
        let mut delay_sum = 0f64;
        let mut max_delay = 0u64;
        let mut concurrency_limit = 0usize;
        for i in 0..st.present.len() {
            if !st.present[i] || st.draining[i] {
                continue;
            }
            let Some(h) = self.cluster.handle(i) else {
                continue;
            };
            let s = h.stats();
            live += 1;
            queued += s.queue_len as u64;
            running += s.running as u64;
            delay_sum += s.queue_delay_ms as f64;
            max_delay = max_delay.max(s.queue_delay_ms);
            concurrency_limit = concurrency_limit.max(s.concurrency_limit);
        }
        let per_fn: Vec<(String, u64)> = std::mem::take(&mut *self.arrivals.lock())
            .into_iter()
            .collect();
        FleetObservation {
            now_ms,
            live,
            draining: self.draining.lock().len(),
            queued,
            running,
            mean_queue_delay_ms: if live > 0 {
                delay_sum / live as f64
            } else {
                0.0
            },
            max_queue_delay_ms: max_delay,
            concurrency_limit,
            arrivals: per_fn.iter().map(|(_, c)| c).sum(),
            per_fn_arrivals: per_fn,
            pull_queue_depth: self.pull_depth.get().map(|f| f()).unwrap_or(0),
        }
    }

    /// Run the configured policy over one observation.
    pub fn evaluate(&self, obs: &FleetObservation) -> ScalingDecision {
        self.policy.lock().evaluate(obs)
    }

    /// Apply one decision: spawn+attach on the way up, drain on the way
    /// down. Returns the journaled event, or `None` for holds and
    /// decisions that clamp to nothing (already at a bound).
    pub fn apply(
        &self,
        decision: &ScalingDecision,
        now_ms: u64,
    ) -> Result<Option<ScaleEvent>, String> {
        match *decision {
            ScalingDecision::Hold => Ok(None),
            ScalingDecision::ScaleUp { add, reason } => self.scale_up(add, reason, now_ms),
            ScalingDecision::ScaleDown { remove, reason } => {
                self.scale_down(remove, reason, now_ms)
            }
        }
    }

    fn journal_event(&self, e: ScaleEvent) {
        *self
            .event_counts
            .lock()
            .entry((e.direction.label().to_string(), e.reason.clone()))
            .or_default() += 1;
        if let Some(bus) = self.telemetry.get() {
            bus.emit(
                None,
                None,
                TelemetryKind::Scale {
                    direction: e.direction.label().to_string(),
                    reason: e.reason.clone(),
                    from: e.from as u64,
                    to: e.to as u64,
                },
            );
        }
        self.journal.lock().push(e);
    }

    fn scale_up(
        &self,
        add: usize,
        reason: &'static str,
        now_ms: u64,
    ) -> Result<Option<ScaleEvent>, String> {
        let before = self.live();
        // Clamp to the configured ceiling; draining workers do not count
        // against it — they are leaving.
        let room = self.cfg.max_workers.saturating_sub(before);
        let add = add.min(room);
        if add == 0 {
            return Ok(None);
        }
        let mut added = 0usize;
        for _ in 0..add {
            let seq = self.spawn_seq.fetch_add(1, Ordering::Relaxed) as usize;
            let worker = self.factory.spawn(seq)?;
            // Replay every known function before the worker becomes
            // routable, so its first dispatch never 404s.
            for spec in self.specs.lock().iter() {
                worker.register(spec.clone())?;
            }
            self.cluster.attach(worker)?;
            added += 1;
        }
        // New slots start unhealthy until their admission probe; run one
        // probe round now so the fleet change takes effect this interval.
        self.cluster.refresh_loads();
        let event = ScaleEvent {
            t_ms: now_ms,
            direction: ScaleDirection::Up,
            reason: reason.to_string(),
            from: before,
            to: before + added,
        };
        self.journal_event(event.clone());
        Ok(Some(event))
    }

    fn scale_down(
        &self,
        remove: usize,
        reason: &'static str,
        now_ms: u64,
    ) -> Result<Option<ScaleEvent>, String> {
        let before = self.live();
        let floor = self.cfg.min_workers.max(1);
        let remove = remove.min(before.saturating_sub(floor));
        if remove == 0 {
            return Ok(None);
        }
        let victims = self.pick_victims(remove);
        let mut drained = 0usize;
        for &slot in &victims {
            let Some(h) = self.cluster.handle(slot) else {
                continue;
            };
            // Warm-pool handoff: replay the victim's hottest functions onto
            // survivors *before* the drain, so the keep-alive investment
            // the fleet is about to forfeit is rebuilt where routing will
            // actually land.
            self.handoff_warm(&victims, &h);
            // Graceful drain: the worker finishes queued + running work and
            // 503s new arrivals; the cluster routes around it immediately.
            h.drain()?;
            self.cluster.mark_draining(slot);
            self.draining.lock().push(DrainingSlot {
                slot,
                since_ms: now_ms,
            });
            drained += 1;
        }
        if drained == 0 {
            return Ok(None);
        }
        let event = ScaleEvent {
            t_ms: now_ms,
            direction: ScaleDirection::Down,
            reason: reason.to_string(),
            from: before,
            to: before - drained,
        };
        self.journal_event(event.clone());
        Ok(Some(event))
    }

    /// Choose `remove` drain victims among the present, non-draining slots.
    ///
    /// `LeastWarm` (the default) retires the workers holding the least
    /// warm-container residency — the cheapest keep-alive investment to
    /// forfeit — with ties broken toward the highest slot index, so a
    /// fleet of residency-blind handles (every score zero) degrades to
    /// exactly the old LIFO order. `Lifo` skips the scoring entirely.
    fn pick_victims(&self, remove: usize) -> Vec<usize> {
        let st = self.cluster.stats();
        let candidates: Vec<usize> = (0..st.present.len())
            .filter(|&i| st.present[i] && !st.draining[i])
            .collect();
        match self.cfg.victim_policy {
            VictimPolicyKind::Lifo => candidates.into_iter().rev().take(remove).collect(),
            VictimPolicyKind::LeastWarm => {
                let mut scored: Vec<(f64, usize)> = candidates
                    .into_iter()
                    .map(|i| {
                        let gb_s: f64 = self
                            .cluster
                            .handle(i)
                            .map(|h| h.warm_profile().iter().map(|(_, g)| g).sum())
                            .unwrap_or(0.0);
                        (if gb_s.is_finite() { gb_s } else { 0.0 }, i)
                    })
                    .collect();
                scored.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.1.cmp(&a.1))
                });
                scored.into_iter().map(|(_, i)| i).take(remove).collect()
            }
        }
    }

    /// Replay the drain victim's hottest warm functions (top
    /// `handoff_top_k` by GB·s) as prewarms onto surviving workers.
    /// Targeting is residency-weighted: each prewarm lands on the survivor
    /// currently holding the least warm GB·s (ties → lowest slot index),
    /// and the handed-off function's weight is charged to its target, so a
    /// multi-function handoff spreads across a cold fleet instead of
    /// piling onto one slot. Best-effort: a failed prewarm is dropped, not
    /// retried — the survivor will cold-start as it would have anyway.
    fn handoff_warm(&self, victims: &[usize], victim: &Arc<dyn WorkerHandle>) {
        let st = self.cluster.stats();
        let survivors: Vec<usize> = (0..st.present.len())
            .filter(|&i| st.present[i] && !st.draining[i] && !victims.contains(&i))
            .collect();
        if survivors.is_empty() {
            return;
        }
        let mut profile = victim.warm_profile();
        profile.retain(|(_, g)| g.is_finite());
        // Hottest first; ties broken by fqdn so the handoff order is
        // deterministic.
        profile.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let top_k = self.cfg.effective_handoff_top_k();
        let mut load: Vec<(usize, f64)> = survivors
            .iter()
            .map(|&i| {
                let gb_s: f64 = self
                    .cluster
                    .handle(i)
                    .map(|h| {
                        h.warm_profile()
                            .iter()
                            .map(|(_, g)| g)
                            .filter(|g| g.is_finite())
                            .sum()
                    })
                    .unwrap_or(0.0);
                (i, gb_s)
            })
            .collect();
        for (fqdn, gb_s) in profile.into_iter().take(top_k) {
            // Unique minimum: (gb_s, slot) with strictly ordered slots, so
            // ties in residency resolve to the lowest slot index.
            let Some(target) = load.iter_mut().min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            }) else {
                return;
            };
            if let Some(s) = self.cluster.handle(target.0) {
                if s.prewarm(&fqdn).is_ok() {
                    self.handoffs.fetch_add(1, Ordering::Relaxed);
                    target.1 += gb_s.max(0.0);
                }
            }
        }
    }

    /// Detach every draining worker whose in-flight work has finished.
    /// Returns how many retired this pass. Workers are never killed: a
    /// slot stays attached — and its queued work keeps running — until the
    /// worker itself reports empty.
    pub fn reap(&self) -> usize {
        let mut draining = self.draining.lock();
        let mut retired = 0usize;
        draining.retain(|d| {
            let Some(h) = self.cluster.handle(d.slot) else {
                // Slot already vacated (e.g. operator detach); drop it.
                return false;
            };
            let s = h.stats();
            let idle = s.drain_pending == 0 && s.queue_len == 0 && s.running == 0;
            if idle {
                self.cluster.detach(d.slot);
                self.stopped.fetch_add(1, Ordering::Relaxed);
                retired += 1;
                let _ = d.since_ms;
                false
            } else {
                true
            }
        });
        retired
    }

    /// One control interval: reap finished drains, observe, evaluate,
    /// apply. Returns the applied event, if any.
    pub fn tick(&self, now_ms: u64) -> Result<Option<ScaleEvent>, String> {
        self.reap();
        let obs = self.observe(now_ms);
        let decision = self.evaluate(&obs);
        self.apply(&decision, now_ms)
    }

    /// The applied-decision journal, oldest first.
    pub fn events(&self) -> Vec<ScaleEvent> {
        self.journal.lock().clone()
    }

    /// `(direction, reason) → count` for the scale-events counter.
    pub fn event_counts(&self) -> Vec<(String, String, u64)> {
        self.event_counts
            .lock()
            .iter()
            .map(|((d, r), &c)| (d.clone(), r.clone(), c))
            .collect()
    }

    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            policy: self.policy.lock().name().to_string(),
            enabled: self.cfg.enabled,
            live: self.live(),
            draining: self.draining(),
            stopped: self.stopped() as usize,
            capacity: self.cluster.len(),
            min_workers: self.cfg.min_workers,
            max_workers: self.cfg.max_workers,
            handoffs: self.handoffs(),
            events: self.events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{BreakerConfig, HandleStats, LbPolicy, ProbeResult};
    use iluvatar_core::{InvocationResult, InvokeError};
    use parking_lot::RwLock;
    use std::sync::atomic::AtomicBool;

    /// A stub elastic worker: tracks registered specs, drain state, and a
    /// settable "busy" flag that keeps the reaper waiting.
    struct ElasticStub {
        name: String,
        specs: Mutex<Vec<String>>,
        draining: AtomicBool,
        busy: AtomicU64,
        load: RwLock<f64>,
        /// Settable warm residency profile for victim-selection tests.
        warm: Mutex<Vec<(String, f64)>>,
        /// Prewarm requests received (the handoff landing zone).
        prewarmed: Mutex<Vec<String>>,
    }

    impl ElasticStub {
        fn new(name: String) -> Arc<Self> {
            Arc::new(Self {
                name,
                specs: Mutex::new(Vec::new()),
                draining: AtomicBool::new(false),
                busy: AtomicU64::new(0),
                load: RwLock::new(0.1),
                warm: Mutex::new(Vec::new()),
                prewarmed: Mutex::new(Vec::new()),
            })
        }
    }

    impl WorkerHandle for ElasticStub {
        fn name(&self) -> String {
            self.name.clone()
        }

        fn load(&self) -> f64 {
            *self.load.read()
        }

        fn probe(&self) -> ProbeResult {
            ProbeResult {
                load: self.load(),
                draining: self.draining.load(Ordering::SeqCst),
            }
        }

        fn register(&self, spec: FunctionSpec) -> Result<(), String> {
            self.specs.lock().push(spec.fqdn.clone());
            Ok(())
        }

        fn invoke(&self, _fqdn: &str, _args: &str) -> Result<InvocationResult, InvokeError> {
            if self.draining.load(Ordering::SeqCst) {
                return Err(InvokeError::ShuttingDown);
            }
            Ok(InvocationResult {
                body: String::new(),
                exec_ms: 1,
                e2e_ms: 1,
                cold: false,
                queue_ms: 0,
                arrived_at: 0,
                trace_id: 0,
                tenant: None,
            })
        }

        fn stats(&self) -> HandleStats {
            HandleStats {
                running: self.busy.load(Ordering::SeqCst) as usize,
                drain_pending: self.busy.load(Ordering::SeqCst),
                lifecycle: if self.draining.load(Ordering::SeqCst) {
                    "draining".into()
                } else {
                    "running".into()
                },
                ..Default::default()
            }
        }

        fn drain(&self) -> Result<u64, String> {
            self.draining.store(true, Ordering::SeqCst);
            Ok(self.busy.load(Ordering::SeqCst))
        }

        fn warm_profile(&self) -> Vec<(String, f64)> {
            self.warm.lock().clone()
        }

        fn prewarm(&self, fqdn: &str) -> Result<(), String> {
            self.prewarmed.lock().push(fqdn.to_string());
            Ok(())
        }
    }

    type Spawned = Arc<Mutex<Vec<Arc<ElasticStub>>>>;

    fn fleet_of(cfg: AutoscaleConfig) -> (Arc<Cluster>, Fleet, Spawned) {
        let seed = ElasticStub::new("w0".into());
        let spawned: Spawned = Arc::new(Mutex::new(vec![Arc::clone(&seed)]));
        let cluster = Arc::new(Cluster::with_capacity(
            vec![seed as Arc<dyn WorkerHandle>],
            LbPolicy::RoundRobin,
            BreakerConfig::default(),
            cfg.max_workers,
        ));
        let record = Arc::clone(&spawned);
        let factory = move |seq: usize| {
            let w = ElasticStub::new(format!("elastic-{seq}"));
            record.lock().push(Arc::clone(&w));
            Ok(w as Arc<dyn WorkerHandle>)
        };
        let fleet = Fleet::new(Arc::clone(&cluster), Box::new(factory), cfg);
        (cluster, fleet, spawned)
    }

    fn cfg() -> AutoscaleConfig {
        let mut c = AutoscaleConfig::enabled_with(
            iluvatar_autoscale::ScalingPolicyKind::ReactiveQueueDelay,
        );
        c.max_workers = 4;
        c
    }

    #[test]
    fn scale_up_spawns_registers_and_admits() {
        let (cluster, fleet, spawned) = fleet_of(cfg());
        fleet.remember_spec(FunctionSpec::new("f", "1"));
        fleet.remember_spec(FunctionSpec::new("g", "1"));
        let e = fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 2,
                    reason: "test",
                },
                1_000,
            )
            .unwrap()
            .expect("event journaled");
        assert_eq!((e.from, e.to), (1, 3));
        assert_eq!(fleet.live(), 3);
        assert_eq!(cluster.live(), 3);
        // Every known spec was replayed on both new workers before attach.
        for w in spawned.lock().iter().skip(1) {
            assert_eq!(*w.specs.lock(), vec!["f-1".to_string(), "g-1".to_string()]);
        }
        // The admission probe ran inside apply: new workers are routable.
        let st = cluster.stats();
        assert!(st.healthy[1] && st.healthy[2]);
        assert_eq!(fleet.event_counts(), vec![("up".into(), "test".into(), 1)]);
    }

    #[test]
    fn scale_up_clamps_to_max_workers() {
        let (_cluster, fleet, _) = fleet_of(cfg());
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 10,
                    reason: "test",
                },
                0,
            )
            .unwrap()
            .unwrap();
        assert_eq!(fleet.live(), 4, "clamped to max_workers");
        let none = fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 1,
                    reason: "test",
                },
                1,
            )
            .unwrap();
        assert!(none.is_none(), "at the ceiling: nothing to journal");
    }

    #[test]
    fn scale_down_drains_waits_for_in_flight_then_detaches() {
        let (cluster, fleet, spawned) = fleet_of(cfg());
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 1,
                    reason: "test",
                },
                0,
            )
            .unwrap();
        assert_eq!(fleet.live(), 2);
        // The newest worker is mid-invocation when the drain lands.
        let victim = Arc::clone(spawned.lock().last().unwrap());
        victim.busy.store(3, Ordering::SeqCst);
        let e = fleet
            .apply(
                &ScalingDecision::ScaleDown {
                    remove: 1,
                    reason: "test",
                },
                5_000,
            )
            .unwrap()
            .unwrap();
        assert_eq!((e.from, e.to), (2, 1));
        assert!(
            victim.draining.load(Ordering::SeqCst),
            "drain requested, not kill"
        );
        assert_eq!(fleet.draining(), 1);
        // In-flight work still running: the reaper must wait.
        assert_eq!(fleet.reap(), 0);
        assert_eq!(cluster.live(), 2, "still attached while draining");
        // Work finishes; the next reap retires it.
        victim.busy.store(0, Ordering::SeqCst);
        assert_eq!(fleet.reap(), 1);
        assert_eq!(cluster.live(), 1);
        assert_eq!(fleet.stopped(), 1);
        assert_eq!(fleet.draining(), 0);
    }

    #[test]
    fn scale_down_never_below_min_workers() {
        let (_cluster, fleet, _) = fleet_of(cfg());
        let none = fleet
            .apply(
                &ScalingDecision::ScaleDown {
                    remove: 3,
                    reason: "test",
                },
                0,
            )
            .unwrap();
        assert!(none.is_none(), "one live worker, floor 1: no-op");
        assert_eq!(fleet.live(), 1);
    }

    #[test]
    fn observe_aggregates_and_drains_arrivals() {
        let (_cluster, fleet, spawned) = fleet_of(cfg());
        spawned.lock()[0].busy.store(2, Ordering::SeqCst);
        fleet.note_arrival("f-1");
        fleet.note_arrival("f-1");
        fleet.note_arrival("g-1");
        let obs = fleet.observe(1_234);
        assert_eq!(obs.now_ms, 1_234);
        assert_eq!(obs.live, 1);
        assert_eq!(obs.running, 2);
        assert_eq!(obs.arrivals, 3);
        assert_eq!(
            obs.per_fn_arrivals,
            vec![("f-1".to_string(), 2), ("g-1".to_string(), 1)],
            "sorted by fqdn"
        );
        // Arrivals reset after the observation consumed them.
        assert_eq!(fleet.observe(1_500).arrivals, 0);
    }

    #[test]
    fn status_reports_the_journal() {
        let (_cluster, fleet, _) = fleet_of(cfg());
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 1,
                    reason: "burst",
                },
                100,
            )
            .unwrap();
        let st = fleet.status();
        assert_eq!(st.policy, "reactive-queue-delay");
        assert_eq!(st.live, 2);
        assert_eq!(st.capacity, 4);
        assert_eq!(st.events.len(), 1);
        assert_eq!(st.events[0].reason, "burst");
        let json = serde_json::to_string(&st).unwrap();
        let back: FleetStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events.len(), 1);
    }

    #[test]
    fn lifo_fallback_drains_newest_even_when_warmest() {
        let mut c = cfg();
        c.victim_policy = iluvatar_autoscale::VictimPolicyKind::Lifo;
        let (_cluster, fleet, spawned) = fleet_of(c);
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 2,
                    reason: "test",
                },
                0,
            )
            .unwrap();
        // The newest worker carries the most warm residency; LIFO must
        // still pick it — this pins the pre-policy behaviour.
        let newest = Arc::clone(spawned.lock().last().unwrap());
        *newest.warm.lock() = vec![("hot-1".into(), 50.0)];
        fleet
            .apply(
                &ScalingDecision::ScaleDown {
                    remove: 1,
                    reason: "test",
                },
                100,
            )
            .unwrap();
        assert!(
            newest.draining.load(Ordering::SeqCst),
            "LIFO drains the newest regardless of warmth"
        );
    }

    #[test]
    fn least_warm_victim_preserves_hot_workers() {
        let (_cluster, fleet, spawned) = fleet_of(cfg());
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 2,
                    reason: "test",
                },
                0,
            )
            .unwrap();
        // Middle worker is stone cold; the newest is the warmest. LIFO
        // would kill the newest — least-warm must drain the middle one.
        let workers = spawned.lock().clone();
        *workers[0].warm.lock() = vec![("f-1".into(), 20.0)];
        *workers[2].warm.lock() = vec![("f-1".into(), 80.0)];
        fleet
            .apply(
                &ScalingDecision::ScaleDown {
                    remove: 1,
                    reason: "test",
                },
                100,
            )
            .unwrap();
        assert!(
            workers[1].draining.load(Ordering::SeqCst),
            "coldest worker drains first"
        );
        assert!(!workers[0].draining.load(Ordering::SeqCst));
        assert!(
            !workers[2].draining.load(Ordering::SeqCst),
            "warmest worker survives"
        );
    }

    #[test]
    fn scale_down_hands_warm_pool_to_survivors() {
        let (_cluster, fleet, spawned) = fleet_of(cfg());
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 1,
                    reason: "test",
                },
                0,
            )
            .unwrap();
        let workers = spawned.lock().clone();
        // Seed worker is far warmer, so the elastic worker is the victim;
        // its residency (hottest first) should land on the survivor.
        *workers[0].warm.lock() = vec![("big-1".into(), 100.0)];
        *workers[1].warm.lock() = vec![
            ("cold-1".into(), 1.0),
            ("hot-1".into(), 9.0),
            ("mid-1".into(), 4.0),
        ];
        fleet
            .apply(
                &ScalingDecision::ScaleDown {
                    remove: 1,
                    reason: "test",
                },
                100,
            )
            .unwrap();
        assert!(workers[1].draining.load(Ordering::SeqCst));
        assert_eq!(
            *workers[0].prewarmed.lock(),
            vec![
                "hot-1".to_string(),
                "mid-1".to_string(),
                "cold-1".to_string()
            ],
            "victim's residency prewarmed hottest-first on the survivor"
        );
        assert_eq!(fleet.handoffs(), 3);
        assert_eq!(fleet.status().handoffs, 3);
    }

    #[test]
    fn handoff_targets_are_residency_weighted() {
        let (_cluster, fleet, spawned) = fleet_of(cfg());
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 3,
                    reason: "test",
                },
                0,
            )
            .unwrap();
        let workers = spawned.lock().clone();
        // Slot 3 is the coldest in total → the drain victim. Slots 1 and 2
        // tie at 5 GB·s; slot 0 is far warmer and should receive nothing.
        *workers[0].warm.lock() = vec![("busy-1".into(), 50.0)];
        *workers[1].warm.lock() = vec![("busy-1".into(), 5.0)];
        *workers[2].warm.lock() = vec![("busy-1".into(), 5.0)];
        *workers[3].warm.lock() = vec![
            ("a-1".into(), 1.0),
            ("b-1".into(), 1.5),
            ("c-1".into(), 0.5),
        ];
        fleet
            .apply(
                &ScalingDecision::ScaleDown {
                    remove: 1,
                    reason: "test",
                },
                100,
            )
            .unwrap();
        assert!(workers[3].draining.load(Ordering::SeqCst));
        // Greedy argmin with per-assignment charging: b-1 (hottest) lands
        // on slot 1 (tie at 5 → lowest slot), a-1 on slot 2 (now the
        // least-loaded), c-1 on slot 2 again (6.0 < 6.5). Slot 0 never
        // receives — round-robin would have sent it the hottest function.
        assert_eq!(*workers[0].prewarmed.lock(), Vec::<String>::new());
        assert_eq!(*workers[1].prewarmed.lock(), vec!["b-1".to_string()]);
        assert_eq!(
            *workers[2].prewarmed.lock(),
            vec!["a-1".to_string(), "c-1".to_string()]
        );
        assert_eq!(fleet.handoffs(), 3);
    }

    #[test]
    fn scale_events_mirror_to_telemetry() {
        use iluvatar_sync::ManualClock;
        use iluvatar_telemetry::{TelemetrySink, VecSink};

        let (_cluster, fleet, _) = fleet_of(cfg());
        let bus = TelemetryBus::new("fleet", Arc::new(ManualClock::starting_at(7)));
        let sink = Arc::new(VecSink::new());
        bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        fleet.set_telemetry(bus);
        fleet
            .apply(
                &ScalingDecision::ScaleUp {
                    add: 2,
                    reason: "burst",
                },
                100,
            )
            .unwrap();
        fleet
            .apply(
                &ScalingDecision::ScaleDown {
                    remove: 1,
                    reason: "idle",
                },
                200,
            )
            .unwrap();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind.label(), "scale:up");
        assert_eq!(events[0].at_ms, 7, "stamped by the bus clock");
        match &events[1].kind {
            TelemetryKind::Scale {
                direction,
                reason,
                from,
                to,
            } => {
                assert_eq!(direction, "down");
                assert_eq!(reason, "idle");
                assert_eq!((*from, *to), (3, 2));
            }
            other => panic!("expected scale event, got {other:?}"),
        }
    }
}
