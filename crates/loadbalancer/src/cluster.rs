//! Cluster front-end: a load-balancing policy over worker handles.
//!
//! Membership is *elastic*: the cluster is built with a fixed slot
//! capacity (the autoscaler's `max_workers`), and workers [`attach`] to
//! and [`detach`] from slots at runtime. An attached worker is admitted
//! through the same HalfOpen breaker probe that re-admits a restarted
//! worker; a detached slot keeps its dispatch counters, last-known name,
//! and tenant cache so cluster accounting survives fleet churn.
//!
//! [`attach`]: Cluster::attach
//! [`detach`]: Cluster::detach

use crate::chbl::{ChBl, ChBlConfig};
use iluvatar_cache::{CacheLookup, CacheStatus, ResultCache, TenantCacheStats};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::{
    merge_span_exports, BreakdownReport, InvocationResult, InvokeError, SpanExport, TenantSnapshot,
    Worker,
};
use iluvatar_telemetry::{TelemetryBus, TelemetryKind};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How long a cache-eligible invocation waits behind an identical one
/// already dispatching before giving up and dispatching its own copy.
const SINGLE_FLIGHT_WAIT_MS: u64 = 10_000;

/// One health probe of a worker: its load plus whether it is draining.
/// Draining workers are routed around but not treated as failed — they are
/// finishing in-flight work and will either stop or return to service.
#[derive(Debug, Clone, Copy)]
pub struct ProbeResult {
    pub load: f64,
    pub draining: bool,
}

/// Queue/lifecycle detail one handle reports for fleet scaling decisions.
/// Everything defaults to zero for handles (test stubs) without the data.
#[derive(Debug, Clone, Default)]
pub struct HandleStats {
    pub queue_len: usize,
    pub running: usize,
    pub concurrency_limit: usize,
    /// Queue delay of the most recently dequeued invocation, ms.
    pub queue_delay_ms: u64,
    /// Invocations still to finish before a drain completes.
    pub drain_pending: u64,
    /// Lifecycle label: `running`, `draining`, or `stopped`.
    pub lifecycle: String,
    /// Total warm-container residency, GB·s — the fleet's least-warm
    /// victim-selection score. 0 for handles without a pool.
    pub warm_gb_s: f64,
}

/// Anything the balancer can dispatch to: a live worker or a test stub.
pub trait WorkerHandle: Send + Sync + 'static {
    fn name(&self) -> String;
    /// The queue-aware normalized load the worker reports (§4).
    fn load(&self) -> f64;
    /// Health probe: load plus lifecycle. The default derives it from
    /// [`load`](Self::load) and never reports draining.
    fn probe(&self) -> ProbeResult {
        ProbeResult {
            load: self.load(),
            draining: false,
        }
    }
    fn register(&self, spec: FunctionSpec) -> Result<(), String>;
    fn invoke(&self, fqdn: &str, args: &str) -> Result<InvocationResult, InvokeError>;
    /// Tenant-labelled invoke; handles without admission support drop the
    /// label and dispatch as usual.
    fn invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<InvocationResult, InvokeError> {
        let _ = tenant;
        self.invoke(fqdn, args)
    }
    /// Span distributions for cluster aggregation (§5). Handles without
    /// observability (test stubs) report none.
    fn span_export(&self) -> Vec<SpanExport> {
        Vec::new()
    }
    /// Per-tenant accounting; empty when admission control is disabled or
    /// the handle doesn't track tenants.
    fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        Vec::new()
    }
    /// The worker's critical-path breakdown, for the cluster-merged
    /// `GET /breakdown`. Handles without one (test stubs, unreachable
    /// workers) report `None`.
    fn breakdown(&self) -> Option<BreakdownReport> {
        None
    }
    /// Queue/lifecycle detail for the fleet manager's scaling signal.
    fn stats(&self) -> HandleStats {
        HandleStats::default()
    }
    /// Ask the worker to drain: finish in-flight work, reject new work.
    /// Returns the pending count at request time.
    fn drain(&self) -> Result<u64, String> {
        Ok(0)
    }
    /// The most recent `Retry-After` hint (ms) this handle received on a
    /// 503, telling the balancer how long to suppress re-probing. 0 when
    /// the worker never sent one.
    fn retry_after_hint_ms(&self) -> u64 {
        0
    }
    /// Prewarm a container for `fqdn` ahead of demand (the warm-handoff
    /// path on scale-down). Handles without a pool accept and ignore it.
    fn prewarm(&self, fqdn: &str) -> Result<(), String> {
        let _ = fqdn;
        Ok(())
    }
    /// Per-function warm residency `(fqdn, GB·s)`, hottest-agnostic order.
    /// Empty for handles without a pool — the fleet treats those as having
    /// nothing worth handing off.
    fn warm_profile(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// A remote worker reached over its HTTP API — the distributed deployment
/// mode. Status polls and invocations go over pooled connections.
pub struct RemoteWorker {
    client: iluvatar_core::api::WorkerApiClient,
    /// Last `Retry-After` (ms) parsed off a 503 response.
    retry_after_ms: AtomicU64,
}

impl RemoteWorker {
    pub fn connect(addr: std::net::SocketAddr) -> Self {
        Self {
            client: iluvatar_core::api::WorkerApiClient::new(addr),
            retry_after_ms: AtomicU64::new(0),
        }
    }
}

impl WorkerHandle for RemoteWorker {
    fn name(&self) -> String {
        self.client
            .status()
            .map(|s| s.name)
            .unwrap_or_else(|_| format!("remote@{}", self.client.addr()))
    }

    fn load(&self) -> f64 {
        // An unreachable worker reports infinite load so CH-BL routes
        // around it.
        self.client
            .status()
            .map(|s| s.normalized_load)
            .unwrap_or(f64::INFINITY)
    }

    fn probe(&self) -> ProbeResult {
        match self.client.status() {
            Ok(s) => ProbeResult {
                load: s.normalized_load,
                draining: matches!(s.lifecycle.as_str(), "draining" | "stopped"),
            },
            Err(_) => ProbeResult {
                load: f64::INFINITY,
                draining: false,
            },
        }
    }

    fn register(&self, spec: FunctionSpec) -> Result<(), String> {
        self.client.register(&spec).map_err(|e| e.to_string())
    }

    fn invoke(&self, fqdn: &str, args: &str) -> Result<InvocationResult, InvokeError> {
        self.invoke_tenant(fqdn, args, None)
    }

    fn invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<InvocationResult, InvokeError> {
        match self.client.invoke_tenant(fqdn, args, tenant) {
            Ok(r) => Ok(InvocationResult {
                body: r.body,
                exec_ms: r.exec_ms,
                e2e_ms: r.e2e_ms,
                cold: r.cold,
                queue_ms: r.queue_ms,
                arrived_at: 0,
                trace_id: r.trace_id,
                tenant: r.tenant,
            }),
            Err(iluvatar_core::api::ApiError::Status(404, _)) => {
                Err(InvokeError::NotRegistered(fqdn.to_string()))
            }
            Err(iluvatar_core::api::ApiError::Unavailable {
                retry_after_secs, ..
            }) => {
                // The worker is draining (or stopped): re-routable, but not
                // a failure — the balancer must not trip its breaker. Keep
                // the Retry-After hint so probes back off until it expires.
                self.retry_after_ms
                    .store(retry_after_secs * 1_000, Ordering::Relaxed);
                Err(InvokeError::ShuttingDown)
            }
            Err(iluvatar_core::api::ApiError::Status(429, body)) => {
                // Distinguish admission rejections from queue backpressure
                // so the LB does not reroute a policy decision.
                let t = tenant.unwrap_or(iluvatar_core::DEFAULT_TENANT).to_string();
                if body.contains("throttled") {
                    Err(InvokeError::Throttled(t))
                } else if body.contains("shed") {
                    Err(InvokeError::Shed(t))
                } else {
                    Err(InvokeError::QueueFull)
                }
            }
            Err(e) => Err(InvokeError::Backend(e.to_string())),
        }
    }

    fn span_export(&self) -> Vec<SpanExport> {
        // A momentarily unreachable worker contributes nothing this scrape.
        self.client.spans().unwrap_or_default()
    }

    fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        self.client.status().map(|s| s.tenants).unwrap_or_default()
    }

    fn breakdown(&self) -> Option<BreakdownReport> {
        self.client.breakdown().ok()
    }

    fn stats(&self) -> HandleStats {
        match self.client.status() {
            Ok(s) => HandleStats {
                queue_len: s.queue_len,
                running: s.running,
                concurrency_limit: s.concurrency_limit,
                queue_delay_ms: s.queue_delay_ms,
                drain_pending: s.drain_pending,
                lifecycle: s.lifecycle,
                warm_gb_s: s.warm_gb_s,
            },
            Err(_) => HandleStats::default(),
        }
    }

    fn drain(&self) -> Result<u64, String> {
        self.client.drain().map_err(|e| e.to_string())
    }

    fn retry_after_hint_ms(&self) -> u64 {
        self.retry_after_ms.load(Ordering::Relaxed)
    }

    fn prewarm(&self, fqdn: &str) -> Result<(), String> {
        self.client.prewarm(fqdn).map_err(|e| e.to_string())
    }

    fn warm_profile(&self) -> Vec<(String, f64)> {
        self.client
            .status()
            .map(|s| {
                s.warm_residency
                    .into_iter()
                    .map(|w| (w.fqdn, w.gb_s))
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl WorkerHandle for Worker {
    fn name(&self) -> String {
        self.status().name
    }

    fn load(&self) -> f64 {
        self.status().normalized_load
    }

    fn register(&self, spec: FunctionSpec) -> Result<(), String> {
        Worker::register(self, spec)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn invoke(&self, fqdn: &str, args: &str) -> Result<InvocationResult, InvokeError> {
        Worker::invoke(self, fqdn, args)
    }

    fn invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<InvocationResult, InvokeError> {
        Worker::invoke_tenant(self, fqdn, args, tenant)
    }

    fn probe(&self) -> ProbeResult {
        let s = self.status();
        ProbeResult {
            load: s.normalized_load,
            draining: s.lifecycle != "running",
        }
    }

    fn span_export(&self) -> Vec<SpanExport> {
        self.spans().export()
    }

    fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        Worker::tenant_stats(self)
    }

    fn breakdown(&self) -> Option<BreakdownReport> {
        Some(Worker::breakdown(self))
    }

    fn stats(&self) -> HandleStats {
        let s = self.status();
        HandleStats {
            queue_len: s.queue_len,
            running: s.running,
            concurrency_limit: s.concurrency_limit,
            queue_delay_ms: s.queue_delay_ms,
            drain_pending: s.drain_pending,
            lifecycle: s.lifecycle,
            warm_gb_s: s.warm_gb_s,
        }
    }

    fn drain(&self) -> Result<u64, String> {
        Worker::drain(self);
        Ok(self.status().drain_pending)
    }

    fn prewarm(&self, fqdn: &str) -> Result<(), String> {
        Worker::prewarm(self, fqdn).map_err(|e| e.to_string())
    }

    fn warm_profile(&self) -> Vec<(String, f64)> {
        self.warm_residency()
    }
}

/// Load-balancing policies; CH-BL is the paper's default.
pub enum LbPolicy {
    ChBl(ChBlConfig),
    RoundRobin,
    LeastLoaded,
}

enum PolicyState {
    ChBl(ChBl),
    RoundRobin(AtomicU64),
    LeastLoaded,
}

/// Per-worker circuit breaker configuration. The defaults (trip on the
/// first failure, probe immediately) reproduce the pre-breaker behaviour:
/// one failed call evicts, one healthy status poll readmits.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker Closed→Open.
    pub failure_threshold: u32,
    /// Minimum time an open breaker waits before a half-open probe.
    pub open_cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 1,
            open_cooldown_ms: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: dispatches flow; failures accumulate toward the threshold.
    Closed,
    /// Tripped: the worker looks infinitely loaded, no dispatches.
    Open,
    /// Cooldown elapsed: the next status poll decides (success → Closed,
    /// failure → Open again).
    HalfOpen,
}

impl BreakerState {
    fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

struct Breaker {
    state: BreakerState,
    failures: u32,
    opened_at: Option<Instant>,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            failures: 0,
            opened_at: None,
        }
    }

    /// The state a freshly attached (or re-attached) worker starts in:
    /// Open with an expired cooldown, so the very next probe round runs
    /// the HalfOpen admission check — the same path a restarted worker
    /// takes back into the cluster.
    fn awaiting_admission() -> Self {
        Self {
            state: BreakerState::Open,
            failures: 0,
            opened_at: None,
        }
    }
}

/// Per-worker dispatch counters.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    pub dispatched: Vec<u64>,
    pub forwarded: u64,
    /// Health-check evictions: breaker trips (Closed→Open edges).
    pub evictions: u64,
    /// Invocations re-dispatched to another worker after a worker failed.
    pub rerouted: u64,
    /// Current per-worker health (breaker Closed), cluster order.
    pub healthy: Vec<bool>,
    /// Per-worker breaker state labels, cluster order.
    pub breaker: Vec<String>,
    /// Per-worker draining flags, cluster order. A draining worker is
    /// routed around but stays healthy — it is not a failure.
    pub draining: Vec<bool>,
    /// Which slots currently hold a worker, cluster order.
    pub present: Vec<bool>,
}

/// Cluster-wide rollup for one tenant: admission counters merged across
/// workers plus the balancer's own dispatch accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantClusterStats {
    pub tenant: String,
    pub admitted: u64,
    pub throttled: u64,
    pub shed: u64,
    pub served: u64,
    /// Invocations the balancer dispatched for this tenant.
    pub lb_dispatched: u64,
    /// Tenant invocations re-routed after a worker failure.
    pub lb_rerouted: u64,
}

/// One scrape of the whole cluster: per-worker loads plus span histograms
/// merged across workers (lossless — see `LogHistogram::merge`).
#[derive(Debug, Clone, Default)]
pub struct ClusterSnapshot {
    /// (worker name, normalized load) per slot, cluster order. Detached
    /// slots keep their last-known name and report infinite load.
    pub workers: Vec<(String, f64)>,
    /// Cluster-wide span distributions, merged by span name.
    pub spans: Vec<SpanExport>,
    pub dispatched: Vec<u64>,
    pub forwarded: u64,
    pub evictions: u64,
    pub rerouted: u64,
    /// Current per-worker health, cluster order.
    pub healthy: Vec<bool>,
    /// Per-worker breaker state labels, cluster order.
    pub breaker: Vec<String>,
    /// Per-worker draining flags, cluster order.
    pub draining: Vec<bool>,
    /// Which slots currently hold a worker, cluster order.
    pub present: Vec<bool>,
    /// Per-tenant rollup, sorted by tenant id. Evicted workers contribute
    /// their last-known counters, so tenant accounting survives eviction.
    pub tenants: Vec<TenantClusterStats>,
}

/// The cluster: a policy over a capacity-bounded, elastic set of workers.
pub struct Cluster {
    /// Worker slots; `None` where no worker is attached. The capacity is
    /// fixed at construction (the CH-BL ring is built over it), membership
    /// within it is dynamic.
    slots: Vec<RwLock<Option<Arc<dyn WorkerHandle>>>>,
    /// Last-known worker name per slot (survives detach, for accounting).
    names: Vec<Mutex<String>>,
    present: Vec<AtomicBool>,
    policy: PolicyState,
    dispatched: Vec<AtomicU64>,
    forwarded: AtomicU64,
    /// Cached loads, refreshed on each dispatch (stateless balancer —
    /// loads come from worker status, not balancer bookkeeping).
    loads: Mutex<Vec<f64>>,
    /// Per-worker health view, derived from the breakers: `true` iff the
    /// breaker is Closed. Kept as atomics so the hot pick path reads it
    /// without taking the breaker locks.
    healthy: Vec<AtomicBool>,
    /// Per-worker circuit breakers. A worker is evicted (breaker opens)
    /// when its status poll fails or enough invocations die on it; after
    /// the cooldown a successful status poll re-closes the breaker.
    breakers: Vec<Mutex<Breaker>>,
    breaker_cfg: BreakerConfig,
    /// Per-worker draining flags, refreshed by probes and 503 responses.
    draining: Vec<AtomicBool>,
    /// Probe suppression deadline per slot: a draining worker that sent a
    /// `Retry-After` is not re-probed until the hint expires.
    probe_after: Vec<Mutex<Option<Instant>>>,
    evictions: AtomicU64,
    rerouted: AtomicU64,
    /// Balancer-side per-tenant (dispatched, rerouted) counters. These live
    /// here — not on the workers — so they survive worker eviction.
    tenant_lb: Mutex<HashMap<String, (u64, u64)>>,
    /// Last-known per-worker tenant snapshots; an unreachable worker keeps
    /// contributing its final counters to the cluster rollup.
    tenant_cache: Mutex<Vec<Vec<TenantSnapshot>>>,
    /// Canonical telemetry stream: dispatch/reroute/breaker/membership
    /// events fan out here once a bus is attached (the bus carries its own
    /// clock — the cluster itself is clockless).
    telemetry: OnceLock<Arc<TelemetryBus>>,
    /// Balancer-side invocation result cache: the cheapest invocation
    /// never reaches a worker. Absent (the default) every dispatch goes
    /// through; attach one with [`Cluster::set_cache`].
    cache: OnceLock<Arc<ResultCache>>,
}

impl Cluster {
    pub fn new(workers: Vec<Arc<dyn WorkerHandle>>, policy: LbPolicy) -> Self {
        Self::with_breaker(workers, policy, BreakerConfig::default())
    }

    pub fn with_breaker(
        workers: Vec<Arc<dyn WorkerHandle>>,
        policy: LbPolicy,
        breaker_cfg: BreakerConfig,
    ) -> Self {
        let cap = workers.len();
        Self::with_capacity(workers, policy, breaker_cfg, cap)
    }

    /// A cluster with `capacity` slots, the first `workers.len()` of them
    /// occupied. Extra slots start empty and are filled by
    /// [`Cluster::attach`] (the autoscaler's scale-up path).
    pub fn with_capacity(
        workers: Vec<Arc<dyn WorkerHandle>>,
        policy: LbPolicy,
        breaker_cfg: BreakerConfig,
        capacity: usize,
    ) -> Self {
        assert!(
            !workers.is_empty() || capacity > 0,
            "cluster needs at least one slot"
        );
        let n = capacity.max(workers.len());
        let policy = match policy {
            LbPolicy::ChBl(cfg) => PolicyState::ChBl(ChBl::new(n, cfg)),
            LbPolicy::RoundRobin => PolicyState::RoundRobin(AtomicU64::new(0)),
            LbPolicy::LeastLoaded => PolicyState::LeastLoaded,
        };
        let mut slots: Vec<RwLock<Option<Arc<dyn WorkerHandle>>>> = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let mut present = Vec::with_capacity(n);
        for (i, w) in workers.iter().enumerate() {
            names.push(Mutex::new(w.name()));
            slots.push(RwLock::new(Some(Arc::clone(w))));
            present.push(AtomicBool::new(true));
            let _ = i;
        }
        for i in workers.len()..n {
            names.push(Mutex::new(format!("slot-{i}")));
            slots.push(RwLock::new(None));
            present.push(AtomicBool::new(false));
        }
        Self {
            policy,
            dispatched: (0..n).map(|_| AtomicU64::new(0)).collect(),
            forwarded: AtomicU64::new(0),
            loads: Mutex::new(vec![0.0; n]),
            // Empty slots are unhealthy until a worker attaches and passes
            // its admission probe.
            healthy: (0..n).map(|i| AtomicBool::new(i < workers.len())).collect(),
            breakers: (0..n).map(|_| Mutex::new(Breaker::new())).collect(),
            breaker_cfg: BreakerConfig {
                failure_threshold: breaker_cfg.failure_threshold.max(1),
                ..breaker_cfg
            },
            draining: (0..n).map(|_| AtomicBool::new(false)).collect(),
            probe_after: (0..n).map(|_| Mutex::new(None)).collect(),
            evictions: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            tenant_lb: Mutex::new(HashMap::new()),
            tenant_cache: Mutex::new(vec![Vec::new(); n]),
            telemetry: OnceLock::new(),
            cache: OnceLock::new(),
            slots,
            names,
            present,
        }
    }

    /// Attach the canonical telemetry bus. First call wins; events emitted
    /// before any bus is attached are dropped.
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) {
        let _ = self.telemetry.set(bus);
    }

    /// Attach a balancer-side result cache (first call wins). Specs already
    /// registered through [`Cluster::register_all`] are not replayed into
    /// it — attach the cache before registering functions.
    pub fn set_cache(&self, cache: Arc<ResultCache>) {
        let _ = self.cache.set(cache);
    }

    /// Per-tenant result-cache counters; empty when no cache is attached.
    pub fn cache_stats(&self) -> Vec<TenantCacheStats> {
        self.cache.get().map(|c| c.stats()).unwrap_or_default()
    }

    fn tel(&self, tenant: Option<&str>, kind: TelemetryKind) {
        if let Some(bus) = self.telemetry.get() {
            bus.emit(None, tenant, kind);
        }
    }

    fn slot_name(&self, idx: usize) -> String {
        self.names
            .get(idx)
            .map(|n| n.lock().clone())
            .unwrap_or_else(|| format!("slot-{idx}"))
    }

    /// Slot capacity (the CH-BL ring size), not the live worker count —
    /// see [`Cluster::live`].
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Occupied slots.
    pub fn live(&self) -> usize {
        self.present
            .iter()
            .filter(|p| p.load(Ordering::Relaxed))
            .count()
    }

    /// The handle in slot `idx`, if any.
    pub fn handle(&self, idx: usize) -> Option<Arc<dyn WorkerHandle>> {
        self.slots.get(idx)?.read().clone()
    }

    /// Attach `worker` to the first free slot and schedule its admission:
    /// the slot starts unhealthy with its breaker Open-with-expired-
    /// cooldown, so the next probe round runs the standard HalfOpen
    /// re-admission check before any dispatch lands on it. Errors when
    /// every slot is occupied.
    pub fn attach(&self, worker: Arc<dyn WorkerHandle>) -> Result<usize, String> {
        for idx in 0..self.slots.len() {
            if self.present[idx]
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                *self.names[idx].lock() = worker.name();
                *self.slots[idx].write() = Some(worker);
                *self.breakers[idx].lock() = Breaker::awaiting_admission();
                self.healthy[idx].store(false, Ordering::Relaxed);
                self.draining[idx].store(false, Ordering::Relaxed);
                *self.probe_after[idx].lock() = None;
                self.tel(
                    None,
                    TelemetryKind::Membership {
                        target: self.slot_name(idx),
                        change: "attach".into(),
                    },
                );
                return Ok(idx);
            }
        }
        Err("cluster at capacity: no free slot".into())
    }

    /// Detach the worker in slot `idx`, freeing the slot. Dispatch
    /// counters, the last-known name, and the tenant cache stay behind so
    /// cluster accounting survives the retirement.
    pub fn detach(&self, idx: usize) -> Option<Arc<dyn WorkerHandle>> {
        let handle = self.slots.get(idx)?.write().take();
        if handle.is_some() {
            // Reconcile the tenant cache one final time before the handle
            // goes away: the retired worker's served counters must keep
            // contributing to the rollup.
            if let Some(h) = &handle {
                let mut cache = self.tenant_cache.lock();
                merge_tenant_cache(&mut cache[idx], h.tenant_stats());
            }
            self.present[idx].store(false, Ordering::SeqCst);
            self.healthy[idx].store(false, Ordering::Relaxed);
            self.draining[idx].store(false, Ordering::Relaxed);
            *self.probe_after[idx].lock() = None;
            *self.breakers[idx].lock() = Breaker::new();
            self.tel(
                None,
                TelemetryKind::Membership {
                    target: self.slot_name(idx),
                    change: "detach".into(),
                },
            );
        }
        handle
    }

    /// Flag slot `idx` as draining so routing avoids it immediately,
    /// without waiting for the next probe round.
    pub fn mark_draining(&self, idx: usize) {
        if idx < self.draining.len() {
            self.draining[idx].store(true, Ordering::Relaxed);
            // Stream the transition: the fleet model's drain-never-kill
            // invariant (a detach must be preceded by draining) is checked
            // from exactly this event.
            self.tel(
                None,
                TelemetryKind::Membership {
                    target: self.slot_name(idx),
                    change: "draining".into(),
                },
            );
        }
    }

    /// Register on every attached worker (functions can run anywhere).
    /// Re-registering an fqdn invalidates its balancer-cached results.
    pub fn register_all(&self, spec: FunctionSpec) -> Result<(), String> {
        if let Some(cache) = self.cache.get() {
            cache.note_spec(&spec);
        }
        for idx in 0..self.slots.len() {
            if let Some(w) = self.handle(idx) {
                w.register(spec.clone())?;
            }
        }
        Ok(())
    }

    /// A failure observed on worker `idx` (failed poll or dead invocation).
    /// Closed breakers accumulate toward the threshold and trip Open on the
    /// edge (counted as an eviction); a failed HalfOpen probe re-opens
    /// without counting again.
    fn record_failure(&self, idx: usize) {
        let mut b = self.breakers[idx].lock();
        match b.state {
            BreakerState::Closed => {
                b.failures += 1;
                if b.failures >= self.breaker_cfg.failure_threshold {
                    b.state = BreakerState::Open;
                    b.opened_at = Some(Instant::now());
                    self.healthy[idx].store(false, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.tel(
                        None,
                        TelemetryKind::Breaker {
                            target: self.slot_name(idx),
                            state: "open".into(),
                        },
                    );
                }
            }
            BreakerState::HalfOpen => {
                // A failed probe re-opens without re-counting the eviction,
                // but the transition still streams: the observable per-target
                // sequence stays a legal walk of the breaker machine.
                b.state = BreakerState::Open;
                b.opened_at = Some(Instant::now());
                self.tel(
                    None,
                    TelemetryKind::Breaker {
                        target: self.slot_name(idx),
                        state: "open".into(),
                    },
                );
            }
            BreakerState::Open => {}
        }
    }

    /// A successful probe: a HalfOpen breaker closes (readmission), a
    /// Closed one forgets accumulated failures.
    fn record_success(&self, idx: usize) {
        let mut b = self.breakers[idx].lock();
        if b.state != BreakerState::Closed {
            b.state = BreakerState::Closed;
            self.healthy[idx].store(true, Ordering::Relaxed);
            self.tel(
                None,
                TelemetryKind::Breaker {
                    target: self.slot_name(idx),
                    state: "closed".into(),
                },
            );
        }
        b.failures = 0;
        b.opened_at = None;
    }

    /// Advance an Open breaker to HalfOpen once its cooldown elapsed, and
    /// report whether worker `idx` should be probed this round.
    fn advance_breaker(&self, idx: usize) -> BreakerState {
        let mut b = self.breakers[idx].lock();
        if b.state == BreakerState::Open {
            let cooled = b
                .opened_at
                .map(|t| t.elapsed().as_millis() as u64 >= self.breaker_cfg.open_cooldown_ms)
                .unwrap_or(true);
            if cooled {
                b.state = BreakerState::HalfOpen;
                self.tel(
                    None,
                    TelemetryKind::Breaker {
                        target: self.slot_name(idx),
                        state: "half_open".into(),
                    },
                );
            }
        }
        b.state
    }

    /// Whether slot `idx` is inside a `Retry-After` suppression window.
    /// Clears the deadline once it expires.
    fn probe_suppressed(&self, idx: usize) -> bool {
        let mut until = self.probe_after[idx].lock();
        match *until {
            Some(t) if Instant::now() < t => true,
            Some(_) => {
                *until = None;
                false
            }
            None => false,
        }
    }

    pub(crate) fn refresh_loads(&self) -> Vec<f64> {
        let mut loads = vec![f64::INFINITY; self.slots.len()];
        for (i, l) in loads.iter_mut().enumerate() {
            let Some(w) = self.handle(i) else { continue };
            // Honour the worker's Retry-After: while the hint is live the
            // worker is still draining by its own word — don't waste a
            // probe on it, keep routing around.
            if self.probe_suppressed(i) {
                self.draining[i].store(true, Ordering::Relaxed);
                continue;
            }
            // Still cooling down: don't probe, keep routing around it.
            if self.advance_breaker(i) == BreakerState::Open {
                continue;
            }
            let p = w.probe();
            if !p.load.is_finite() {
                // The status poll failed: a breaker failure.
                self.record_failure(i);
            } else {
                // The worker answered. Draining is not a failure — it
                // closes the breaker but looks infinitely loaded so every
                // load-aware policy routes around it.
                self.record_success(i);
                self.draining[i].store(p.draining, Ordering::Relaxed);
                if !p.draining {
                    *l = p.load;
                }
            }
        }
        *self.loads.lock() = loads.clone();
        loads
    }

    /// Choose the worker for `fqdn` under the configured policy.
    pub fn pick(&self, fqdn: &str) -> usize {
        let n = self.slots.len();
        match &self.policy {
            PolicyState::ChBl(ring) => {
                let loads = self.refresh_loads();
                let (w, hops) = ring.pick(fqdn, &loads);
                if hops > 0 {
                    self.forwarded.fetch_add(1, Ordering::Relaxed);
                }
                w
            }
            PolicyState::RoundRobin(ctr) => {
                let mut choice = (ctr.fetch_add(1, Ordering::Relaxed) as usize) % n;
                // Skip evicted/empty slots; with none healthy, fall through
                // and let the invocation fail loudly rather than stall.
                for _ in 0..n {
                    if self.healthy[choice].load(Ordering::Relaxed)
                        && !self.draining[choice].load(Ordering::Relaxed)
                    {
                        break;
                    }
                    choice = (ctr.fetch_add(1, Ordering::Relaxed) as usize) % n;
                }
                choice
            }
            PolicyState::LeastLoaded => {
                let loads = self.refresh_loads();
                (0..loads.len())
                    .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap())
                    .unwrap()
            }
        }
    }

    /// Balance and invoke synchronously. A transport/backend failure evicts
    /// the worker and re-routes the invocation to the least-loaded healthy
    /// peer, so a worker dying mid-run loses no in-flight work at this
    /// layer — callers see an error only when every worker has failed.
    pub fn invoke(&self, fqdn: &str, args: &str) -> Result<InvocationResult, InvokeError> {
        self.invoke_tenant(fqdn, args, None)
    }

    /// Tenant-labelled dispatch. The balancing key includes the tenant so
    /// two tenants sharing a hot function land on different home workers
    /// (per-tenant locality), and the label rides the worker hop for
    /// admission control and accounting.
    pub fn invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<InvocationResult, InvokeError> {
        let w = match tenant {
            Some(t) => self.pick(&format!("{fqdn}@{t}")),
            None => self.pick(fqdn),
        };
        self.dispatched[w].fetch_add(1, Ordering::Relaxed);
        self.tel(
            tenant,
            TelemetryKind::Dispatch {
                target: self.slot_name(w),
            },
        );
        if let Some(t) = tenant {
            self.tenant_lb.lock().entry(t.to_string()).or_default().0 += 1;
        }
        let Some(handle) = self.handle(w) else {
            // The slot emptied between pick and dispatch (scale-down race):
            // not a worker failure, just reroute.
            return self.reroute(fqdn, args, tenant, w, InvokeError::ShuttingDown);
        };
        match handle.invoke_tenant(fqdn, args, tenant) {
            Err(InvokeError::Backend(e)) => {
                // The worker died mid-call: a breaker failure.
                self.record_failure(w);
                self.reroute(fqdn, args, tenant, w, InvokeError::Backend(e))
            }
            Err(InvokeError::ShuttingDown) => {
                // The worker is draining: route around it without tripping
                // the breaker — it is finishing work, not failing.
                self.note_draining(w, handle.retry_after_hint_ms());
                self.reroute(fqdn, args, tenant, w, InvokeError::ShuttingDown)
            }
            other => other,
        }
    }

    /// Tenant-labelled dispatch through the balancer-side result cache:
    /// consult before picking a worker, fill from the completed result on
    /// the way back. Without an attached cache every call is a `Bypass`
    /// around a plain [`Cluster::invoke_tenant`] — signature and behaviour
    /// of the uncached path are untouched. The returned [`CacheStatus`]
    /// feeds the `X-Iluvatar-Cache` response header.
    pub fn invoke_cached(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<(InvocationResult, CacheStatus), InvokeError> {
        let Some(cache) = self.cache.get() else {
            return Ok((self.invoke_tenant(fqdn, args, tenant)?, CacheStatus::Bypass));
        };
        // Single-flight: concurrent misses on one key coalesce behind the
        // first dispatcher instead of stampeding the workers; followers
        // block briefly and are served the leader's fill as a hit.
        match cache.lookup_single_flight(fqdn, tenant, args, SINGLE_FLIGHT_WAIT_MS) {
            CacheLookup::Hit(hit) => Ok((
                InvocationResult {
                    body: hit.body,
                    exec_ms: hit.exec_ms,
                    e2e_ms: 0,
                    cold: false,
                    queue_ms: 0,
                    arrived_at: 0,
                    trace_id: 0,
                    tenant: Some(hit.tenant),
                },
                CacheStatus::Hit,
            )),
            CacheLookup::Miss(key) => match self.invoke_tenant(fqdn, args, tenant) {
                Ok(r) => {
                    cache.fill(fqdn, tenant, args, &r.body, r.exec_ms, Some(r.trace_id));
                    // A rejected fill (oversized body) also releases the
                    // flight; this is belt and braces for followers.
                    cache.abandon(&key);
                    Ok((r, CacheStatus::Miss))
                }
                Err(e) => {
                    // Failed dispatches must hand flight leadership back,
                    // or followers wait out their whole budget.
                    cache.abandon(&key);
                    Err(e)
                }
            },
            CacheLookup::Bypass => {
                Ok((self.invoke_tenant(fqdn, args, tenant)?, CacheStatus::Bypass))
            }
        }
    }

    /// A 503 landed on slot `idx`: flag it draining and, when the worker
    /// sent a `Retry-After`, suppress probes until the hint expires.
    fn note_draining(&self, idx: usize, retry_after_ms: u64) {
        self.draining[idx].store(true, Ordering::Relaxed);
        self.tel(
            None,
            TelemetryKind::Membership {
                target: self.slot_name(idx),
                change: "draining".into(),
            },
        );
        if retry_after_ms > 0 {
            *self.probe_after[idx].lock() =
                Some(Instant::now() + Duration::from_millis(retry_after_ms));
        }
    }

    fn reroute(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
        failed: usize,
        first_err: InvokeError,
    ) -> Result<InvocationResult, InvokeError> {
        let mut err = first_err;
        let mut tried = vec![false; self.slots.len()];
        tried[failed] = true;
        loop {
            let loads = self.loads.lock().clone();
            let next = (0..self.slots.len())
                .filter(|&i| {
                    !tried[i]
                        && self.present[i].load(Ordering::Relaxed)
                        && self.healthy[i].load(Ordering::Relaxed)
                        && !self.draining[i].load(Ordering::Relaxed)
                })
                .min_by(|&a, &b| {
                    loads[a]
                        .partial_cmp(&loads[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let Some(i) = next else { return Err(err) };
            tried[i] = true;
            let Some(handle) = self.handle(i) else {
                continue;
            };
            self.rerouted.fetch_add(1, Ordering::Relaxed);
            self.dispatched[i].fetch_add(1, Ordering::Relaxed);
            self.tel(
                tenant,
                TelemetryKind::Reroute {
                    from: self.slot_name(failed),
                    to: self.slot_name(i),
                },
            );
            if let Some(t) = tenant {
                let mut lb = self.tenant_lb.lock();
                let e = lb.entry(t.to_string()).or_default();
                e.0 += 1;
                e.1 += 1;
            }
            match handle.invoke_tenant(fqdn, args, tenant) {
                Err(InvokeError::Backend(e)) => {
                    self.record_failure(i);
                    err = InvokeError::Backend(e);
                }
                Err(InvokeError::ShuttingDown) => {
                    self.note_draining(i, handle.retry_after_hint_ms());
                    err = InvokeError::ShuttingDown;
                }
                other => return other,
            }
        }
    }

    /// Merge every reachable worker's critical-path breakdown into one
    /// cluster-wide report (lossless histogram merges; unreachable workers
    /// are skipped).
    pub fn breakdown(&self) -> BreakdownReport {
        let reports: Vec<BreakdownReport> = (0..self.slots.len())
            .filter_map(|i| self.handle(i).and_then(|w| w.breakdown()))
            .collect();
        BreakdownReport::merge(&reports)
    }

    /// Merge per-worker tenant snapshots (last-known for unreachable
    /// workers) with the balancer's own per-tenant counters.
    pub fn tenant_rollup(&self) -> Vec<TenantClusterStats> {
        let mut cache = self.tenant_cache.lock();
        for i in 0..self.slots.len() {
            if let Some(w) = self.handle(i) {
                merge_tenant_cache(&mut cache[i], w.tenant_stats());
            }
        }
        let mut merged: HashMap<String, TenantClusterStats> = HashMap::new();
        for snap in cache.iter().flatten() {
            let e = merged
                .entry(snap.tenant.clone())
                .or_insert_with(|| TenantClusterStats {
                    tenant: snap.tenant.clone(),
                    ..Default::default()
                });
            e.admitted += snap.admitted;
            e.throttled += snap.throttled;
            e.shed += snap.shed;
            e.served += snap.served;
        }
        for (t, &(dispatched, rerouted)) in self.tenant_lb.lock().iter() {
            let e = merged
                .entry(t.clone())
                .or_insert_with(|| TenantClusterStats {
                    tenant: t.clone(),
                    ..Default::default()
                });
            e.lb_dispatched = dispatched;
            e.lb_rerouted = rerouted;
        }
        let mut out: Vec<TenantClusterStats> = merged.into_values().collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            dispatched: self
                .dispatched
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            healthy: self
                .healthy
                .iter()
                .map(|h| h.load(Ordering::Relaxed))
                .collect(),
            breaker: self
                .breakers
                .iter()
                .map(|b| b.lock().state.label().to_string())
                .collect(),
            draining: self
                .draining
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            present: self
                .present
                .iter()
                .map(|p| p.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Scrape every worker's status and span distributions and merge them
    /// into one cluster view (§5 aggregation).
    pub fn scrape(&self) -> ClusterSnapshot {
        // The scrape doubles as the periodic health check: refresh_loads
        // evicts workers whose status poll failed and readmits recovered
        // ones, so the LB's scrape task keeps the health view current even
        // when no invocations are flowing.
        let loads = self.refresh_loads();
        let workers: Vec<(String, f64)> = self
            .names
            .iter()
            .zip(&loads)
            .map(|(name, &l)| (name.lock().clone(), l))
            .collect();
        let sets: Vec<Vec<SpanExport>> = (0..self.slots.len())
            .map(|i| self.handle(i).map(|w| w.span_export()).unwrap_or_default())
            .collect();
        let st = self.stats();
        ClusterSnapshot {
            workers,
            spans: merge_span_exports(&sets),
            dispatched: st.dispatched,
            forwarded: st.forwarded,
            evictions: st.evictions,
            rerouted: st.rerouted,
            healthy: st.healthy,
            breaker: st.breaker,
            draining: st.draining,
            present: st.present,
            tenants: self.tenant_rollup(),
        }
    }
}

/// Fold a fresh tenant scrape into a worker's last-known cache, field-wise
/// monotonically. Counters on a worker only grow, so under normal operation
/// the fresh value wins; after a crash+recovery a restarted worker replays
/// its WAL and reports counters at-or-below the last scrape — taking the
/// max keeps the rollup from double-counting or regressing. An empty
/// scrape (unreachable worker) leaves the cache untouched.
fn merge_tenant_cache(cache: &mut Vec<TenantSnapshot>, fresh: Vec<TenantSnapshot>) {
    if fresh.is_empty() {
        return;
    }
    for f in fresh {
        match cache.iter_mut().find(|c| c.tenant == f.tenant) {
            Some(c) => {
                c.weight = f.weight;
                c.class = f.class;
                c.admitted = c.admitted.max(f.admitted);
                c.throttled = c.throttled.max(f.throttled);
                c.shed = c.shed.max(f.shed);
                c.served = c.served.max(f.served);
            }
            None => cache.push(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub worker with a settable load that records invocations.
    struct StubWorker {
        name: String,
        load: RwLock<f64>,
        calls: AtomicU64,
    }

    impl StubWorker {
        fn new(name: &str) -> Arc<Self> {
            Arc::new(Self {
                name: name.into(),
                load: RwLock::new(0.0),
                calls: AtomicU64::new(0),
            })
        }
    }

    impl WorkerHandle for StubWorker {
        fn name(&self) -> String {
            self.name.clone()
        }

        fn load(&self) -> f64 {
            *self.load.read()
        }

        fn register(&self, _spec: FunctionSpec) -> Result<(), String> {
            Ok(())
        }

        fn invoke(&self, _fqdn: &str, _args: &str) -> Result<InvocationResult, InvokeError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            Ok(InvocationResult {
                body: String::new(),
                exec_ms: 1,
                e2e_ms: 1,
                cold: false,
                queue_ms: 0,
                arrived_at: 0,
                trace_id: 0,
                tenant: None,
            })
        }

        fn tenant_stats(&self) -> Vec<TenantSnapshot> {
            vec![TenantSnapshot {
                tenant: "acme".into(),
                weight: 1.0,
                served: self.calls.load(Ordering::SeqCst),
                ..Default::default()
            }]
        }
    }

    fn stub_cluster(n: usize, policy: LbPolicy) -> (Vec<Arc<StubWorker>>, Cluster) {
        let stubs: Vec<Arc<StubWorker>> =
            (0..n).map(|i| StubWorker::new(&format!("w{i}"))).collect();
        let handles: Vec<Arc<dyn WorkerHandle>> = stubs
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn WorkerHandle>)
            .collect();
        (stubs, Cluster::new(handles, policy))
    }

    #[test]
    fn round_robin_cycles() {
        let (stubs, cluster) = stub_cluster(3, LbPolicy::RoundRobin);
        for _ in 0..9 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        for s in &stubs {
            assert_eq!(s.calls.load(Ordering::SeqCst), 3);
        }
    }

    #[test]
    fn least_loaded_prefers_idle() {
        let (stubs, cluster) = stub_cluster(3, LbPolicy::LeastLoaded);
        *stubs[0].load.write() = 5.0;
        *stubs[1].load.write() = 0.1;
        *stubs[2].load.write() = 3.0;
        for _ in 0..4 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        assert_eq!(stubs[1].calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn chbl_is_sticky_until_overload() {
        let (stubs, cluster) = stub_cluster(4, LbPolicy::ChBl(ChBlConfig::default()));
        // Low load: all invocations of one function land on one worker.
        for _ in 0..10 {
            cluster.invoke("sticky-1", "{}").unwrap();
        }
        let with_calls: Vec<_> = stubs
            .iter()
            .filter(|s| s.calls.load(Ordering::SeqCst) > 0)
            .collect();
        assert_eq!(with_calls.len(), 1, "locality: one home worker");
        let home_idx = stubs
            .iter()
            .position(|s| s.calls.load(Ordering::SeqCst) > 0)
            .unwrap();
        assert_eq!(cluster.stats().forwarded, 0);
        // Overload the home: next invocation forwards.
        *stubs[home_idx].load.write() = 1_000.0;
        cluster.invoke("sticky-1", "{}").unwrap();
        assert_eq!(
            stubs[home_idx].calls.load(Ordering::SeqCst),
            10,
            "overloaded home skipped"
        );
        assert_eq!(cluster.stats().forwarded, 1);
    }

    #[test]
    fn register_all_propagates() {
        let (_stubs, cluster) = stub_cluster(3, LbPolicy::RoundRobin);
        cluster.register_all(FunctionSpec::new("f", "1")).unwrap();
        assert_eq!(cluster.len(), 3);
    }

    #[test]
    fn stats_count_dispatches() {
        let (_stubs, cluster) = stub_cluster(2, LbPolicy::RoundRobin);
        for _ in 0..5 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        let st = cluster.stats();
        assert_eq!(st.dispatched.iter().sum::<u64>(), 5);
    }

    #[test]
    fn tenant_rollup_merges_workers_and_lb_counters() {
        let (stubs, cluster) = stub_cluster(2, LbPolicy::RoundRobin);
        for _ in 0..4 {
            cluster.invoke_tenant("f-1", "{}", Some("acme")).unwrap();
        }
        cluster.invoke("f-1", "{}").unwrap(); // unlabelled: no tenant counter
        let roll = cluster.tenant_rollup();
        let acme = roll.iter().find(|t| t.tenant == "acme").unwrap();
        assert_eq!(acme.lb_dispatched, 4);
        assert_eq!(acme.lb_rerouted, 0);
        // Worker-side served counts merged across both stubs (5 calls total).
        assert_eq!(acme.served, 5);
        assert_eq!(stubs.len(), 2);
        // Snapshot carries the same rollup.
        let snap = cluster.scrape();
        assert_eq!(snap.tenants, roll);
    }

    #[test]
    fn tenant_key_separates_home_workers() {
        // With CH-BL, the same function under different tenants may hash to
        // different homes; at minimum the dispatch must stay deterministic
        // per (fqdn, tenant) pair under low load.
        let (stubs, cluster) = stub_cluster(4, LbPolicy::ChBl(ChBlConfig::default()));
        for _ in 0..6 {
            cluster.invoke_tenant("pin-1", "{}", Some("t1")).unwrap();
        }
        let homes: Vec<u64> = stubs
            .iter()
            .map(|s| s.calls.load(Ordering::SeqCst))
            .collect();
        assert_eq!(homes.iter().sum::<u64>(), 6);
        assert_eq!(
            homes.iter().filter(|&&c| c > 0).count(),
            1,
            "sticky per tenant: {homes:?}"
        );
    }

    /// A stub whose invocations can be failed and whose probe reports a
    /// settable draining flag.
    struct FlakyWorker {
        name: String,
        fail: AtomicBool,
        draining: AtomicBool,
        retry_after_ms: AtomicU64,
        calls: AtomicU64,
        probes: AtomicU64,
    }

    impl FlakyWorker {
        fn new(name: &str) -> Arc<Self> {
            Arc::new(Self {
                name: name.into(),
                fail: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                retry_after_ms: AtomicU64::new(0),
                calls: AtomicU64::new(0),
                probes: AtomicU64::new(0),
            })
        }
    }

    impl WorkerHandle for FlakyWorker {
        fn name(&self) -> String {
            self.name.clone()
        }

        fn load(&self) -> f64 {
            if self.fail.load(Ordering::SeqCst) {
                f64::INFINITY
            } else {
                0.1
            }
        }

        fn probe(&self) -> ProbeResult {
            self.probes.fetch_add(1, Ordering::SeqCst);
            ProbeResult {
                load: self.load(),
                draining: self.draining.load(Ordering::SeqCst),
            }
        }

        fn register(&self, _spec: FunctionSpec) -> Result<(), String> {
            Ok(())
        }

        fn invoke(&self, _fqdn: &str, _args: &str) -> Result<InvocationResult, InvokeError> {
            if self.draining.load(Ordering::SeqCst) {
                return Err(InvokeError::ShuttingDown);
            }
            if self.fail.load(Ordering::SeqCst) {
                return Err(InvokeError::Backend("dead".into()));
            }
            self.calls.fetch_add(1, Ordering::SeqCst);
            Ok(InvocationResult {
                body: String::new(),
                exec_ms: 1,
                e2e_ms: 1,
                cold: false,
                queue_ms: 0,
                arrived_at: 0,
                trace_id: 0,
                tenant: None,
            })
        }

        fn retry_after_hint_ms(&self) -> u64 {
            self.retry_after_ms.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_readmits_via_half_open() {
        let flaky = FlakyWorker::new("w0");
        let ok = FlakyWorker::new("w1");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![
            Arc::clone(&flaky) as Arc<dyn WorkerHandle>,
            Arc::clone(&ok) as Arc<dyn WorkerHandle>,
        ];
        let cluster = Cluster::with_breaker(
            handles,
            LbPolicy::RoundRobin,
            BreakerConfig {
                failure_threshold: 2,
                open_cooldown_ms: 30,
            },
        );
        // One failure: under the threshold, the breaker stays closed.
        flaky.fail.store(true, Ordering::SeqCst);
        cluster.invoke("f-1", "{}").unwrap();
        let st = cluster.stats();
        assert_eq!(st.evictions, 0, "first failure stays under threshold");
        assert_eq!(st.breaker[0], "closed");
        assert!(st.healthy[0]);
        // Second failure trips it: Closed→Open, one eviction edge.
        cluster.invoke("f-1", "{}").unwrap();
        cluster.invoke("f-1", "{}").unwrap();
        let st = cluster.stats();
        assert_eq!(st.evictions, 1, "threshold reached: one trip");
        assert_eq!(st.breaker[0], "open");
        assert!(!st.healthy[0]);
        // The worker recovers, but the cooldown hasn't elapsed: the scrape
        // must not probe it back in yet.
        flaky.fail.store(false, Ordering::SeqCst);
        cluster.refresh_loads();
        assert_eq!(cluster.stats().breaker[0], "open", "still cooling down");
        // After the cooldown the next scrape goes HalfOpen and the
        // successful probe re-closes the breaker.
        std::thread::sleep(std::time::Duration::from_millis(40));
        cluster.refresh_loads();
        let st = cluster.stats();
        assert_eq!(st.breaker[0], "closed", "probe readmitted the worker");
        assert!(st.healthy[0]);
        assert_eq!(st.evictions, 1, "readmission costs no eviction edge");
    }

    #[test]
    fn half_open_probe_failure_reopens_without_recounting() {
        let flaky = FlakyWorker::new("w0");
        let ok = FlakyWorker::new("w1");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![
            Arc::clone(&flaky) as Arc<dyn WorkerHandle>,
            Arc::clone(&ok) as Arc<dyn WorkerHandle>,
        ];
        let cluster = Cluster::with_breaker(
            handles,
            LbPolicy::RoundRobin,
            BreakerConfig::default(), // trip on first failure, probe at once
        );
        flaky.fail.store(true, Ordering::SeqCst);
        cluster.invoke("f-1", "{}").unwrap();
        assert_eq!(cluster.stats().evictions, 1);
        // Repeated failing probes bounce HalfOpen→Open without new edges.
        for _ in 0..3 {
            cluster.refresh_loads();
        }
        let st = cluster.stats();
        assert_eq!(st.evictions, 1, "re-opening is not a new eviction");
        assert!(!st.healthy[0]);
    }

    #[test]
    fn draining_worker_is_routed_around_without_eviction() {
        let draining = FlakyWorker::new("w0");
        let ok = FlakyWorker::new("w1");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![
            Arc::clone(&draining) as Arc<dyn WorkerHandle>,
            Arc::clone(&ok) as Arc<dyn WorkerHandle>,
        ];
        let cluster = Cluster::new(handles, LbPolicy::RoundRobin);
        draining.draining.store(true, Ordering::SeqCst);
        // Every invocation lands on the healthy worker: round-robin picks
        // w0 half the time, gets 503, and reroutes without tripping.
        for _ in 0..6 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        assert_eq!(ok.calls.load(Ordering::SeqCst), 6, "all served by w1");
        let st = cluster.stats();
        assert_eq!(st.evictions, 0, "draining is not a failure");
        assert!(st.healthy[0], "draining worker stays healthy");
        assert!(st.draining[0], "but is flagged draining");
        // A scrape after the drain ends clears the flag.
        draining.draining.store(false, Ordering::SeqCst);
        cluster.refresh_loads();
        let st = cluster.stats();
        assert!(!st.draining[0]);
        cluster.invoke("f-1", "{}").unwrap();
    }

    #[test]
    fn retry_after_hint_suppresses_probes_until_expiry() {
        let draining = FlakyWorker::new("w0");
        let ok = FlakyWorker::new("w1");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![
            Arc::clone(&draining) as Arc<dyn WorkerHandle>,
            Arc::clone(&ok) as Arc<dyn WorkerHandle>,
        ];
        let cluster = Cluster::new(handles, LbPolicy::RoundRobin);
        draining.draining.store(true, Ordering::SeqCst);
        draining.retry_after_ms.store(60_000, Ordering::SeqCst);
        // The 503 carries a 60 s Retry-After: the reroute must record it.
        for _ in 0..4 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        let probes_at_hint = draining.probes.load(Ordering::SeqCst);
        // Scrapes during the suppression window must not probe w0 again,
        // and must keep reporting it as draining.
        for _ in 0..5 {
            cluster.refresh_loads();
        }
        assert_eq!(
            draining.probes.load(Ordering::SeqCst),
            probes_at_hint,
            "probes suppressed while the Retry-After hint is live"
        );
        assert!(cluster.stats().draining[0]);
        // All traffic kept flowing to the healthy worker meanwhile.
        assert_eq!(ok.calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn expired_retry_after_resumes_probing() {
        let draining = FlakyWorker::new("w0");
        let ok = FlakyWorker::new("w1");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![
            Arc::clone(&draining) as Arc<dyn WorkerHandle>,
            Arc::clone(&ok) as Arc<dyn WorkerHandle>,
        ];
        let cluster = Cluster::new(handles, LbPolicy::RoundRobin);
        draining.draining.store(true, Ordering::SeqCst);
        draining.retry_after_ms.store(20, Ordering::SeqCst);
        cluster.invoke("f-1", "{}").unwrap();
        cluster.invoke("f-1", "{}").unwrap();
        // Hint expires; the worker finishes draining and returns.
        std::thread::sleep(std::time::Duration::from_millis(30));
        draining.draining.store(false, Ordering::SeqCst);
        cluster.refresh_loads();
        let st = cluster.stats();
        assert!(!st.draining[0], "probe after expiry clears the flag");
        assert!(st.healthy[0]);
    }

    #[test]
    fn attach_fills_a_slot_and_admits_via_half_open() {
        let w0 = FlakyWorker::new("w0");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![Arc::clone(&w0) as Arc<dyn WorkerHandle>];
        let cluster =
            Cluster::with_capacity(handles, LbPolicy::RoundRobin, BreakerConfig::default(), 3);
        assert_eq!(cluster.len(), 3, "capacity, not membership");
        assert_eq!(cluster.live(), 1);
        let st = cluster.stats();
        assert!(st.present[0] && !st.present[1] && !st.present[2]);
        assert!(!st.healthy[1], "empty slots are unroutable");

        // Attach a second worker: it lands in slot 1, unhealthy until the
        // HalfOpen admission probe passes.
        let w1 = FlakyWorker::new("w1");
        let idx = cluster
            .attach(Arc::clone(&w1) as Arc<dyn WorkerHandle>)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(cluster.live(), 2);
        let st = cluster.stats();
        assert!(!st.healthy[1], "not routable before the admission probe");
        assert_eq!(st.breaker[1], "open");
        // One probe round admits it (HalfOpen → Closed), no eviction edge.
        cluster.refresh_loads();
        let st = cluster.stats();
        assert!(st.healthy[1], "admission probe closed the breaker");
        assert_eq!(st.breaker[1], "closed");
        assert_eq!(st.evictions, 0);
        // Round-robin now reaches both workers.
        for _ in 0..4 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        assert!(
            w1.calls.load(Ordering::SeqCst) >= 1,
            "attached worker serves traffic"
        );
    }

    #[test]
    fn attach_beyond_capacity_errors_and_detach_frees_the_slot() {
        let w0 = FlakyWorker::new("w0");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![Arc::clone(&w0) as Arc<dyn WorkerHandle>];
        let cluster =
            Cluster::with_capacity(handles, LbPolicy::RoundRobin, BreakerConfig::default(), 2);
        let w1 = FlakyWorker::new("w1");
        cluster
            .attach(Arc::clone(&w1) as Arc<dyn WorkerHandle>)
            .unwrap();
        let w2 = FlakyWorker::new("w2");
        assert!(cluster
            .attach(Arc::clone(&w2) as Arc<dyn WorkerHandle>)
            .is_err());
        // Retire w1; its slot frees and w2 fits.
        let detached = cluster.detach(1).expect("slot 1 held w1");
        assert_eq!(detached.name(), "w1");
        assert_eq!(cluster.live(), 1);
        let idx = cluster
            .attach(Arc::clone(&w2) as Arc<dyn WorkerHandle>)
            .unwrap();
        assert_eq!(idx, 1, "freed slot is reused");
        // The slot's last-known name updated with the new tenant cache
        // reconciled (w1 reported no tenants here, so just no panic).
        cluster.refresh_loads();
        assert!(cluster.stats().healthy[1]);
    }

    #[test]
    fn detached_slot_keeps_dispatch_counters() {
        let (stubs, cluster) = stub_cluster(2, LbPolicy::RoundRobin);
        for _ in 0..6 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        assert_eq!(stubs[1].calls.load(Ordering::SeqCst), 3);
        cluster.detach(1);
        let st = cluster.stats();
        assert_eq!(st.dispatched[1], 3, "counters survive retirement");
        // Tenant rollup still includes the retired worker's served count.
        let roll = cluster.tenant_rollup();
        let acme = roll.iter().find(|t| t.tenant == "acme").unwrap();
        assert_eq!(
            acme.served, 6,
            "retired worker's tenants stay in the rollup"
        );
        // All further traffic flows to the remaining worker.
        for _ in 0..4 {
            cluster.invoke("f-1", "{}").unwrap();
        }
        assert_eq!(stubs[0].calls.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn tenant_cache_reconciles_restarted_worker_counters() {
        let mut cache = vec![TenantSnapshot {
            tenant: "acme".into(),
            weight: 1.0,
            admitted: 10,
            served: 9,
            ..Default::default()
        }];
        // A restarted worker replays its WAL and reports counters at or
        // below the last scrape: the cache must not regress…
        merge_tenant_cache(
            &mut cache,
            vec![TenantSnapshot {
                tenant: "acme".into(),
                weight: 1.0,
                admitted: 7,
                served: 7,
                ..Default::default()
            }],
        );
        assert_eq!(cache[0].admitted, 10);
        assert_eq!(cache[0].served, 9);
        // …and must follow once the worker catches back up.
        merge_tenant_cache(
            &mut cache,
            vec![TenantSnapshot {
                tenant: "acme".into(),
                weight: 1.0,
                admitted: 12,
                served: 11,
                ..Default::default()
            }],
        );
        assert_eq!(cache[0].admitted, 12);
        assert_eq!(cache[0].served, 11);
        // An empty scrape (unreachable worker) leaves everything in place.
        merge_tenant_cache(&mut cache, Vec::new());
        assert_eq!(cache[0].admitted, 12);
    }

    #[test]
    fn scrape_reports_loads_and_dispatches() {
        let (stubs, cluster) = stub_cluster(2, LbPolicy::RoundRobin);
        *stubs[1].load.write() = 2.5;
        cluster.invoke("f-1", "{}").unwrap();
        let snap = cluster.scrape();
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[0].0, "w0");
        assert_eq!(snap.workers[1].1, 2.5);
        assert!(snap.spans.is_empty(), "stubs export no spans");
        assert_eq!(snap.dispatched.iter().sum::<u64>(), 1);
        assert_eq!(snap.present, vec![true, true]);
    }

    #[test]
    fn telemetry_mirrors_dispatch_and_membership() {
        use iluvatar_sync::ManualClock;
        use iluvatar_telemetry::{TelemetryBus, VecSink};

        let (stubs, cluster) = stub_cluster(2, LbPolicy::RoundRobin);
        let bus = TelemetryBus::new("lb", Arc::new(ManualClock::starting_at(0)));
        let sink = Arc::new(VecSink::new());
        bus.add_sink(Arc::clone(&sink) as Arc<dyn iluvatar_telemetry::TelemetrySink>);
        cluster.set_telemetry(Arc::clone(&bus));

        cluster.invoke_tenant("f-1", "{}", Some("acme")).unwrap();
        let retired = cluster.detach(0).unwrap();
        cluster.attach(retired).unwrap();

        let labels: Vec<String> = sink.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec!["dispatch", "membership:detach", "membership:attach"]
        );
        let dispatch = &sink.events()[0];
        assert_eq!(dispatch.source, "lb");
        assert_eq!(dispatch.tenant.as_deref(), Some("acme"));
        assert_eq!(stubs.len(), 2);
    }

    #[test]
    fn telemetry_mirrors_breaker_trips_and_reroutes() {
        use iluvatar_sync::ManualClock;
        use iluvatar_telemetry::{TelemetryBus, VecSink};

        /// A worker whose invocations always fail at the transport layer.
        struct DeadWorker;
        impl WorkerHandle for DeadWorker {
            fn name(&self) -> String {
                "dead".into()
            }
            fn load(&self) -> f64 {
                0.0
            }
            fn register(&self, _spec: FunctionSpec) -> Result<(), String> {
                Ok(())
            }
            fn invoke(&self, _fqdn: &str, _args: &str) -> Result<InvocationResult, InvokeError> {
                Err(InvokeError::Backend("gone".into()))
            }
        }

        let live = StubWorker::new("alive");
        let handles: Vec<Arc<dyn WorkerHandle>> = vec![
            Arc::new(DeadWorker) as Arc<dyn WorkerHandle>,
            Arc::clone(&live) as Arc<dyn WorkerHandle>,
        ];
        let cluster = Cluster::with_breaker(
            handles,
            LbPolicy::RoundRobin,
            BreakerConfig {
                failure_threshold: 1,
                open_cooldown_ms: 60_000,
            },
        );
        let bus = TelemetryBus::new("lb", Arc::new(ManualClock::starting_at(0)));
        let sink = Arc::new(VecSink::new());
        bus.add_sink(Arc::clone(&sink) as Arc<dyn iluvatar_telemetry::TelemetrySink>);
        cluster.set_telemetry(bus);

        // Force dispatch onto the dead worker: round-robin starts at 0.
        cluster.invoke("f-1", "{}").unwrap();
        assert_eq!(live.calls.load(Ordering::SeqCst), 1, "rerouted to live");
        let labels: Vec<String> = sink.events().iter().map(|e| e.kind.label()).collect();
        assert!(labels.contains(&"breaker:open".to_string()), "{labels:?}");
        assert!(labels.contains(&"reroute".to_string()), "{labels:?}");
    }

    #[test]
    fn stub_breakdown_merges_to_empty_report() {
        let (_stubs, cluster) = stub_cluster(2, LbPolicy::RoundRobin);
        cluster.invoke("f-1", "{}").unwrap();
        let report = cluster.breakdown();
        assert_eq!(report.source, "cluster");
        assert_eq!(report.invocations, 0, "stubs expose no breakdown");
    }
}
