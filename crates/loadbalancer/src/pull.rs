//! Worker side of the pull-dispatch plane over HTTP.
//!
//! The balancer owns the [`iluvatar_dispatch::PullPlane`]; workers reach
//! it through two routes ([`crate::LbApi`] serves both when a plane is
//! attached):
//!
//! | method & path         | body                                          | response |
//! |-----------------------|-----------------------------------------------|----------|
//! | `POST /pull`          | [`PullBody`] `{"worker":…, "max":…, "wait_ms":…}` | `Vec<Lease>` JSON |
//! | `POST /pull/complete` | [`CompleteBody`]                              | `{"accepted":bool}` |
//!
//! [`HttpLeaseSource`] adapts those routes to the
//! [`iluvatar_dispatch::LeaseSource`] trait, so a worker-side
//! [`iluvatar_dispatch::PullLoop`] drives a remote balancer exactly as it
//! would an in-process plane.

use iluvatar_dispatch::{Lease, LeaseSource};
use iluvatar_http::{HttpClient, Method, Request, Status};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::time::Duration;

/// `POST /pull` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PullBody {
    /// The pulling worker's registered shard name.
    pub worker: String,
    /// Max leases to grant (0 = the plane's configured batch).
    #[serde(default)]
    pub max: usize,
    /// Long-poll budget, ms (0 = return immediately).
    #[serde(default)]
    pub wait_ms: u64,
}

/// `POST /pull/complete` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompleteBody {
    pub lease_id: u64,
    pub ok: bool,
    #[serde(default)]
    pub body: String,
    #[serde(default)]
    pub exec_ms: u64,
}

/// `POST /pull/complete` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompleteReply {
    /// False when the lease had already expired: the work ran, but the
    /// requeued incarnation owns the accounting.
    pub accepted: bool,
}

/// A [`LeaseSource`] that long-polls a remote balancer's `/pull` routes.
pub struct HttpLeaseSource {
    addr: SocketAddr,
    /// Long-poll budget sent with each pull.
    wait_ms: u64,
    /// Client-side request timeout (covers the long poll plus slack).
    timeout: Duration,
}

impl HttpLeaseSource {
    pub fn new(addr: SocketAddr, wait_ms: u64) -> Self {
        Self {
            addr,
            wait_ms,
            timeout: Duration::from_millis(wait_ms + 5_000),
        }
    }
}

impl LeaseSource for HttpLeaseSource {
    fn pull(&self, worker: &str, max: usize) -> Vec<Lease> {
        let body = serde_json::to_vec(&PullBody {
            worker: worker.to_string(),
            max,
            wait_ms: self.wait_ms,
        })
        .expect("serialize pull body");
        let resp = HttpClient::send(
            self.addr,
            &Request::new(Method::Post, "/pull").with_body(body),
            self.timeout,
        );
        match resp {
            Ok(r) if r.status == Status::OK => {
                serde_json::from_str(r.body_str()).unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    fn complete(&self, lease_id: u64, ok: bool, body: &str, exec_ms: u64) -> bool {
        let payload = serde_json::to_vec(&CompleteBody {
            lease_id,
            ok,
            body: body.to_string(),
            exec_ms,
        })
        .expect("serialize complete body");
        let resp = HttpClient::send(
            self.addr,
            &Request::new(Method::Post, "/pull/complete").with_body(payload),
            self.timeout,
        );
        match resp {
            Ok(r) if r.status == Status::OK => serde_json::from_str::<CompleteReply>(r.body_str())
                .map(|c| c.accepted)
                .unwrap_or(false),
            _ => false,
        }
    }
}
