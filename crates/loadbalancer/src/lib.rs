//! Cluster load balancing for Ilúvatar workers.
//!
//! §3.1: "We use stateless load-balancing, by using variants of consistent
//! hashing with bounded loads (CH-BL) ... This is a locality-aware scheme,
//! which runs functions on the same servers to maximize warm starts, and
//! forwards them to other servers only when the server's load exceeds some
//! pre-specified load-bound." The worker-reported queue-aware load (§4) is
//! the bound's input.
//!
//! [`chbl`] implements the hash ring with bounded-load forwarding;
//! [`cluster`] wires policies to worker handles (live [`iluvatar_core::Worker`]s
//! or test stubs) and exposes the cluster-level invoke API. [`api`] is the
//! balancer's HTTP front-end: it dispatches invocations and aggregates
//! worker observability — a background task scrapes every worker's span
//! distributions and serves the merged cluster view on `GET /metrics`.

pub mod api;
pub mod chbl;
pub mod cluster;
pub mod fleet;
pub mod pull;

pub use api::{LbApi, LbStatus};
pub use chbl::{ChBl, ChBlConfig};
pub use cluster::{
    BreakerConfig, Cluster, ClusterSnapshot, HandleStats, LbPolicy, ProbeResult, WorkerHandle,
};
pub use fleet::{Fleet, FleetStatus, WorkerFactory};
pub use pull::HttpLeaseSource;
