//! Property-based tests for the concurrency substrates.

use iluvatar_sync::aimd::AimdConfig;
use iluvatar_sync::stats::{percentile, Histogram, MovingWindow, Welford};
use iluvatar_sync::{
    Aimd, Backoff, BackoffConfig, LogHistogram, ManualClock, ShardedMap, TokenBucket,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

proptest! {
    /// ShardedMap must agree with a reference HashMap under any sequence of
    /// insert/remove/update operations.
    #[test]
    fn shardmap_matches_hashmap(ops in proptest::collection::vec((0u8..4, 0u16..64, any::<u32>()), 1..200)) {
        let sm: ShardedMap<u16, u32> = ShardedMap::new();
        let mut hm: HashMap<u16, u32> = HashMap::new();
        for (op, k, v) in ops {
            match op {
                0 => {
                    prop_assert_eq!(sm.insert(k, v), hm.insert(k, v));
                }
                1 => {
                    prop_assert_eq!(sm.remove(&k), hm.remove(&k));
                }
                2 => {
                    prop_assert_eq!(sm.get(&k), hm.get(&k).copied());
                }
                _ => {
                    let a = sm.update(&k, |x| { *x = x.wrapping_add(1); *x });
                    let b = hm.get_mut(&k).map(|x| { *x = x.wrapping_add(1); *x });
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(sm.len(), hm.len());
        }
        let mut snap = sm.snapshot();
        snap.sort_unstable();
        let mut expect: Vec<_> = hm.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(snap, expect);
    }

    /// Welford mean/variance must match the two-pass closed form.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() < 1e-4 * var.abs().max(1.0));
    }

    /// Percentiles are monotone in q and bounded by min/max.
    #[test]
    fn percentile_monotone(xs in proptest::collection::vec(-1e9f64..1e9, 1..100),
                           q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-9);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min - 1e-9 && p_hi <= max + 1e-9);
    }

    /// MovingWindow statistics are always over the last `cap` samples.
    #[test]
    fn moving_window_is_suffix(cap in 1usize..20, xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut mw = MovingWindow::new(cap);
        for &x in &xs {
            mw.push(x);
        }
        let suffix: Vec<f64> = xs.iter().rev().take(cap).copied().collect();
        let mean = suffix.iter().sum::<f64>() / suffix.len() as f64;
        prop_assert!((mw.mean() - mean).abs() < 1e-9);
        prop_assert_eq!(mw.last(), Some(*xs.last().unwrap()));
        prop_assert_eq!(mw.len(), xs.len().min(cap));
    }

    /// AIMD limit always stays within [min, max] clamps.
    #[test]
    fn aimd_respects_clamps(signals in proptest::collection::vec(any::<bool>(), 1..500),
                            init in 1.0f64..100.0) {
        let cfg = AimdConfig { increase: 1.0, decrease: 0.5, min: 2.0, max: 48.0 };
        let mut a = Aimd::new(init, cfg);
        for s in signals {
            let lim = a.observe(s);
            prop_assert!((2..=48).contains(&lim), "limit {lim} out of clamp");
        }
    }

    /// A token bucket never grants more than burst + rate * elapsed tokens.
    #[test]
    fn token_bucket_conserves(advances in proptest::collection::vec(0u64..500, 1..60)) {
        let clock = Arc::new(ManualClock::new());
        let rate = 100.0; // per second
        let burst = 10.0;
        let tb = TokenBucket::new(rate, burst, clock.clone());
        let mut granted = 0u64;
        let mut elapsed = 0u64;
        for adv in advances {
            clock.advance(adv);
            elapsed += adv;
            while tb.try_take() {
                granted += 1;
            }
        }
        let budget = burst + rate * elapsed as f64 / 1000.0;
        prop_assert!((granted as f64) <= budget + 1e-6,
            "granted {granted} > budget {budget}");
    }

    /// Advancing the clock never *decreases* a token bucket's balance
    /// (refill monotonicity), and the balance is always capped at burst —
    /// the determinism contract the admission controller's per-tenant rate
    /// limits rely on under a virtual clock.
    #[test]
    fn token_bucket_refill_monotone(
        rate in 0.1f64..1_000.0,
        burst in 1.0f64..100.0,
        steps in proptest::collection::vec((0u64..2_000, any::<bool>()), 1..80),
    ) {
        let clock = Arc::new(ManualClock::new());
        let tb = TokenBucket::new(rate, burst, clock.clone());
        prop_assert!((tb.tokens() - burst).abs() < 1e-9, "starts full");
        for (adv, take) in steps {
            let before = tb.tokens();
            clock.advance(adv);
            let after = tb.tokens();
            prop_assert!(after >= before - 1e-9,
                "refill went backwards: {before} -> {after} after +{adv}ms");
            prop_assert!(after <= burst + 1e-9, "balance {after} above burst {burst}");
            if take {
                let had = tb.tokens();
                let got = tb.try_take();
                prop_assert_eq!(got, had >= 1.0 - 1e-9, "grant iff a whole token is present");
                if got {
                    prop_assert!((had - tb.tokens() - 1.0).abs() < 1e-9, "take removes one token");
                }
            }
        }
        // A fresh bucket at any starting offset is still full: refill
        // depends only on virtual-time deltas, not absolute time.
        let tb2 = TokenBucket::new(rate, burst, Arc::new(ManualClock::starting_at(123_456)));
        prop_assert!((tb2.tokens() - burst).abs() < 1e-9);
    }

    /// `wait_hint_ms` is honest: advancing by the hint always makes the
    /// next `try_take` succeed, and a zero hint means tokens are available
    /// right now.
    #[test]
    fn token_bucket_wait_hint_is_sufficient(
        rate in 0.1f64..1_000.0,
        burst in 1.0f64..50.0,
        drain in 0u32..200,
    ) {
        let clock = Arc::new(ManualClock::new());
        let tb = TokenBucket::new(rate, burst, clock.clone());
        for _ in 0..drain {
            tb.try_take();
        }
        let hint = tb.wait_hint_ms(1.0);
        if hint == 0 {
            prop_assert!(tb.try_take(), "zero hint must mean a token is ready");
        } else {
            clock.advance(hint);
            prop_assert!(tb.try_take(),
                "advancing by the hint ({hint}ms) must yield a token");
        }
    }

    /// Histogram total equals the number of recorded samples and the
    /// bucketed quantile is monotone.
    #[test]
    fn histogram_invariants(xs in proptest::collection::vec(0.0f64..500.0, 1..300)) {
        let mut h = Histogram::new(10.0, 20);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let in_buckets: u64 = h.counts().iter().sum();
        prop_assert_eq!(in_buckets + h.overflow(), h.total());
        prop_assert!(h.quantile_lower_edge(0.25) <= h.quantile_lower_edge(0.75));
    }

    /// LogHistogram percentiles stay within the advertised relative-error
    /// bound of the exact nearest-rank sample, at every quantile.
    #[test]
    fn loghist_percentile_error_bounded(
        xs in proptest::collection::vec(0u64..1_000_000_000_000, 1..500),
        q in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new();
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        let exact = sorted[rank] as f64;
        let est = h.percentile(q);
        let tol = exact * LogHistogram::REL_ERROR + 1e-9;
        prop_assert!((est - exact).abs() <= tol,
            "q={} exact={} est={} tol={}", q, exact, est, tol);
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    /// Merging two LogHistograms is exactly equivalent to recording the
    /// union of their samples into one, and survives a serde round trip.
    #[test]
    fn loghist_merge_equals_union(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut union = LogHistogram::new();
        for &x in &xs {
            a.record(x);
            union.record(x);
        }
        for &y in &ys {
            b.record(y);
            union.record(y);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &union);
        let wire = serde_json::to_string(&a).unwrap();
        let back: LogHistogram = serde_json::from_str(&wire).unwrap();
        prop_assert_eq!(&back, &union);
    }

    /// Nominal (jitter-free) backoff delays are monotone non-decreasing in
    /// the attempt number and saturate at the cap.
    #[test]
    fn backoff_nominal_monotone_and_capped(
        base in 1u64..1_000,
        cap in 1u64..100_000,
        seed in any::<u64>(),
    ) {
        let cfg = BackoffConfig { base_ms: base, cap_ms: cap, max_retries: 32, jitter: 0.0, deadline_ms: 0 };
        let b = Backoff::new(cfg, seed);
        let mut prev = 0u64;
        for attempt in 0..64u32 {
            let d = b.nominal_ms(attempt);
            prop_assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
            prop_assert!(d <= cap.max(base.min(cap)), "attempt {attempt}: {d} > cap {cap}");
            prev = d;
        }
        // With zero jitter the realized delay equals the nominal one.
        prop_assert_eq!(b.delay_ms(5), b.nominal_ms(5));
    }

    /// Jitter only ever shrinks a delay, and never below `(1 - jitter)` of
    /// nominal — so every realized delay is bounded by the cap.
    #[test]
    fn backoff_jitter_bounded_by_cap(
        base in 1u64..1_000,
        cap in 1u64..100_000,
        jitter in 0.0f64..1.0,
        seed in any::<u64>(),
        attempt in 0u32..64,
    ) {
        let cfg = BackoffConfig { base_ms: base, cap_ms: cap, max_retries: 32, jitter, deadline_ms: 0 };
        let b = Backoff::new(cfg.clone(), seed);
        let nominal = b.nominal_ms(attempt);
        let d = b.delay_ms(attempt);
        prop_assert!(d <= nominal, "jitter must not inflate: {d} > {nominal}");
        prop_assert!(d <= cap, "delay {d} above cap {cap}");
        let floor = (nominal as f64 * (1.0 - jitter)).floor() as u64;
        prop_assert!(d + 1 >= floor, "delay {d} below jitter floor {floor}");
        // Same seed and attempt always produce the same delay.
        prop_assert_eq!(d, Backoff::new(cfg.clone(), seed).delay_ms(attempt));
    }

    /// The full retry schedule never spends more than the configured
    /// deadline, and its length never exceeds the retry budget.
    #[test]
    fn backoff_schedule_respects_deadline_and_budget(
        base in 1u64..500,
        cap in 1u64..10_000,
        jitter in 0.0f64..1.0,
        deadline in 1u64..20_000,
        retries in 0u32..16,
        seed in any::<u64>(),
    ) {
        let cfg = BackoffConfig {
            base_ms: base,
            cap_ms: cap,
            max_retries: retries,
            jitter,
            deadline_ms: deadline,
        };
        let b = Backoff::new(cfg, seed);
        let sched = b.schedule();
        prop_assert!(sched.len() <= retries as usize, "len {} > budget {retries}", sched.len());
        prop_assert!(b.total_budget_ms() <= deadline,
            "budget {} exceeds deadline {deadline}", b.total_budget_ms());
        prop_assert_eq!(b.total_budget_ms(), sched.iter().sum::<u64>());
    }
}
