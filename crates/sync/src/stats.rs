//! Online statistics used for data-driven policies.
//!
//! * [`Welford`] — numerically stable online mean/variance; the HIST
//!   keep-alive policy computes each function's coefficient of variation of
//!   inter-arrival times "using Welford's online algorithm" (§6.1).
//! * [`MovingWindow`] — fixed-capacity window over recent samples; queue
//!   policies use "(moving window) warm time" as the execution estimate
//!   (§4.2).
//! * [`Histogram`] — fixed-width bucket histogram; the HIST policy records
//!   IATs "in minute granularity buckets, tracking up to four hours".
//! * [`percentile`] — exact percentile over a sample set, for the p50/p99
//!   overheads of Figure 1.

/// Welford's online mean and variance.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cov(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev() / self.mean
        }
    }
}

/// A fixed-capacity ring buffer of recent samples with O(window) summary
/// queries. Window sizes in the control plane are small (tens of samples),
/// so scans beat maintaining auxiliary structures.
#[derive(Debug, Clone)]
pub struct MovingWindow {
    buf: Vec<f64>,
    capacity: usize,
    next: usize,
    total_pushed: u64,
}

impl MovingWindow {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total_pushed: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        if self.buf.len() < self.capacity {
            self.buf.push(x);
        } else {
            self.buf[self.next] = x;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total_pushed += 1;
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.buf.iter().sum::<f64>() / self.buf.len() as f64
        }
    }

    pub fn min(&self) -> f64 {
        self.buf.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.buf.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.capacity {
            self.buf.last().copied()
        } else {
            let idx = (self.next + self.capacity - 1) % self.capacity;
            Some(self.buf[idx])
        }
    }

    /// Exact percentile (`q` in [0,1]) of the windowed samples.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile_of_sorted(&sorted, q)
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct ExpMovingAvg {
    alpha: f64,
    value: Option<f64>,
}

impl ExpMovingAvg {
    /// `alpha` in (0,1]: weight of the newest sample.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Self { alpha, value: None }
    }

    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Fixed-width bucket histogram over `[0, bucket_width * buckets)`, with an
/// overflow bucket for larger samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0 && buckets > 0);
        Self {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.counts[0] += 1;
            return;
        }
        let idx = (x / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of samples that landed beyond the tracked range.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower edge of the first non-empty bucket at or after cumulative
    /// fraction `q` (a bucketed quantile). Returns the overflow edge if `q`
    /// lands in overflow.
    pub fn quantile_lower_edge(&self, q: f64) -> f64 {
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return i as f64 * self.bucket_width;
            }
        }
        self.counts.len() as f64 * self.bucket_width
    }

    /// Index of the most populated bucket, ignoring overflow.
    pub fn mode_bucket(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Exact percentile over already-sorted data, using linear interpolation
/// between closest ranks.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Sorts a copy of `xs` and returns the `q`-percentile.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_of_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert!((w.cov() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate() {
        let mut w = Welford::new();
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.cov(), 0.0);
        w.push(3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.mean(), 3.0);
    }

    #[test]
    fn moving_window_evicts_oldest() {
        let mut mw = MovingWindow::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            mw.push(x);
        }
        assert_eq!(mw.len(), 3);
        assert_eq!(mw.mean(), 3.0); // 2,3,4
        assert_eq!(mw.min(), 2.0);
        assert_eq!(mw.max(), 4.0);
        assert_eq!(mw.last(), Some(4.0));
        assert_eq!(mw.total_pushed(), 4);
    }

    #[test]
    fn moving_window_last_before_wrap() {
        let mut mw = MovingWindow::new(4);
        mw.push(9.0);
        mw.push(7.0);
        assert_eq!(mw.last(), Some(7.0));
    }

    #[test]
    fn moving_window_percentile() {
        let mut mw = MovingWindow::new(100);
        for i in 0..100 {
            mw.push(i as f64);
        }
        assert!((mw.percentile(0.5) - 49.5).abs() < 1e-9);
        assert_eq!(mw.percentile(1.0), 99.0);
        assert_eq!(mw.percentile(0.0), 0.0);
    }

    #[test]
    fn ema_converges() {
        let mut e = ExpMovingAvg::new(0.5);
        assert_eq!(e.value(), None);
        e.push(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.push(0.0);
        assert_eq!(e.value(), Some(5.0));
        for _ in 0..64 {
            e.push(0.0);
        }
        assert!(e.value().unwrap() < 1e-6);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(1.0, 4); // [0,4) + overflow
        for x in [0.5, 1.5, 1.7, 3.9, 4.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
        assert!((h.overflow_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.mode_bucket(), 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(10.0, 10);
        for _ in 0..90 {
            h.record(5.0);
        }
        for _ in 0..10 {
            h.record(55.0);
        }
        assert_eq!(h.quantile_lower_edge(0.5), 0.0);
        assert_eq!(h.quantile_lower_edge(0.95), 50.0);
    }

    #[test]
    fn histogram_negative_clamps_to_first() {
        let mut h = Histogram::new(1.0, 2);
        h.record(-5.0);
        assert_eq!(h.counts(), &[1, 0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&xs, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
