//! Wall-clock and virtual time sources.
//!
//! The paper's in-situ simulation (§3.4) requires that "an experiment can be
//! run in-situ or in-silico, following identical code paths". All control
//! plane code therefore reads time exclusively through the [`Clock`] trait:
//! the live worker is driven by [`SystemClock`], tests and the discrete-event
//! simulator by [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Milliseconds since an arbitrary epoch (process start for [`SystemClock`],
/// simulation start for [`ManualClock`]).
pub type TimeMs = u64;

/// A monotonic time source with millisecond resolution.
pub trait Clock: Send + Sync + 'static {
    /// Current time in milliseconds since the clock's epoch.
    fn now_ms(&self) -> TimeMs;

    /// Block the calling thread for `ms` milliseconds of *this clock's* time.
    ///
    /// For [`SystemClock`] this is a real sleep. [`ManualClock`] advances its
    /// own time instead, so single-threaded simulations never stall.
    fn sleep_ms(&self, ms: u64);

    /// Elapsed milliseconds since `start`, saturating at zero if the caller
    /// raced a concurrent reader and holds a timestamp from the future.
    fn elapsed_ms(&self, start: TimeMs) -> u64 {
        self.now_ms().saturating_sub(start)
    }
}

/// Wall-clock time, relative to process start.
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// A shared handle, convenient for components that store `Arc<dyn Clock>`.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(Self::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> TimeMs {
        self.epoch.elapsed().as_millis() as TimeMs
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A virtual clock advanced explicitly by the test or simulator driver.
///
/// `sleep_ms` advances the clock itself: a simulated function "executing" for
/// 8 s completes instantly in wall time while consuming 8 s of virtual time,
/// which is exactly how the null container backend simulates hundreds of
/// cores on one machine (§3.4).
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self {
            now: AtomicU64::new(0),
        }
    }

    pub fn starting_at(ms: TimeMs) -> Self {
        Self {
            now: AtomicU64::new(ms),
        }
    }

    /// Move time forward by `ms`; returns the new now.
    pub fn advance(&self, ms: u64) -> TimeMs {
        self.now.fetch_add(ms, Ordering::SeqCst) + ms
    }

    /// Jump to an absolute time. Panics if `ms` would move time backwards,
    /// as a monotonicity violation always indicates a driver bug.
    pub fn set(&self, ms: TimeMs) {
        let prev = self.now.swap(ms, Ordering::SeqCst);
        assert!(prev <= ms, "ManualClock moved backwards: {prev} -> {ms}");
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> TimeMs {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn system_clock_sleep_advances() {
        let c = SystemClock::new();
        let a = c.now_ms();
        c.sleep_ms(15);
        assert!(c.now_ms() >= a + 10, "sleep must advance wall time");
    }

    #[test]
    fn manual_clock_starts_at_zero() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
    }

    #[test]
    fn manual_clock_advance_and_set() {
        let c = ManualClock::new();
        assert_eq!(c.advance(100), 100);
        c.set(250);
        assert_eq!(c.now_ms(), 250);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::starting_at(10);
        c.set(5);
    }

    #[test]
    fn manual_clock_sleep_is_virtual() {
        let c = ManualClock::new();
        let wall = Instant::now();
        c.sleep_ms(60_000);
        assert_eq!(c.now_ms(), 60_000);
        assert!(wall.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn elapsed_saturates() {
        let c = ManualClock::starting_at(5);
        assert_eq!(c.elapsed_ms(100), 0);
        assert_eq!(c.elapsed_ms(2), 3);
    }
}
