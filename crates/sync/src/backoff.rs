//! Deterministic exponential backoff with jitter and a retry budget.
//!
//! The retry hardening around the agent hop (worker → container) needs a
//! delay schedule that is (a) exponential so repeated failures back off the
//! failing component, (b) capped so one flaky container cannot stall an
//! invocation for seconds, (c) jittered so a herd of failed invocations does
//! not retry in lockstep, and (d) *deterministic* given a seed so chaos runs
//! with a fixed fault plan replay identically. Jitter therefore comes from a
//! hash of `(seed, attempt)` rather than a global RNG.
//!
//! Invariants (property-tested in `tests/proptests.rs`):
//! * nominal (pre-jitter) delays are monotone non-decreasing in the attempt,
//! * every jittered delay is `<= cap_ms`,
//! * the total budget ([`Backoff::total_budget_ms`]) never exceeds
//!   `deadline_ms` when a deadline is configured — later attempts are
//!   clipped out rather than overshooting.

use serde::{Deserialize, Serialize};

/// Retry/backoff policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackoffConfig {
    /// Delay before the first retry, ms.
    pub base_ms: u64,
    /// Upper bound on any single delay, ms.
    pub cap_ms: u64,
    /// Retries after the initial attempt. 0 disables retrying.
    pub max_retries: u32,
    /// Fraction of the nominal delay used as the jitter range, in `[0, 1]`.
    /// The jittered delay lies in `[nominal * (1 - jitter), nominal]`.
    pub jitter: f64,
    /// Total retry budget, ms: delays whose cumulative sum would exceed
    /// this are clipped (the attempt is abandoned instead). 0 = unbounded.
    pub deadline_ms: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            base_ms: 10,
            cap_ms: 1_000,
            max_retries: 0,
            jitter: 0.5,
            deadline_ms: 0,
        }
    }
}

/// splitmix64: cheap, well-mixed stateless hash for deterministic jitter.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, deterministic backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    seed: u64,
}

impl Backoff {
    pub fn new(cfg: BackoffConfig, seed: u64) -> Self {
        Self { cfg, seed }
    }

    pub fn config(&self) -> &BackoffConfig {
        &self.cfg
    }

    /// Nominal (pre-jitter) delay for retry `attempt` (0-based):
    /// `min(cap, base * 2^attempt)`, saturating. Monotone non-decreasing.
    pub fn nominal_ms(&self, attempt: u32) -> u64 {
        let doubled = self
            .cfg
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        doubled.min(self.cfg.cap_ms)
    }

    /// Jittered delay for retry `attempt`: deterministic in `(seed,
    /// attempt)`, within `[nominal * (1 - jitter), nominal]`, never above
    /// the cap.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let nominal = self.nominal_ms(attempt);
        let j = self.cfg.jitter.clamp(0.0, 1.0);
        if j == 0.0 || nominal == 0 {
            return nominal;
        }
        // Map the hash to [0, 1): the subtracted jitter fraction.
        let unit = (mix(self.seed ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F)) >> 11)
            as f64
            / (1u64 << 53) as f64;
        let scale = 1.0 - j * unit;
        ((nominal as f64) * scale).floor() as u64
    }

    /// The full clipped schedule: delays for attempts `0..max_retries`,
    /// truncated so the cumulative sum never exceeds `deadline_ms` (when
    /// set). The returned length is how many retries may actually run.
    pub fn schedule(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.cfg.max_retries as usize);
        let mut total: u64 = 0;
        for attempt in 0..self.cfg.max_retries {
            let d = self.delay_ms(attempt);
            let next = total.saturating_add(d);
            if self.cfg.deadline_ms > 0 && next > self.cfg.deadline_ms {
                break;
            }
            total = next;
            out.push(d);
        }
        out
    }

    /// Sum of the clipped schedule — the worst-case time spent sleeping
    /// between retries. `<= deadline_ms` when a deadline is configured.
    pub fn total_budget_ms(&self) -> u64 {
        self.schedule().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(base: u64, cap: u64, retries: u32, jitter: f64, deadline: u64) -> BackoffConfig {
        BackoffConfig {
            base_ms: base,
            cap_ms: cap,
            max_retries: retries,
            jitter,
            deadline_ms: deadline,
        }
    }

    #[test]
    fn nominal_doubles_then_caps() {
        let b = Backoff::new(cfg(10, 100, 8, 0.0, 0), 1);
        assert_eq!(b.nominal_ms(0), 10);
        assert_eq!(b.nominal_ms(1), 20);
        assert_eq!(b.nominal_ms(2), 40);
        assert_eq!(b.nominal_ms(3), 80);
        assert_eq!(b.nominal_ms(4), 100, "capped");
        assert_eq!(b.nominal_ms(63), 100);
    }

    #[test]
    fn zero_jitter_equals_nominal() {
        let b = Backoff::new(cfg(5, 1_000, 4, 0.0, 0), 9);
        for a in 0..4 {
            assert_eq!(b.delay_ms(a), b.nominal_ms(a));
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = Backoff::new(cfg(10, 500, 6, 0.5, 0), 42);
        let b = Backoff::new(cfg(10, 500, 6, 0.5, 0), 42);
        let c = Backoff::new(cfg(10, 500, 6, 0.5, 0), 43);
        assert_eq!(a.schedule(), b.schedule(), "same seed, same schedule");
        assert_ne!(
            a.schedule(),
            c.schedule(),
            "different seed should jitter differently"
        );
    }

    #[test]
    fn deadline_clips_schedule() {
        let b = Backoff::new(cfg(10, 10, 100, 0.0, 35), 1);
        // Each delay is exactly 10ms; only 3 fit under 35ms.
        assert_eq!(b.schedule(), vec![10, 10, 10]);
        assert_eq!(b.total_budget_ms(), 30);
    }

    #[test]
    fn overflow_attempt_saturates() {
        let b = Backoff::new(cfg(u64::MAX / 2, u64::MAX, 2, 0.0, 0), 1);
        assert_eq!(
            b.nominal_ms(40),
            u64::MAX,
            "saturating shift must not panic"
        );
    }
}
