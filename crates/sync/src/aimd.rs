//! TCP-like additive-increase / multiplicative-decrease controller.
//!
//! §4.1: "In the dynamic mode, we use a simple TCP-like AIMD policy which
//! increases the concurrency limit until we hit congestion, which in our
//! case is hit if the system load average increases above some specified
//! threshold."

/// Configuration for the [`Aimd`] controller.
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Additive step applied when a probe sees no congestion.
    pub increase: f64,
    /// Multiplicative factor (<1) applied on congestion.
    pub decrease: f64,
    /// Lower clamp for the limit.
    pub min: f64,
    /// Upper clamp for the limit.
    pub max: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        Self {
            increase: 1.0,
            decrease: 0.5,
            min: 1.0,
            max: 1024.0,
        }
    }
}

/// The AIMD state machine. Callers feed it a congestion signal per control
/// interval and read back the integer limit.
#[derive(Debug, Clone)]
pub struct Aimd {
    cfg: AimdConfig,
    limit: f64,
    congested_intervals: u64,
    clear_intervals: u64,
}

impl Aimd {
    pub fn new(initial: f64, cfg: AimdConfig) -> Self {
        let limit = initial.clamp(cfg.min, cfg.max);
        Self {
            cfg,
            limit,
            congested_intervals: 0,
            clear_intervals: 0,
        }
    }

    /// Apply one control interval's observation. Returns the new limit.
    pub fn observe(&mut self, congested: bool) -> usize {
        if congested {
            self.congested_intervals += 1;
            self.limit = (self.limit * self.cfg.decrease).clamp(self.cfg.min, self.cfg.max);
        } else {
            self.clear_intervals += 1;
            self.limit = (self.limit + self.cfg.increase).clamp(self.cfg.min, self.cfg.max);
        }
        self.limit()
    }

    /// Current limit, rounded down to a whole permit count (never below the
    /// configured minimum).
    pub fn limit(&self) -> usize {
        self.limit.floor().max(self.cfg.min.floor()).max(1.0) as usize
    }

    pub fn congested_intervals(&self) -> u64 {
        self.congested_intervals
    }

    pub fn clear_intervals(&self) -> u64 {
        self.clear_intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AimdConfig {
        AimdConfig {
            increase: 2.0,
            decrease: 0.5,
            min: 1.0,
            max: 64.0,
        }
    }

    #[test]
    fn additive_increase() {
        let mut a = Aimd::new(4.0, cfg());
        assert_eq!(a.observe(false), 6);
        assert_eq!(a.observe(false), 8);
        assert_eq!(a.clear_intervals(), 2);
    }

    #[test]
    fn multiplicative_decrease() {
        let mut a = Aimd::new(32.0, cfg());
        assert_eq!(a.observe(true), 16);
        assert_eq!(a.observe(true), 8);
        assert_eq!(a.congested_intervals(), 2);
    }

    #[test]
    fn clamps_at_bounds() {
        let mut a = Aimd::new(63.0, cfg());
        assert_eq!(a.observe(false), 64);
        assert_eq!(a.observe(false), 64);
        let mut a = Aimd::new(1.5, cfg());
        assert_eq!(a.observe(true), 1);
        assert_eq!(a.observe(true), 1);
    }

    #[test]
    fn sawtooth_converges_around_capacity() {
        // Simulate a system that is congested above 20 concurrent.
        let mut a = Aimd::new(
            1.0,
            AimdConfig {
                increase: 1.0,
                decrease: 0.5,
                min: 1.0,
                max: 256.0,
            },
        );
        let mut seen_max = 0usize;
        for _ in 0..200 {
            let lim = a.limit();
            seen_max = seen_max.max(lim);
            a.observe(lim > 20);
        }
        // The sawtooth should oscillate near the knee, never running away.
        assert!(seen_max <= 22, "ran away to {seen_max}");
        assert!(a.limit() >= 10, "collapsed to {}", a.limit());
    }

    #[test]
    fn initial_clamped() {
        let a = Aimd::new(1000.0, cfg());
        assert_eq!(a.limit(), 64);
    }
}
