//! Pluggable storage: the thin seam between the WAL and the disk.
//!
//! The durability layer (`iluvatar_core::wal`) never touches `std::fs`
//! directly — every open/write/fsync/read goes through [`Storage`], so the
//! chaos crate can interpose a `FaultyStorage` that makes the disk fail,
//! stall, fill, and lie (torn writes, fsync errors, ENOSPC, read bit-rot,
//! latency stalls) without patching the WAL itself. Production uses
//! [`RealStorage`], a direct passthrough to `std::fs`.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// An open append-only file handle. `write_all` moves bytes toward the OS,
/// `flush` drains userspace buffering, `sync` is the real durability barrier
/// (fsync). Implementations need not be thread-safe beyond `Send`: the WAL
/// serializes access under its writer lock.
pub trait StorageFile: Send {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    fn flush(&mut self) -> io::Result<()>;
    fn sync(&mut self) -> io::Result<()>;
}

/// A filesystem namespace the WAL stores segments in.
pub trait Storage: Send + Sync {
    /// Open (creating if absent) a file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Read a whole file. Recovery-path reads go through here so read
    /// faults (bit-rot) can be injected.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Delete a file (segment compaction).
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// List directory entries (segment discovery). Missing directory is an
    /// empty listing, not an error.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// Production storage: direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealStorage;

struct RealFile {
    f: File,
}

impl StorageFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.f.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.f.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.f.sync_data()
    }
}

impl Storage for RealStorage {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile { f }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                for e in entries {
                    out.push(e?.path());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("iluvatar-storage-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn real_storage_roundtrips_and_lists() {
        let d = tmp_dir("rt");
        let p = d.join("a.log");
        let s = RealStorage;
        let mut f = s.open_append(&p).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        // Append mode: a second open extends, never truncates.
        let mut f = s.open_append(&p).unwrap();
        f.write_all(b"!").unwrap();
        f.flush().unwrap();
        drop(f);
        assert_eq!(s.read(&p).unwrap(), b"hello world!");
        let listed = s.list(&d).unwrap();
        assert_eq!(listed, vec![p.clone()]);
        s.remove(&p).unwrap();
        assert!(s.read(&p).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn listing_a_missing_dir_is_empty() {
        let s = RealStorage;
        let listed = s
            .list(Path::new("/definitely/not/a/real/dir/iluvatar"))
            .unwrap();
        assert!(listed.is_empty());
    }
}
