//! Concurrency substrates shared by every Ilúvatar component.
//!
//! The paper's worker (§5) leans on three low-level building blocks:
//!
//! * a concurrent associative map for the container pool (the original uses
//!   `dashmap`; we build [`ShardedMap`] on `parking_lot` shards),
//! * asynchronous lifecycle handling off the critical path (here: the
//!   [`taskpool::TaskPool`] of background threads plus periodic tasks), and
//! * data-driven controllers — the TCP-like AIMD concurrency limit of §4.1
//!   ([`aimd::Aimd`]) and the moving-window function characteristics of §4.2
//!   ([`stats::MovingWindow`], [`stats::Welford`]).
//!
//! Everything here is time-abstracted through the [`clock::Clock`] trait so
//! identical code paths run against wall-clock time (live worker) or virtual
//! time (in-situ simulation, §3.4).

pub mod aimd;
pub mod backoff;
pub mod clock;
pub mod forecast;
pub mod loghist;
pub mod semaphore;
pub mod shardmap;
pub mod stats;
pub mod storage;
pub mod taskpool;
pub mod tokenbucket;

pub use aimd::Aimd;
pub use backoff::{Backoff, BackoffConfig};
pub use clock::{Clock, ManualClock, SystemClock, TimeMs};
pub use forecast::ArrivalForecaster;
pub use loghist::LogHistogram;
pub use semaphore::{Semaphore, SemaphorePermit};
pub use shardmap::ShardedMap;
pub use stats::{ExpMovingAvg, Histogram, MovingWindow, Welford};
pub use storage::{RealStorage, Storage, StorageFile};
pub use taskpool::TaskPool;
pub use tokenbucket::TokenBucket;
