//! Short-horizon arrival forecasting for proactive scaling.
//!
//! "Taming Cold Starts with Model Predictive Control" (arXiv:2508.07640)
//! argues that proactive provisioning beats reactive thresholds when the
//! controller can see even a few intervals ahead. The [`ArrivalForecaster`]
//! here is the smallest useful version of that idea: arrivals are bucketed
//! into fixed intervals, the recent buckets feed a least-squares trend
//! (re-using the [`Welford`] accumulator for the moments), and the forecast
//! extrapolates the trend a short horizon forward, clamped at zero.
//!
//! Everything is driven by explicit bucket pushes — no wall clock — so a
//! forecaster replayed over the same counts produces bit-identical
//! forecasts, which the autoscaler's determinism gate depends on.

use crate::stats::Welford;
use std::collections::VecDeque;

/// Sliding-window arrival counter with linear-trend extrapolation.
#[derive(Debug, Clone)]
pub struct ArrivalForecaster {
    /// Most recent `window` per-bucket arrival counts, oldest first.
    buckets: VecDeque<u64>,
    window: usize,
    /// Total arrivals ever recorded (diagnostics).
    total: u64,
}

impl ArrivalForecaster {
    /// A forecaster remembering the last `window` buckets (≥ 2).
    pub fn new(window: usize) -> Self {
        let window = window.max(2);
        Self {
            buckets: VecDeque::with_capacity(window),
            window,
            total: 0,
        }
    }

    /// Close out one interval with its arrival count.
    pub fn push_bucket(&mut self, count: u64) {
        if self.buckets.len() == self.window {
            self.buckets.pop_front();
        }
        self.buckets.push_back(count);
        self.total += count;
    }

    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean arrivals per bucket over the window.
    pub fn mean(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        let mut w = Welford::new();
        for &c in &self.buckets {
            w.push(c as f64);
        }
        w.mean()
    }

    /// Least-squares slope (arrivals per bucket, per bucket) over the
    /// window. Positive while a burst is ramping, negative as it decays.
    pub fn slope(&self) -> f64 {
        let n = self.buckets.len();
        if n < 2 {
            return 0.0;
        }
        // Ordinary least squares of count against bucket index. The x
        // moments come from the index sequence 0..n; the covariance
        // accumulates alongside a Welford pass over the counts.
        let mut xw = Welford::new();
        let mut yw = Welford::new();
        let mut sxy = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            xw.push(i as f64);
            yw.push(c as f64);
            sxy += (i as f64) * (c as f64);
        }
        let nf = n as f64;
        let cov = sxy / nf - xw.mean() * yw.mean();
        let varx = xw.variance(); // Welford reports population variance
        if varx <= f64::EPSILON {
            return 0.0;
        }
        cov / varx
    }

    /// Forecast arrivals `steps_ahead` buckets past the newest one
    /// (1 = the very next bucket), by linear extrapolation of the window
    /// trend, clamped at zero. With fewer than two buckets the forecast
    /// falls back to the window mean.
    pub fn forecast(&self, steps_ahead: usize) -> f64 {
        let n = self.buckets.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.buckets[0] as f64;
        }
        // Trend line through (index, count); extrapolate from the last
        // index n-1 forward.
        let slope = self.slope();
        let mean = self.mean();
        let mid = (n as f64 - 1.0) / 2.0;
        let predicted = mean + slope * ((n as f64 - 1.0 + steps_ahead as f64) - mid);
        predicted.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_forecasts_zero() {
        let f = ArrivalForecaster::new(8);
        assert!(f.is_empty());
        assert_eq!(f.forecast(1), 0.0);
        assert_eq!(f.slope(), 0.0);
    }

    #[test]
    fn flat_load_forecasts_the_mean() {
        let mut f = ArrivalForecaster::new(8);
        for _ in 0..8 {
            f.push_bucket(10);
        }
        assert!((f.mean() - 10.0).abs() < 1e-9);
        assert!(f.slope().abs() < 1e-9, "flat series has no trend");
        assert!((f.forecast(1) - 10.0).abs() < 1e-9);
        assert!((f.forecast(4) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_is_extrapolated() {
        let mut f = ArrivalForecaster::new(8);
        for c in [0u64, 2, 4, 6, 8, 10] {
            f.push_bucket(c);
        }
        assert!((f.slope() - 2.0).abs() < 1e-9, "slope {}", f.slope());
        // Last observed bucket was 10; the next should forecast ≈ 12.
        assert!((f.forecast(1) - 12.0).abs() < 1e-6, "got {}", f.forecast(1));
        assert!((f.forecast(3) - 16.0).abs() < 1e-6);
    }

    #[test]
    fn decay_clamps_at_zero() {
        let mut f = ArrivalForecaster::new(8);
        for c in [8u64, 6, 4, 2] {
            f.push_bucket(c);
        }
        assert!(f.slope() < 0.0);
        assert_eq!(f.forecast(10), 0.0, "forecasts never go negative");
    }

    #[test]
    fn window_slides() {
        let mut f = ArrivalForecaster::new(3);
        for c in [100u64, 100, 100, 0, 0, 0] {
            f.push_bucket(c);
        }
        assert_eq!(f.len(), 3);
        assert!((f.mean() - 0.0).abs() < 1e-9, "old burst aged out");
        assert_eq!(f.total(), 300);
    }

    #[test]
    fn deterministic_replay() {
        let counts = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let run = || {
            let mut f = ArrivalForecaster::new(6);
            for &c in &counts {
                f.push_bucket(c);
            }
            (
                f.forecast(1).to_bits(),
                f.forecast(2).to_bits(),
                f.slope().to_bits(),
            )
        };
        assert_eq!(run(), run(), "forecast is a pure function of its inputs");
    }
}
