//! A sharded concurrent hash map.
//!
//! The paper's container pool is "implemented using the `dashmap` crate,
//! which is a concurrent associative hashmap — this provides noticeable
//! latency improvements compared to a mutex or read-write lock" (§5). We
//! build the same structure from scratch: the key space is split across
//! `2^k` independently locked shards so that concurrent invocations touching
//! different functions never contend.

use parking_lot::RwLock;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

/// FxHash: the multiply-xor hash used throughout rustc. Keys in the control
/// plane are short strings (function FQNs) and small integers (container
/// ids); Fx beats SipHash by a wide margin there and HashDoS is irrelevant
/// for a trusted in-process map.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Number of shards. 32 is enough to make contention negligible for the
/// worker's thread counts (tens of dispatch threads) while keeping the
/// memory overhead of empty maps trivial.
const SHARD_BITS: u32 = 5;
const NUM_SHARDS: usize = 1 << SHARD_BITS;

/// A concurrent hash map sharded over [`NUM_SHARDS`] reader-writer locks.
///
/// Values are returned by clone; in the control plane they are `Arc`s, so a
/// lookup is a refcount bump and the lock is never held across user code.
pub struct ShardedMap<K, V> {
    shards: Box<[RwLock<HashMap<K, V, FxBuildHasher>>]>,
    hasher: FxBuildHasher,
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    pub fn new() -> Self {
        let shards = (0..NUM_SHARDS)
            .map(|_| RwLock::new(HashMap::with_hasher(FxBuildHasher::default())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            hasher: FxBuildHasher::default(),
        }
    }

    #[inline]
    fn shard_for<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        // Use the top bits: Fx mixes entropy upward.
        (self.hasher.hash_one(key) >> (64 - SHARD_BITS)) as usize
    }

    /// Insert, returning the previous value if the key was present.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shards[self.shard_for(&key)].write().insert(key, value)
    }

    /// Remove, returning the value if present.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_for(key)].write().remove(key)
    }

    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_for(key)].read().contains_key(key)
    }

    /// Run `f` on the value without cloning it. Returns `None` if absent.
    pub fn get_with<Q, R>(&self, key: &Q, f: impl FnOnce(&V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_for(key)].read().get(key).map(f)
    }

    /// Mutate the value in place under the shard's write lock.
    pub fn update<Q, R>(&self, key: &Q, f: impl FnOnce(&mut V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_for(key)].write().get_mut(key).map(f)
    }

    /// Get the value for `key`, inserting `default()` first if absent, then
    /// run `f` on a mutable reference to it.
    pub fn update_or_insert<R>(
        &self,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let mut shard = self.shards[self.shard_for(&key)].write();
        f(shard.entry(key).or_insert_with(default))
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
    }

    /// Remove every entry for which `pred` returns false.
    pub fn retain(&self, mut pred: impl FnMut(&K, &mut V) -> bool) {
        for s in self.shards.iter() {
            s.write().retain(|k, v| pred(k, v));
        }
    }

    /// Visit every entry under shard read locks. `f` must not re-enter the
    /// map for the same shard (it would deadlock on the shard lock).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            for (k, v) in s.read().iter() {
                f(k, v);
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// Lookup by clone — for `Arc` values this is a refcount bump.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_for(key)].read().get(key).cloned()
    }

    /// A point-in-time copy of all entries. Consistent per shard, not
    /// globally — fine for metrics and eviction scans.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        for s in self.shards.iter() {
            for (k, v) in s.read().iter() {
                out.push((k.clone(), v.clone()));
            }
        }
        out
    }

    /// Clone of all keys.
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        for s in self.shards.iter() {
            out.extend(s.read().keys().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_get_remove() {
        let m: ShardedMap<String, u32> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.get("a"), Some(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove("a"), Some(2));
        assert_eq!(m.get("a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn update_in_place() {
        let m: ShardedMap<&'static str, Vec<u32>> = ShardedMap::new();
        m.insert("k", vec![]);
        m.update("k", |v| v.push(7));
        assert_eq!(m.get_with("k", |v| v.len()), Some(1));
        assert_eq!(m.update("missing", |v| v.push(0)), None);
    }

    #[test]
    fn update_or_insert_creates_default() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        let r = m.update_or_insert(
            9,
            || 100,
            |v| {
                *v += 1;
                *v
            },
        );
        assert_eq!(r, 101);
        let r = m.update_or_insert(
            9,
            || 100,
            |v| {
                *v += 1;
                *v
            },
        );
        assert_eq!(r, 102);
    }

    #[test]
    fn retain_filters() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        m.retain(|_, v| *v % 2 == 0);
        assert_eq!(m.len(), 50);
        assert!(m.get(&2).is_some());
        assert!(m.get(&3).is_none());
    }

    #[test]
    fn snapshot_and_keys() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        for i in 0..10 {
            m.insert(i, i * 10);
        }
        let mut snap = m.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 10);
        assert_eq!(snap[3], (3, 30));
        let mut keys = m.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.insert(t * 1000 + i, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.len(), 8000);
    }

    #[test]
    fn concurrent_update_or_insert_is_atomic() {
        let m: Arc<ShardedMap<&'static str, u64>> = Arc::new(ShardedMap::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.update_or_insert("ctr", || 0, |v| *v += 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.get("ctr"), Some(80_000));
    }

    #[test]
    fn fx_hash_spreads_shards() {
        let m: ShardedMap<u64, ()> = ShardedMap::new();
        let mut used = std::collections::HashSet::new();
        for i in 0..4096u64 {
            used.insert(m.shard_for(&i));
        }
        // All 32 shards should be hit by a few thousand sequential keys.
        assert_eq!(used.len(), NUM_SHARDS);
    }
}
