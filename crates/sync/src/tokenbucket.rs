//! A token-bucket rate limiter over an abstract [`Clock`].
//!
//! Used by the queue regulator to cap the discharge rate of invocations into
//! the container backend ("other factors can also be used to regulate the
//! queue discharge rate", §4.1), and by the load generator to shape open-loop
//! arrival processes.

use crate::clock::{Clock, TimeMs};
use parking_lot::Mutex;
use std::sync::Arc;

struct State {
    tokens: f64,
    last_refill: TimeMs,
}

/// Token bucket: refills at `rate_per_sec`, holds at most `burst` tokens.
pub struct TokenBucket {
    rate_per_ms: f64,
    burst: f64,
    state: Mutex<State>,
    clock: Arc<dyn Clock>,
}

impl TokenBucket {
    pub fn new(rate_per_sec: f64, burst: f64, clock: Arc<dyn Clock>) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0);
        let now = clock.now_ms();
        Self {
            rate_per_ms: rate_per_sec / 1000.0,
            burst,
            state: Mutex::new(State {
                tokens: burst,
                last_refill: now,
            }),
            clock,
        }
    }

    fn refill(&self, st: &mut State) {
        let now = self.clock.now_ms();
        let elapsed = now.saturating_sub(st.last_refill) as f64;
        st.tokens = (st.tokens + elapsed * self.rate_per_ms).min(self.burst);
        st.last_refill = now;
    }

    /// Take one token if available.
    pub fn try_take(&self) -> bool {
        self.try_take_n(1.0)
    }

    /// Take `n` tokens if available.
    pub fn try_take_n(&self, n: f64) -> bool {
        let mut st = self.state.lock();
        self.refill(&mut st);
        if st.tokens >= n {
            st.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Milliseconds until `n` tokens will be available (0 if already).
    pub fn wait_hint_ms(&self, n: f64) -> u64 {
        let mut st = self.state.lock();
        self.refill(&mut st);
        if st.tokens >= n {
            0
        } else {
            ((n - st.tokens) / self.rate_per_ms).ceil() as u64
        }
    }

    /// Current token count (post-refill).
    pub fn tokens(&self) -> f64 {
        let mut st = self.state.lock();
        self.refill(&mut st);
        st.tokens
    }

    /// Overwrite the level with a snapshot value (clamped to `[0, burst]`).
    /// Refill resumes from the current clock reading, so a restored bucket
    /// behaves as if it had held `tokens` at the instant of restore.
    pub fn restore(&self, tokens: f64) {
        let mut st = self.state.lock();
        st.tokens = tokens.clamp(0.0, self.burst);
        st.last_refill = self.clock.now_ms();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn bucket(rate: f64, burst: f64) -> (Arc<ManualClock>, TokenBucket) {
        let clock = Arc::new(ManualClock::new());
        let tb = TokenBucket::new(rate, burst, clock.clone());
        (clock, tb)
    }

    #[test]
    fn starts_full() {
        let (_c, tb) = bucket(10.0, 5.0);
        for _ in 0..5 {
            assert!(tb.try_take());
        }
        assert!(!tb.try_take());
    }

    #[test]
    fn refills_over_time() {
        let (c, tb) = bucket(10.0, 5.0); // 10 tokens/sec
        for _ in 0..5 {
            tb.try_take();
        }
        assert!(!tb.try_take());
        c.advance(100); // 1 token
        assert!(tb.try_take());
        assert!(!tb.try_take());
    }

    #[test]
    fn burst_caps_refill() {
        let (c, tb) = bucket(1000.0, 3.0);
        c.advance(60_000);
        assert!((tb.tokens() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wait_hint_accurate() {
        let (c, tb) = bucket(10.0, 1.0);
        assert!(tb.try_take());
        let hint = tb.wait_hint_ms(1.0);
        assert_eq!(hint, 100);
        c.advance(hint);
        assert!(tb.try_take());
    }

    #[test]
    fn take_n_fractional() {
        let (_c, tb) = bucket(10.0, 2.5);
        assert!(tb.try_take_n(2.5));
        assert!(!tb.try_take_n(0.1));
    }
}
