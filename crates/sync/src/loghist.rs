//! Mergeable log-linear histogram (HDR-style).
//!
//! §5 exports per-component latency distributions; aggregating them across
//! workers needs a sketch that (a) records in constant time on the hot
//! path, (b) bounds relative error so exported percentiles are trustworthy,
//! and (c) merges losslessly so a load balancer can combine per-worker
//! histograms into one cluster view. A log-linear bucket layout gives all
//! three: each power-of-two range is split into [`SUB`] linear sub-buckets,
//! so the bucket width at value `v` is at most `v / SUB` and the midpoint
//! representative is within [`LogHistogram::REL_ERROR`] of any sample in
//! the bucket.
//!
//! Values are unitless `u64`s; the control plane records microseconds.

use std::collections::BTreeMap;

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per power-of-two range.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: an exact linear region `[0, 2*SUB)` plus `SUB`
/// buckets for each octave up to `u64::MAX`.
const NBUCKETS: usize = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;

/// Bucket index for `v`. Exact for `v < 2*SUB`; log-linear above.
#[inline]
fn index_of(v: u64) -> usize {
    if v < 2 * SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS + 1
        let shift = exp - SUB_BITS;
        let sub = (v >> shift) as usize; // in [SUB, 2*SUB)
        (shift as usize) * SUB as usize + sub
    }
}

/// Inclusive lower edge and exclusive upper edge of bucket `idx`.
#[inline]
fn bounds_of(idx: usize) -> (u64, u64) {
    if idx < (2 * SUB) as usize {
        (idx as u64, idx as u64 + 1)
    } else {
        let shift = (idx as u64 / SUB) - 1;
        let sub = idx as u64 - shift * SUB; // in [SUB, 2*SUB)
        let lower = sub << shift;
        // The topmost bucket's upper edge would exceed u64::MAX; clamp it.
        (lower, lower.saturating_add(1u64 << shift))
    }
}

/// Midpoint representative of bucket `idx`.
#[inline]
fn rep_of(idx: usize) -> f64 {
    let (lo, hi) = bounds_of(idx);
    if hi - lo == 1 {
        lo as f64
    } else {
        (lo as f64 + hi as f64) / 2.0
    }
}

/// A mergeable log-linear histogram over `u64` samples.
///
/// Constant-time [`record`](LogHistogram::record), lossless
/// [`merge`](LogHistogram::merge), and percentile queries whose relative
/// error is bounded by [`LogHistogram::REL_ERROR`].
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for LogHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts == other.counts
    }
}

impl LogHistogram {
    /// Worst-case relative error of a percentile estimate (vs. the exact
    /// sample at the same rank): half a bucket width over the bucket's
    /// lower edge, `2^-(SUB_BITS+1)`.
    pub const REL_ERROR: f64 = 1.0 / (2 * SUB) as f64;

    pub fn new() -> Self {
        Self {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample. Constant time: an index computation from the
    /// bit-length of `v` plus one array increment.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(v)] += n;
        self.total += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-percentile (`q` in `[0,1]`) by nearest rank, returned as the
    /// midpoint of the bucket holding that rank — within
    /// [`LogHistogram::REL_ERROR`] of the exact sample at the same rank.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return rep_of(i);
            }
        }
        self.max as f64
    }

    /// Samples whose bucket lies at or below the bucket of `v` — the `le`
    /// cumulative count for exposition, exact up to bucket granularity.
    pub fn count_le(&self, v: u64) -> u64 {
        let idx = index_of(v);
        self.counts[..=idx].iter().sum()
    }

    /// Add all of `other`'s samples into `self`. Lossless: recording the
    /// union of two sample sets yields an identical histogram.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_edge, upper_edge, count)`, ascending.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bounds_of(i);
                (lo, hi, c)
            })
    }
}

/// Sparse wire form: only non-empty buckets travel. This is what crosses
/// the worker → load-balancer scrape hop.
#[derive(serde::Serialize, serde::Deserialize)]
struct SparseHist {
    bins: BTreeMap<usize, u64>,
    sum: u64,
    min: u64,
    max: u64,
}

impl From<&LogHistogram> for SparseHist {
    fn from(h: &LogHistogram) -> Self {
        Self {
            bins: h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
            sum: h.sum,
            min: h.min,
            max: h.max,
        }
    }
}

impl From<SparseHist> for LogHistogram {
    fn from(s: SparseHist) -> Self {
        let mut h = LogHistogram::new();
        for (i, c) in s.bins {
            if i < NBUCKETS {
                h.counts[i] = c;
                h.total += c;
            }
        }
        h.sum = s.sum;
        h.min = s.min;
        h.max = s.max;
        h
    }
}

impl serde::Serialize for LogHistogram {
    fn serialize(&self) -> serde::Value {
        serde::Serialize::serialize(&SparseHist::from(self))
    }
}

impl serde::Deserialize for LogHistogram {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {
        SparseHist::deserialize(v).map(LogHistogram::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 7, 100, 127] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        // Values below 2*SUB land in width-1 buckets: percentiles exact.
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(1.0), 127.0);
        assert_eq!(h.percentile(0.5), 2.0);
    }

    #[test]
    fn index_bounds_roundtrip() {
        // Every representable value maps into a bucket whose bounds
        // contain it, and bucket edges tile the line without gaps.
        for v in (0u64..4096).chain([1 << 20, (1 << 20) + 123, u64::MAX / 2, u64::MAX]) {
            let idx = index_of(v);
            let (lo, hi) = bounds_of(idx);
            assert!(lo <= v, "v={v} idx={idx} lo={lo}");
            // The topmost bucket's upper edge is clamped to u64::MAX, so it
            // is inclusive there.
            assert!(
                v < hi || (hi == u64::MAX && v == u64::MAX),
                "v={v} idx={idx} hi={hi}"
            );
        }
        for idx in 0..NBUCKETS - 1 {
            let (_, hi) = bounds_of(idx);
            let (lo_next, _) = bounds_of(idx + 1);
            assert_eq!(hi, lo_next, "buckets must tile at idx {idx}");
        }
    }

    #[test]
    fn relative_error_bound_holds() {
        let mut h = LogHistogram::new();
        let v = 1_000_003u64;
        h.record(v);
        let p = h.percentile(0.5);
        let rel = (p - v as f64).abs() / v as f64;
        assert!(rel <= LogHistogram::REL_ERROR, "rel error {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut u = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i + 17;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
        assert_eq!(a.count(), 1000);
    }

    fn hist_of(samples: impl IntoIterator<Item = u64>) -> LogHistogram {
        let mut h = LogHistogram::new();
        for v in samples {
            h.record(v);
        }
        h
    }

    #[test]
    fn merge_is_commutative() {
        let a = hist_of((0..300u64).map(|i| i * 7 + 3));
        let b = hist_of((0..200u64).map(|i| i * i));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.percentile(0.99), ba.percentile(0.99));
    }

    #[test]
    fn merge_is_associative() {
        let a = hist_of([1u64, 50, 900, 12_345]);
        let b = hist_of((0..100u64).map(|i| i * 1000));
        let c = hist_of([u64::MAX, 0, 7]);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_identity_is_the_empty_histogram() {
        let a = hist_of((0..50u64).map(|i| i * 31));
        let mut merged = a.clone();
        merged.merge(&LogHistogram::new());
        assert_eq!(merged, a);
        let mut empty = LogHistogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn count_le_is_monotone_and_complete() {
        let mut h = LogHistogram::new();
        for v in [5u64, 50, 500, 5_000, 50_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(u64::MAX), h.count());
        assert_eq!(h.count_le(4), 0);
        assert_eq!(h.count_le(5), 1);
        let mut prev = 0;
        for edge in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            let c = h.count_le(edge);
            assert!(c >= prev, "count_le must be monotone");
            prev = c;
        }
    }

    #[test]
    fn serde_roundtrip_is_lossless() {
        let mut h = LogHistogram::new();
        for i in 0..500u64 {
            h.record(i * 37 + 11);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        // Sparse form stays small relative to the 3k+ dense buckets.
        assert!(
            json.len() < 20_000,
            "sparse encoding ballooned: {}",
            json.len()
        );
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(999, 5);
        for _ in 0..5 {
            b.record(999);
        }
        assert_eq!(a, b);
        a.record_n(1, 0);
        assert_eq!(a.count(), 5);
    }
}
