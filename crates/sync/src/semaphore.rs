//! A counting semaphore with dynamically adjustable capacity.
//!
//! The worker's *concurrency regulator* (§4.1) bounds the number of
//! concurrently running functions. The bound changes at runtime under the
//! AIMD policy, so the semaphore supports growing and shrinking its permit
//! count while waiters are queued; shrinking below the number of permits
//! currently held simply delays future acquisitions until enough permits
//! drain back.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct State {
    /// Permits currently available.
    available: isize,
    /// Configured capacity; `available` can go negative after a shrink.
    capacity: usize,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

/// A counting semaphore. Cloning shares the same permit pool.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Inner>,
}

/// An RAII permit; the permit returns to the pool on drop.
pub struct SemaphorePermit {
    inner: Arc<Inner>,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    available: permits as isize,
                    capacity: permits,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Block until a permit is available.
    pub fn acquire(&self) -> SemaphorePermit {
        let mut st = self.inner.state.lock();
        while st.available <= 0 {
            self.inner.cv.wait(&mut st);
        }
        st.available -= 1;
        SemaphorePermit {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Take a permit if one is free, without blocking.
    pub fn try_acquire(&self) -> Option<SemaphorePermit> {
        let mut st = self.inner.state.lock();
        if st.available > 0 {
            st.available -= 1;
            Some(SemaphorePermit {
                inner: Arc::clone(&self.inner),
            })
        } else {
            None
        }
    }

    /// Change capacity to `new`. Outstanding permits are unaffected; the
    /// delta is applied to the available count, which may go negative.
    pub fn resize(&self, new: usize) {
        let mut st = self.inner.state.lock();
        let delta = new as isize - st.capacity as isize;
        st.capacity = new;
        st.available += delta;
        if delta > 0 {
            self.inner.cv.notify_all();
        }
    }

    pub fn capacity(&self) -> usize {
        self.inner.state.lock().capacity
    }

    /// Permits currently available (clamped at zero: a post-shrink debt is
    /// reported as zero availability).
    pub fn available(&self) -> usize {
        self.inner.state.lock().available.max(0) as usize
    }

    /// Permits currently held by users.
    pub fn in_use(&self) -> usize {
        let st = self.inner.state.lock();
        (st.capacity as isize - st.available).max(0) as usize
    }
}

impl Drop for SemaphorePermit {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.available += 1;
        drop(st);
        self.inner.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn try_acquire_respects_capacity() {
        let s = Semaphore::new(2);
        let a = s.try_acquire().unwrap();
        let _b = s.try_acquire().unwrap();
        assert!(s.try_acquire().is_none());
        assert_eq!(s.in_use(), 2);
        drop(a);
        assert!(s.try_acquire().is_some());
    }

    #[test]
    fn acquire_blocks_until_release() {
        let s = Semaphore::new(1);
        let p = s.acquire();
        let s2 = s.clone();
        let t = thread::spawn(move || {
            let _p = s2.acquire();
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "second acquire must block");
        drop(p);
        t.join().unwrap();
    }

    #[test]
    fn resize_grow_wakes_waiters() {
        let s = Semaphore::new(0);
        let s2 = s.clone();
        let t = thread::spawn(move || {
            let _p = s2.acquire();
        });
        thread::sleep(Duration::from_millis(20));
        s.resize(1);
        t.join().unwrap();
    }

    #[test]
    fn resize_shrink_creates_debt() {
        let s = Semaphore::new(2);
        let a = s.acquire();
        let b = s.acquire();
        s.resize(1);
        assert_eq!(s.available(), 0);
        drop(a);
        // One released, but capacity is 1 and b still holds it.
        assert!(s.try_acquire().is_none());
        drop(b);
        assert!(s.try_acquire().is_some());
    }

    #[test]
    fn concurrency_never_exceeds_capacity() {
        let s = Semaphore::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let (s, running, peak) = (s.clone(), Arc::clone(&running), Arc::clone(&peak));
                thread::spawn(move || {
                    for _ in 0..50 {
                        let _p = s.acquire();
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::hint::spin_loop();
                        running.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 4);
    }
}
