//! Background task execution.
//!
//! §3.3: the worker handles "various aspects of the function's lifecycle
//! asynchronously off the critical path ... through background worker
//! threads for certain tasks". [`TaskPool`] provides:
//!
//! * a pool of job threads consuming one-off closures from a crossbeam
//!   channel (result logging, container teardown, metric flushes), and
//! * named periodic tasks on dedicated timer threads (keep-alive eviction
//!   sweeps, AIMD control intervals, status reporting).
//!
//! Shutdown is cooperative: periodic tasks observe a shared flag between
//! ticks, job threads drain the channel and exit when it disconnects.

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of background job threads plus registered periodic tasks.
pub struct TaskPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    periodic: Mutex<Vec<JoinHandle<()>>>,
    shutdown: Arc<AtomicBool>,
}

impl TaskPool {
    /// Spawn `threads` job-consumer threads.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel::unbounded();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("iluvatar-bg-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn background worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            periodic: Mutex::new(Vec::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Queue a one-off job. Returns false if the pool is shutting down.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Run `tick` every `period`, starting one period from now, on a
    /// dedicated thread named `name`. The task stops at pool shutdown.
    pub fn spawn_periodic(
        &self,
        name: &str,
        period: Duration,
        mut tick: impl FnMut() + Send + 'static,
    ) {
        let shutdown = Arc::clone(&self.shutdown);
        let handle = std::thread::Builder::new()
            .name(format!("iluvatar-{name}"))
            .spawn(move || {
                // Sleep in short slices so shutdown latency stays bounded
                // even for long periods.
                let slice = period.min(Duration::from_millis(50));
                let mut acc = Duration::ZERO;
                loop {
                    while acc < period {
                        if shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(slice);
                        acc += slice;
                    }
                    acc = Duration::ZERO;
                    if shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    tick();
                }
            })
            .expect("spawn periodic task");
        self.periodic.lock().push(handle);
    }

    /// True once [`TaskPool::shutdown`] has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Stop periodic tasks, drain queued jobs, and join all threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Dropping the sender disconnects job threads after the drain.
        self.tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for h in self.periodic.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn jobs_run() {
        let pool = TaskPool::new(4);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let n = Arc::clone(&n);
            assert!(pool.spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // shutdown drains the queue
        assert_eq!(n.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn periodic_ticks() {
        let pool = TaskPool::new(1);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        pool.spawn_periodic("test-tick", Duration::from_millis(10), move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(120));
        drop(pool);
        let ticks = n.load(Ordering::SeqCst);
        assert!(ticks >= 3, "expected a few ticks, got {ticks}");
    }

    #[test]
    fn spawn_after_shutdown_fails() {
        let mut pool = TaskPool::new(1);
        pool.shutdown();
        assert!(!pool.spawn(|| {}));
        assert!(pool.is_shutting_down());
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut pool = TaskPool::new(2);
        pool.spawn(|| {});
        pool.shutdown();
        pool.shutdown();
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = TaskPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let (b, n) = (Arc::clone(&barrier), Arc::clone(&n));
            pool.spawn(move || {
                // All four must rendezvous — only possible with >= 4 threads.
                b.wait();
                n.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }
}
