//! Disk fault injection under the write-ahead log.
//!
//! [`FaultyStorage`] wraps any [`Storage`] and makes the disk fail, stall,
//! fill, and lie on a seeded [`DiskFaultPlan`]: torn (short) writes, write
//! failures (ENOSPC), fsync errors, fsync latency stalls, and read bit-rot.
//! Decisions follow the same replayable discipline as [`crate::FaultPlan`]:
//! each site keeps an atomic occurrence counter and fires as a pure
//! function of `(seed, site, occurrence index)` — a failing chaos run can
//! be replayed byte-for-byte from its seed.

use crate::{mix, site_hash, FaultSpec, FaultStats};
use iluvatar_sync::storage::{Storage, StorageFile};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Disk fault sites, in stats order.
pub mod disk_sites {
    /// A write lands only partially (short write), then errors. Recovery
    /// must quarantine the torn frame and continue.
    pub const WAL_WRITE_TORN: &str = "wal_write_torn";
    /// A write fails outright with ENOSPC (disk full window).
    pub const WAL_WRITE_FAIL: &str = "wal_write_fail";
    /// fsync returns an error (the dreaded fsyncgate failure mode).
    pub const WAL_FSYNC_FAIL: &str = "wal_fsync_fail";
    /// fsync blocks for `stall_ms` before succeeding (device stall).
    pub const WAL_FSYNC_STALL: &str = "wal_fsync_stall";
    /// A whole-file read comes back with one bit flipped (bit-rot).
    pub const WAL_READ_BITROT: &str = "wal_read_bitrot";

    pub const ALL: [&str; 5] = [
        WAL_WRITE_TORN,
        WAL_WRITE_FAIL,
        WAL_FSYNC_FAIL,
        WAL_FSYNC_STALL,
        WAL_READ_BITROT,
    ];
}

/// The seeded disk-fault plan for one chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskFaultPlanConfig {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    #[serde(default)]
    pub write_torn: FaultSpec,
    #[serde(default)]
    pub write_fail: FaultSpec,
    #[serde(default)]
    pub fsync_fail: FaultSpec,
    #[serde(default)]
    pub fsync_stall: FaultSpec,
    #[serde(default)]
    pub read_bitrot: FaultSpec,
    /// How long a fired `fsync_stall` blocks, ms.
    #[serde(default)]
    pub stall_ms: u64,
}

impl Default for DiskFaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            write_torn: FaultSpec::never(),
            write_fail: FaultSpec::never(),
            fsync_fail: FaultSpec::never(),
            fsync_stall: FaultSpec::never(),
            read_bitrot: FaultSpec::never(),
            stall_ms: 250,
        }
    }
}

struct SiteState {
    name: &'static str,
    seen: AtomicU64,
    fired: AtomicU64,
}

/// Seeded disk-fault decisions with per-site occurrence counters.
pub struct DiskFaultPlan {
    cfg: DiskFaultPlanConfig,
    states: Vec<SiteState>,
}

impl DiskFaultPlan {
    pub fn new(cfg: DiskFaultPlanConfig) -> Self {
        let states = disk_sites::ALL
            .iter()
            .map(|&name| SiteState {
                name,
                seen: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            })
            .collect();
        Self { cfg, states }
    }

    pub fn config(&self) -> &DiskFaultPlanConfig {
        &self.cfg
    }

    fn spec_of(&self, site: &str) -> &FaultSpec {
        match site {
            disk_sites::WAL_WRITE_TORN => &self.cfg.write_torn,
            disk_sites::WAL_WRITE_FAIL => &self.cfg.write_fail,
            disk_sites::WAL_FSYNC_FAIL => &self.cfg.fsync_fail,
            disk_sites::WAL_FSYNC_STALL => &self.cfg.fsync_stall,
            disk_sites::WAL_READ_BITROT => &self.cfg.read_bitrot,
            _ => panic!("unknown disk fault site {site}"),
        }
    }

    /// Take the next occurrence at `site` and decide whether it faults.
    /// Deterministic in `(seed, site, occurrence index)`.
    pub fn decide(&self, site: &str) -> bool {
        let spec = self.spec_of(site);
        let state = self
            .states
            .iter()
            .find(|s| s.name == site)
            .expect("site registered");
        let idx = state.seen.fetch_add(1, Ordering::Relaxed);
        let fire = if spec.scheduled(idx) {
            true
        } else if spec.prob > 0.0 {
            let unit =
                (mix(self.cfg.seed ^ site_hash(site) ^ idx.wrapping_mul(0xA076_1D64_78BD_642F))
                    >> 11) as f64
                    / (1u64 << 53) as f64;
            unit < spec.prob
        } else {
            false
        };
        if fire {
            state.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    pub fn stats(&self) -> FaultStats {
        FaultStats {
            sites: self
                .states
                .iter()
                .map(|s| {
                    (
                        s.name.to_string(),
                        s.seen.load(Ordering::Relaxed),
                        s.fired.load(Ordering::Relaxed),
                    )
                })
                .collect(),
        }
    }
}

/// A [`Storage`] that injects the plan's disk faults around an inner
/// storage. Drop-in: thread it under the worker's WAL via
/// `Worker::new_with_storage`.
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    plan: Arc<DiskFaultPlan>,
}

impl FaultyStorage {
    pub fn new(inner: Arc<dyn Storage>, cfg: DiskFaultPlanConfig) -> Self {
        Self {
            inner,
            plan: Arc::new(DiskFaultPlan::new(cfg)),
        }
    }

    /// Share an externally owned plan (a session that also polls stats).
    pub fn with_plan(inner: Arc<dyn Storage>, plan: Arc<DiskFaultPlan>) -> Self {
        Self { inner, plan }
    }

    pub fn plan(&self) -> Arc<DiskFaultPlan> {
        Arc::clone(&self.plan)
    }
}

struct FaultyFile {
    inner: Box<dyn StorageFile>,
    plan: Arc<DiskFaultPlan>,
    stall_ms: u64,
}

impl StorageFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.plan.decide(disk_sites::WAL_WRITE_TORN) {
            // Half the bytes land before the failure: exactly the torn
            // frame a power cut mid-write leaves behind.
            let half = buf.len() / 2;
            self.inner.write_all(&buf[..half])?;
            let _ = self.inner.flush();
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected torn write",
            ));
        }
        if self.plan.decide(disk_sites::WAL_WRITE_FAIL) {
            return Err(io::Error::other("injected write failure (ENOSPC)"));
        }
        self.inner.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.plan.decide(disk_sites::WAL_FSYNC_STALL) {
            std::thread::sleep(Duration::from_millis(self.stall_ms));
        }
        if self.plan.decide(disk_sites::WAL_FSYNC_FAIL) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync()
    }
}

impl Storage for FaultyStorage {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            plan: Arc::clone(&self.plan),
            stall_ms: self.plan.cfg.stall_ms,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = self.inner.read(path)?;
        if !buf.is_empty() && self.plan.decide(disk_sites::WAL_READ_BITROT) {
            // Deterministic rot: flip one bit in the middle of the file.
            let at = buf.len() / 2;
            buf[at] ^= 0x10;
        }
        Ok(buf)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::storage::RealStorage;

    fn tmp(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("iluvatar-chaos-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn torn_write_lands_half_then_errors() {
        let d = tmp("torn");
        let p = d.join("wal.log");
        let s = FaultyStorage::new(
            Arc::new(RealStorage),
            DiskFaultPlanConfig {
                write_torn: FaultSpec::on_occurrences(vec![1]),
                ..Default::default()
            },
        );
        let mut f = s.open_append(&p).unwrap();
        f.write_all(b"aaaa").unwrap();
        let err = f.write_all(b"bbbbbbbb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        f.write_all(b"cccc").unwrap();
        drop(f);
        // First write whole, second torn in half, third whole.
        assert_eq!(s.read(&p).unwrap(), b"aaaabbbbcccc");
        assert_eq!(s.plan().stats().fired(disk_sites::WAL_WRITE_TORN), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bitrot_flips_one_bit_deterministically() {
        let d = tmp("rot");
        let p = d.join("wal.log");
        let s = FaultyStorage::new(
            Arc::new(RealStorage),
            DiskFaultPlanConfig {
                read_bitrot: FaultSpec::on_occurrences(vec![0]),
                ..Default::default()
            },
        );
        let mut f = s.open_append(&p).unwrap();
        f.write_all(&[0u8; 8]).unwrap();
        drop(f);
        let rotted = s.read(&p).unwrap();
        assert_eq!(rotted, [0, 0, 0, 0, 0x10, 0, 0, 0]);
        // Occurrence 1 is not scheduled: the same read is clean again.
        assert_eq!(s.read(&p).unwrap(), [0u8; 8]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn every_nth_fires_periodically_and_fsync_faults_inject() {
        let s = FaultyStorage::new(
            Arc::new(RealStorage),
            DiskFaultPlanConfig {
                fsync_fail: FaultSpec::every_nth(3),
                stall_ms: 0,
                ..Default::default()
            },
        );
        let d = tmp("nth");
        let p = d.join("wal.log");
        let mut f = s.open_append(&p).unwrap();
        let fired: Vec<bool> = (0..6).map(|_| f.sync().is_err()).collect();
        assert_eq!(fired, [false, false, true, false, false, true]);
        let _ = std::fs::remove_dir_all(&d);
    }
}
