//! Deterministic fault injection for the Ilúvatar control plane.
//!
//! Chaos testing a serverless control plane only pays off when a failing run
//! can be *replayed*: the same seed must produce the same faults at the same
//! injection sites regardless of thread interleaving. A [`FaultPlan`]
//! therefore decides each fault from `hash(seed, site, occurrence_index)` —
//! the per-site occurrence counter is atomic, so under a fixed (sequential)
//! workload the decision sequence is a pure function of the seed, never of
//! wall-clock timing.
//!
//! Two layers are covered:
//!
//! * [`FaultInjector`] wraps any [`ContainerBackend`] and injects the fault
//!   classes a worker must survive: cold-start (create) failures, agent-call
//!   errors, latency spikes, hung agents, and mid-invoke container deaths.
//! * HTTP-level faults (dropped/garbled responses between load balancer and
//!   worker) live in `iluvatar_http::chaos`, next to the transport they
//!   corrupt.
//!
//! Each fired fault increments a per-site counter exposed via
//! [`FaultPlan::stats`], so tests can assert exactly how many faults a run
//! absorbed.

use iluvatar_containers::{BackendError, Container, ContainerBackend, FunctionSpec, InvokeOutput};
use iluvatar_telemetry::{FlightRecorder, TelemetryBus, TelemetryKind};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

pub mod storage;
pub use storage::{disk_sites, DiskFaultPlan, DiskFaultPlanConfig, FaultyStorage};

/// When a fault site fires.
///
/// A site fires on occurrence `i` (0-based, counted per site) when `i` is in
/// `schedule`, or — for sites not scheduled explicitly — when the seeded
/// hash of `(seed, site, i)` falls below `prob`. Schedules give tests exact
/// control ("fail the first three creates"); probabilities drive soak runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that an occurrence fires.
    #[serde(default)]
    pub prob: f64,
    /// Exact occurrence indices that fire (in addition to `prob`).
    #[serde(default)]
    pub schedule: Vec<u64>,
    /// Fire every `every`-th occurrence (indices `every-1`, `2*every-1`,
    /// …). 0 disables. Sweep tests use this to fault *each* k-th event
    /// without enumerating a schedule.
    #[serde(default)]
    pub every: u64,
}

impl FaultSpec {
    pub fn never() -> Self {
        Self::default()
    }

    pub fn with_prob(prob: f64) -> Self {
        Self {
            prob,
            ..Self::default()
        }
    }

    pub fn on_occurrences(schedule: Vec<u64>) -> Self {
        Self {
            schedule,
            ..Self::default()
        }
    }

    /// Fire on every `every`-th occurrence.
    pub fn every_nth(every: u64) -> Self {
        Self {
            every,
            ..Self::default()
        }
    }

    pub fn is_never(&self) -> bool {
        self.prob <= 0.0 && self.schedule.is_empty() && self.every == 0
    }

    /// Does occurrence `idx` fire by schedule or period (not probability)?
    fn scheduled(&self, idx: u64) -> bool {
        self.schedule.contains(&idx) || (self.every > 0 && (idx + 1).is_multiple_of(self.every))
    }
}

/// The full seeded fault plan for one chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Seed for all probabilistic decisions and injected jitter.
    pub seed: u64,
    /// Cold-start failures: `create` returns `CreateFailed`.
    #[serde(default)]
    pub create_fail: FaultSpec,
    /// Agent-call errors: `invoke` returns `InvokeFailed` immediately.
    #[serde(default)]
    pub invoke_error: FaultSpec,
    /// Hung agent: `invoke` stalls for `hang_ms` before erroring. A worker
    /// with an agent-call timeout should trip its deadline first.
    #[serde(default)]
    pub invoke_hang: FaultSpec,
    /// Added latency: `invoke` sleeps `spike_ms` then proceeds normally.
    #[serde(default)]
    pub latency_spike: FaultSpec,
    /// Mid-invoke container death: the invocation runs partially, then the
    /// container dies and `invoke` errors.
    #[serde(default)]
    pub container_death: FaultSpec,
    /// Whole-worker crash: the chaos harness kills the worker process
    /// outright (no drain, no final snapshot). The injector itself only
    /// counts the decision — the session owning the worker performs the
    /// kill, since the injector sits below the control plane it terminates.
    #[serde(default)]
    pub worker_kill: FaultSpec,
    /// Stall duration for `invoke_hang`, ms.
    #[serde(default)]
    pub hang_ms: u64,
    /// Added latency for `latency_spike`, ms.
    #[serde(default)]
    pub spike_ms: u64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            create_fail: FaultSpec::never(),
            invoke_error: FaultSpec::never(),
            invoke_hang: FaultSpec::never(),
            latency_spike: FaultSpec::never(),
            container_death: FaultSpec::never(),
            worker_kill: FaultSpec::never(),
            hang_ms: 1_000,
            spike_ms: 50,
        }
    }
}

/// Injection sites, in stats order.
pub mod sites {
    pub const CREATE_FAIL: &str = "create_fail";
    pub const INVOKE_ERROR: &str = "invoke_error";
    pub const INVOKE_HANG: &str = "invoke_hang";
    pub const LATENCY_SPIKE: &str = "latency_spike";
    pub const CONTAINER_DEATH: &str = "container_death";
    pub const WORKER_KILL: &str = "worker_kill";

    pub const ALL: [&str; 6] = [
        CREATE_FAIL,
        INVOKE_ERROR,
        INVOKE_HANG,
        LATENCY_SPIKE,
        CONTAINER_DEATH,
        WORKER_KILL,
    ];
}

/// Injected-fault counts per site, plus total decisions taken.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// `(site, occurrences_seen, faults_fired)` in [`sites::ALL`] order.
    pub sites: Vec<(String, u64, u64)>,
}

impl FaultStats {
    /// Faults fired at `site` (0 for unknown sites).
    pub fn fired(&self, site: &str) -> u64 {
        self.sites
            .iter()
            .find(|(s, _, _)| s == site)
            .map(|&(_, _, f)| f)
            .unwrap_or(0)
    }

    pub fn total_fired(&self) -> u64 {
        self.sites.iter().map(|&(_, _, f)| f).sum()
    }
}

/// splitmix64 finalizer: stateless mixing for fault decisions.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a site name — folds the site into the decision hash.
pub(crate) fn site_hash(site: &str) -> u64 {
    site.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

struct SiteState {
    name: &'static str,
    seen: AtomicU64,
    fired: AtomicU64,
}

/// Seeded fault decisions with per-site occurrence counters.
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    states: Vec<SiteState>,
    /// Canonical telemetry stream: every fired fault emits a
    /// [`TelemetryKind::Fault`] once a bus is attached.
    telemetry: OnceLock<Arc<TelemetryBus>>,
    /// When attached, every fired fault freezes a flight-recorder snapshot
    /// (`fault:<site>`) so post-mortems capture the events leading up to it.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl FaultPlan {
    pub fn new(cfg: FaultPlanConfig) -> Self {
        let states = sites::ALL
            .iter()
            .map(|&name| SiteState {
                name,
                seen: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            })
            .collect();
        Self {
            cfg,
            states,
            telemetry: OnceLock::new(),
            recorder: OnceLock::new(),
        }
    }

    /// Attach the canonical telemetry bus. First call wins; faults fired
    /// before any bus is attached are only counted, not streamed.
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) {
        let _ = self.telemetry.set(bus);
    }

    /// Attach a flight recorder to snapshot automatically on every fired
    /// fault. First call wins.
    pub fn set_flight_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    fn spec_of(&self, site: &str) -> &FaultSpec {
        match site {
            sites::CREATE_FAIL => &self.cfg.create_fail,
            sites::INVOKE_ERROR => &self.cfg.invoke_error,
            sites::INVOKE_HANG => &self.cfg.invoke_hang,
            sites::LATENCY_SPIKE => &self.cfg.latency_spike,
            sites::CONTAINER_DEATH => &self.cfg.container_death,
            sites::WORKER_KILL => &self.cfg.worker_kill,
            _ => panic!("unknown fault site {site}"),
        }
    }

    /// Take the next occurrence at `site` and decide whether it faults.
    /// Deterministic in `(seed, site, occurrence index)`.
    pub fn decide(&self, site: &str) -> bool {
        let spec = self.spec_of(site);
        let state = self
            .states
            .iter()
            .find(|s| s.name == site)
            .expect("site registered");
        let idx = state.seen.fetch_add(1, Ordering::Relaxed);
        let fire = if spec.scheduled(idx) {
            true
        } else if spec.prob > 0.0 {
            let unit =
                (mix(self.cfg.seed ^ site_hash(site) ^ idx.wrapping_mul(0xA076_1D64_78BD_642F))
                    >> 11) as f64
                    / (1u64 << 53) as f64;
            unit < spec.prob
        } else {
            false
        };
        if fire {
            state.fired.fetch_add(1, Ordering::Relaxed);
            if let Some(bus) = self.telemetry.get() {
                bus.emit(None, None, TelemetryKind::Fault { site: site.into() });
                // Freeze the flight recorder at the fault: the snapshot holds
                // the events leading up to (and including) the injection.
                if let Some(rec) = self.recorder.get() {
                    let reason = format!("fault:{site}");
                    rec.snapshot(&reason);
                    bus.emit(None, None, TelemetryKind::RecorderSnapshot { reason });
                }
            }
        }
        fire
    }

    pub fn stats(&self) -> FaultStats {
        FaultStats {
            sites: self
                .states
                .iter()
                .map(|s| {
                    (
                        s.name.to_string(),
                        s.seen.load(Ordering::Relaxed),
                        s.fired.load(Ordering::Relaxed),
                    )
                })
                .collect(),
        }
    }
}

/// A [`ContainerBackend`] that injects the plan's faults around an inner
/// backend. Drop-in: thread it between the worker and its real backend.
pub struct FaultInjector {
    inner: Arc<dyn ContainerBackend>,
    plan: Arc<FaultPlan>,
}

impl FaultInjector {
    pub fn new(inner: Arc<dyn ContainerBackend>, cfg: FaultPlanConfig) -> Self {
        Self {
            inner,
            plan: Arc::new(FaultPlan::new(cfg)),
        }
    }

    /// Share the plan for assertions (fired-fault counts).
    pub fn plan(&self) -> Arc<FaultPlan> {
        Arc::clone(&self.plan)
    }

    /// Stream every fired fault onto the canonical telemetry bus.
    pub fn with_telemetry(self, bus: Arc<TelemetryBus>) -> Self {
        self.plan.set_telemetry(bus);
        self
    }

    /// Snapshot `recorder` automatically on every fired fault (requires a
    /// bus attached via [`FaultInjector::with_telemetry`]).
    pub fn with_flight_recorder(self, recorder: Arc<FlightRecorder>) -> Self {
        self.plan.set_flight_recorder(recorder);
        self
    }

    fn fault_invoke(&self) -> Option<BackendError> {
        if self.plan.decide(sites::LATENCY_SPIKE) {
            std::thread::sleep(Duration::from_millis(self.plan.cfg.spike_ms));
        }
        if self.plan.decide(sites::INVOKE_ERROR) {
            return Some(BackendError::InvokeFailed("injected agent error".into()));
        }
        if self.plan.decide(sites::INVOKE_HANG) {
            std::thread::sleep(Duration::from_millis(self.plan.cfg.hang_ms));
            return Some(BackendError::InvokeFailed("injected agent hang".into()));
        }
        if self.plan.decide(sites::CONTAINER_DEATH) {
            // The container lives long enough to start the invocation, then
            // dies under it.
            std::thread::sleep(Duration::from_millis(self.plan.cfg.spike_ms.min(5)));
            return Some(BackendError::InvokeFailed(
                "injected container death".into(),
            ));
        }
        None
    }
}

impl ContainerBackend for FaultInjector {
    fn name(&self) -> &'static str {
        "fault-injector"
    }

    fn create(&self, spec: &FunctionSpec) -> Result<Container, BackendError> {
        if self.plan.decide(sites::CREATE_FAIL) {
            return Err(BackendError::CreateFailed(
                "injected cold-start failure".into(),
            ));
        }
        self.inner.create(spec)
    }

    fn invoke(&self, container: &Container, args: &str) -> Result<InvokeOutput, BackendError> {
        if let Some(e) = self.fault_invoke() {
            return Err(e);
        }
        self.inner.invoke(container, args)
    }

    fn invoke_traced(
        &self,
        container: &Container,
        args: &str,
        trace: Option<&str>,
    ) -> Result<InvokeOutput, BackendError> {
        if let Some(e) = self.fault_invoke() {
            return Err(e);
        }
        self.inner.invoke_traced(container, args, trace)
    }

    fn invoke_ctx(
        &self,
        container: &Container,
        args: &str,
        trace: Option<&str>,
        tenant: Option<&str>,
    ) -> Result<InvokeOutput, BackendError> {
        if let Some(e) = self.fault_invoke() {
            return Err(e);
        }
        self.inner.invoke_ctx(container, args, trace, tenant)
    }

    fn destroy(&self, container: &Container) -> Result<(), BackendError> {
        self.inner.destroy(container)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
    use iluvatar_sync::SystemClock;

    fn sim() -> Arc<SimBackend> {
        Arc::new(SimBackend::new(
            SystemClock::shared(),
            SimBackendConfig {
                time_scale: 0.01,
                ..Default::default()
            },
        ))
    }

    fn spec() -> FunctionSpec {
        FunctionSpec::new("f", "1").with_timing(100, 200)
    }

    #[test]
    fn never_spec_injects_nothing() {
        let inj = FaultInjector::new(sim(), FaultPlanConfig::default());
        let c = inj.create(&spec()).unwrap();
        inj.invoke(&c, "{}").unwrap();
        inj.destroy(&c).unwrap();
        assert_eq!(inj.plan().stats().total_fired(), 0);
    }

    #[test]
    fn scheduled_create_failures_fire_exactly() {
        let cfg = FaultPlanConfig {
            create_fail: FaultSpec::on_occurrences(vec![0, 2]),
            ..Default::default()
        };
        let inj = FaultInjector::new(sim(), cfg);
        assert!(inj.create(&spec()).is_err(), "occurrence 0 scheduled");
        assert!(inj.create(&spec()).is_ok(), "occurrence 1 clean");
        assert!(inj.create(&spec()).is_err(), "occurrence 2 scheduled");
        assert!(inj.create(&spec()).is_ok());
        assert_eq!(inj.plan().stats().fired(sites::CREATE_FAIL), 2);
    }

    #[test]
    fn probabilistic_decisions_replay_with_seed() {
        let mk = |seed| {
            let plan = FaultPlan::new(FaultPlanConfig {
                seed,
                invoke_error: FaultSpec::with_prob(0.3),
                ..Default::default()
            });
            (0..256)
                .map(|_| plan.decide(sites::INVOKE_ERROR))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7), "same seed replays identically");
        assert_ne!(mk(7), mk(8), "different seeds diverge");
        let fired = mk(7).iter().filter(|&&f| f).count();
        assert!((30..=120).contains(&fired), "~30% of 256, got {fired}");
    }

    #[test]
    fn sites_decide_independently() {
        let plan = FaultPlan::new(FaultPlanConfig {
            seed: 1,
            create_fail: FaultSpec::with_prob(1.0),
            invoke_error: FaultSpec::never(),
            ..Default::default()
        });
        assert!(plan.decide(sites::CREATE_FAIL));
        assert!(!plan.decide(sites::INVOKE_ERROR));
        let st = plan.stats();
        assert_eq!(st.fired(sites::CREATE_FAIL), 1);
        assert_eq!(st.fired(sites::INVOKE_ERROR), 0);
    }

    #[test]
    fn injected_invoke_error_discards_nothing_downstream() {
        let cfg = FaultPlanConfig {
            invoke_error: FaultSpec::on_occurrences(vec![0]),
            ..Default::default()
        };
        let inj = FaultInjector::new(sim(), cfg);
        let c = inj.create(&spec()).unwrap();
        assert!(inj.invoke(&c, "{}").is_err(), "first invoke injected");
        assert!(inj.invoke(&c, "{}").is_ok(), "second passes through");
    }

    #[test]
    fn worker_kill_site_schedules_like_any_other() {
        let plan = FaultPlan::new(FaultPlanConfig {
            worker_kill: FaultSpec::on_occurrences(vec![1]),
            ..Default::default()
        });
        assert!(!plan.decide(sites::WORKER_KILL), "occurrence 0 clean");
        assert!(plan.decide(sites::WORKER_KILL), "occurrence 1 scheduled");
        assert_eq!(plan.stats().fired(sites::WORKER_KILL), 1);
    }

    #[test]
    fn fired_faults_stream_and_snapshot_the_recorder() {
        use iluvatar_sync::ManualClock;
        use iluvatar_telemetry::{TelemetrySink, VecSink};

        let cfg = FaultPlanConfig {
            invoke_error: FaultSpec::on_occurrences(vec![1]),
            ..Default::default()
        };
        let bus = TelemetryBus::new("chaos", Arc::new(ManualClock::starting_at(0)));
        let sink = Arc::new(VecSink::new());
        let recorder = Arc::new(FlightRecorder::new(64));
        bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        bus.add_sink(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
        let inj = FaultInjector::new(sim(), cfg)
            .with_telemetry(Arc::clone(&bus))
            .with_flight_recorder(Arc::clone(&recorder));

        let c = inj.create(&spec()).unwrap();
        assert!(inj.invoke(&c, "{}").is_ok(), "occurrence 0 clean: no event");
        assert!(sink.events().is_empty());
        assert!(inj.invoke(&c, "{}").is_err(), "occurrence 1 fires");

        let labels: Vec<String> = sink.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, vec!["fault:invoke_error", "recorder_snapshot"]);
        // The auto-snapshot froze the ring at the fault: it contains the
        // fault event itself.
        let snaps = recorder.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].reason, "fault:invoke_error");
        assert!(snaps[0]
            .events
            .iter()
            .any(|e| e.kind.label() == "fault:invoke_error"));
    }

    #[test]
    fn plan_config_serde_roundtrip() {
        let cfg = FaultPlanConfig {
            seed: 42,
            create_fail: FaultSpec::with_prob(0.05),
            invoke_hang: FaultSpec::with_prob(0.02),
            hang_ms: 500,
            ..Default::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultPlanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
