#!/usr/bin/env bash
# Regenerate every table and figure. Pass --full for paper-scale runs.
set -u
cd "$(dirname "$0")/.."
mode="${1:-}"
out="results"
mkdir -p "$out"
bins="tab3_workloads tab2_trace_details tab1_latency_breakdown fig1_overhead_scaling \
      fig4_exec_increase fig5_cold_ratio fig6_litmus fig7_faasbench fig8_dynamic \
      figs_trace_timeseries abl_queue_policies abl_concurrency abl_load_balancer"
for b in $bins; do
  echo "=== $b ==="
  cargo run --release -q -p iluvatar-bench --bin "$b" -- $mode 2>&1 | tee "$out/$b.txt"
done
echo "all experiment outputs in $out/"
