#!/usr/bin/env bash
# One-shot gate: build, test, lint. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt ==="
cargo fmt --check

echo "=== cargo build (release) ==="
cargo build --workspace --release

echo "=== cargo test ==="
cargo test --workspace -q

echo "=== cargo clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== chaos determinism (fixed seed, two runs) ==="
# The seeded chaos session must replay bit-identically: same seed, same
# journal digest. A mismatch means nondeterminism leaked into the retry /
# fault path — the root cause of flaky chaos tests — so fail loudly.
CHAOS_SEED=42
digest_a=$(./target/release/chaos_session --seed "$CHAOS_SEED")
digest_b=$(./target/release/chaos_session --seed "$CHAOS_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "chaos digests diverged for seed $CHAOS_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "chaos digest stable: $digest_a"

echo "=== admission determinism (fixed seed, two runs) ==="
# Same contract for the multi-tenant path: the seeded admission session
# (DRR drain order, virtual-time throttling, per-tenant served counts)
# must replay bit-identically.
ADMISSION_SEED=42
digest_a=$(./target/release/admission_session --seed "$ADMISSION_SEED")
digest_b=$(./target/release/admission_session --seed "$ADMISSION_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "admission digests diverged for seed $ADMISSION_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "admission digest stable: $digest_a"

echo "=== lifecycle determinism (fixed seed, kill mid-trace, two runs) ==="
# Crash recovery must converge: kill the worker at the same submission in
# two runs and the post-recovery digest (accepted ids, tenant books,
# completion totals) must match. The binary itself asserts zero loss of
# accepted invocations; a digest mismatch here means crash timing leaked
# into recovered state.
LIFECYCLE_SEED=42
digest_a=$(./target/release/lifecycle_session --seed "$LIFECYCLE_SEED" --kill-at 12)
digest_b=$(./target/release/lifecycle_session --seed "$LIFECYCLE_SEED" --kill-at 12)
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "lifecycle digests diverged for seed $LIFECYCLE_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "lifecycle digest stable: $digest_a"

echo "=== autoscale determinism (fixed seed, two runs) ==="
# The elastic fleet must replay bit-identically: same seed, same scale
# decisions, same fleet trajectory, same serve totals. The binary itself
# asserts the burst contract (1 -> >=3 -> 1, zero dropped invocations); a
# digest mismatch means worker spawn/drain timing leaked into the control
# loop.
AUTOSCALE_SEED=42
digest_a=$(./target/release/autoscale_session --seed "$AUTOSCALE_SEED")
digest_b=$(./target/release/autoscale_session --seed "$AUTOSCALE_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "autoscale digests diverged for seed $AUTOSCALE_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "autoscale digest stable: $digest_a"

echo "=== telemetry determinism (fixed seed, two runs) ==="
# The canonical telemetry stream must replay bit-identically: same seed,
# same per-trace event sequences, same per-kind counts, same flight-
# recorder snapshots. A mismatch means thread timing leaked into the
# pipeline (e.g. digesting raw seqnos, which race across threads).
TELEMETRY_SEED=42
digest_a=$(./target/release/telemetry_session --seed "$TELEMETRY_SEED")
digest_b=$(./target/release/telemetry_session --seed "$TELEMETRY_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "telemetry digests diverged for seed $TELEMETRY_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "telemetry digest stable: $digest_a"

echo "=== conformance replay (fixed seed, two runs) ==="
# Replays seeded chaos / crash-recovery / autoscale / DRR session streams
# through the executable reference models (WAL, DRR, breaker, fleet). The
# binary exits non-zero on any model violation, printing the first
# offending event with its preceding context; the digest double-run
# asserts the replay itself is deterministic.
CONFORMANCE_SEED=42
digest_a=$(./target/release/conformance_session --seed "$CONFORMANCE_SEED")
digest_b=$(./target/release/conformance_session --seed "$CONFORMANCE_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "conformance digests diverged for seed $CONFORMANCE_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "conformance digest stable: $digest_a"

echo "=== cache determinism (fixed seed, two runs) ==="
# The result-cache session (two tenants, seeded repeat mix, invalidation
# on re-registration, full stream through the conformance models) must
# replay bit-identically. The binary itself asserts the >=80% repeat hit
# rate, disjoint tenant partitions, and dispatched == misses + bypasses.
CACHE_SEED=42
digest_a=$(./target/release/cache_session --seed "$CACHE_SEED")
digest_b=$(./target/release/cache_session --seed "$CACHE_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "cache digests diverged for seed $CACHE_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "cache digest stable: $digest_a"

echo "=== storage fault determinism (fixed seed, two runs) ==="
# Drives the WAL through the full disk-fault menu — fsync failures, a torn
# write, an ENOSPC window with degraded-mode re-arming, a 250ms stall shed,
# and a mid-trace kill with a torn segment tail — with the conformance
# checker riding the telemetry bus online. The binary itself asserts zero
# model violations and zero lost accepted invocations; the double run
# asserts the seeded fault schedule replays bit-identically.
STORAGE_SEED=42
digest_a=$(./target/release/storage_session --seed "$STORAGE_SEED" 2>/dev/null)
digest_b=$(./target/release/storage_session --seed "$STORAGE_SEED" 2>/dev/null)
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "storage digests diverged for seed $STORAGE_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "storage digest stable: $digest_a"

echo "=== dispatch determinism (fixed seed, mid-run worker kill, two runs) ==="
# Pull-mode dispatch under a worker crash: two pull loops lease from one
# WAL-backed plane, one is killed mid-flight, and its abandoned leases must
# expire, requeue exactly once, and complete on the survivor. The binary
# itself asserts zero lost accepted invocations, zero conformance
# violations in the lease stream, and an empty WAL pending set; the digest
# double-run asserts the accepted id/tenant map is a pure function of the
# seed (which leases the crash strands must not leak in).
DISPATCH_SEED=42
digest_a=$(./target/release/dispatch_session --seed "$DISPATCH_SEED" 2>/dev/null)
digest_b=$(./target/release/dispatch_session --seed "$DISPATCH_SEED" 2>/dev/null)
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "dispatch digests diverged for seed $DISPATCH_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "dispatch digest stable: $digest_a"

echo "=== conformance mutation smoke (checker must catch seeded corruption) ==="
# Flips one event in known-good streams (duplicate completion, dropped
# append, reordered result, flipped ok-bit, illegal breaker edge, kill of
# a draining worker, double-attach, stale cache hit, double-lease,
# dropped requeue) plus two on-disk corruptions (bit-flipped WAL record,
# truncated segment) and requires the checker — or the frame scanner — to
# flag each with the expected rule. A silent pass here means the checker
# has gone blind and the replay gate above is vacuous.
./target/release/conformance_session --mutate

echo "=== dispatch ablation (pull/hybrid p99 <= push p99) ==="
# One seeded heavy-tailed workload through push (CH-BL with a stale load
# signal), pull (the real PullPlane), and hybrid planes. The binary
# asserts the tail-latency claim the pull plane exists for.
./target/release/abl_dispatch

echo "=== overhead budget (p50/p99 per Table-1 group) ==="
# Replays a fixed warm trace over the real HTTP hot path and checks each
# Table-1 group's p50/p99 dispatch overhead (from GET /breakdown) against
# wide-headroom budgets. Exits non-zero on any breach.
./target/release/abl_overhead_budget

echo "=== cache ablation (hit p50 < dispatch p50, >=80% repeat hits) ==="
# Measures the real hot path with the result cache on: a hit must beat a
# warm dispatch at p50, the repeated phase must serve >=80% from cache,
# and interleaved tenants on identical fqdn+args must never cross.
./target/release/abl_cache

echo "all checks passed"
