#!/usr/bin/env bash
# One-shot gate: build, test, lint. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt ==="
cargo fmt --check

echo "=== cargo build (release) ==="
cargo build --workspace --release

echo "=== cargo test ==="
cargo test --workspace -q

echo "=== cargo clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== chaos determinism (fixed seed, two runs) ==="
# The seeded chaos session must replay bit-identically: same seed, same
# journal digest. A mismatch means nondeterminism leaked into the retry /
# fault path — the root cause of flaky chaos tests — so fail loudly.
CHAOS_SEED=42
digest_a=$(./target/release/chaos_session --seed "$CHAOS_SEED")
digest_b=$(./target/release/chaos_session --seed "$CHAOS_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "chaos digests diverged for seed $CHAOS_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "chaos digest stable: $digest_a"

echo "=== admission determinism (fixed seed, two runs) ==="
# Same contract for the multi-tenant path: the seeded admission session
# (DRR drain order, virtual-time throttling, per-tenant served counts)
# must replay bit-identically.
ADMISSION_SEED=42
digest_a=$(./target/release/admission_session --seed "$ADMISSION_SEED")
digest_b=$(./target/release/admission_session --seed "$ADMISSION_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "admission digests diverged for seed $ADMISSION_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "admission digest stable: $digest_a"

echo "=== lifecycle determinism (fixed seed, kill mid-trace, two runs) ==="
# Crash recovery must converge: kill the worker at the same submission in
# two runs and the post-recovery digest (accepted ids, tenant books,
# completion totals) must match. The binary itself asserts zero loss of
# accepted invocations; a digest mismatch here means crash timing leaked
# into recovered state.
LIFECYCLE_SEED=42
digest_a=$(./target/release/lifecycle_session --seed "$LIFECYCLE_SEED" --kill-at 12)
digest_b=$(./target/release/lifecycle_session --seed "$LIFECYCLE_SEED" --kill-at 12)
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "lifecycle digests diverged for seed $LIFECYCLE_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "lifecycle digest stable: $digest_a"

echo "=== autoscale determinism (fixed seed, two runs) ==="
# The elastic fleet must replay bit-identically: same seed, same scale
# decisions, same fleet trajectory, same serve totals. The binary itself
# asserts the burst contract (1 -> >=3 -> 1, zero dropped invocations); a
# digest mismatch means worker spawn/drain timing leaked into the control
# loop.
AUTOSCALE_SEED=42
digest_a=$(./target/release/autoscale_session --seed "$AUTOSCALE_SEED")
digest_b=$(./target/release/autoscale_session --seed "$AUTOSCALE_SEED")
if [[ "$digest_a" != "$digest_b" ]]; then
    echo "autoscale digests diverged for seed $AUTOSCALE_SEED: $digest_a vs $digest_b" >&2
    exit 1
fi
echo "autoscale digest stable: $digest_a"

echo "all checks passed"
