#!/usr/bin/env bash
# One-shot gate: build, test, lint. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build (release) ==="
cargo build --workspace --release

echo "=== cargo test ==="
cargo test --workspace -q

echo "=== cargo clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "all checks passed"
