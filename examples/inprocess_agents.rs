//! Real agent protocol end-to-end: functions run as in-process agents —
//! genuine HTTP servers on loopback, spoken to through the worker's pooled
//! client, exactly like the paper's in-container Python agent (§3.2).
//!
//! Run with: `cargo run --release --example inprocess_agents`

use iluvatar::prelude::*;
use iluvatar_containers::NamespacePool;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let clock = SystemClock::shared();
    // Pre-created network namespaces hide the kernel's serialized
    // namespace-creation cost from cold starts (§3.3).
    let netns = Arc::new(NamespacePool::new(8, 0, Arc::clone(&clock)));
    netns.prefill();
    let backend = Arc::new(InProcessBackend::new(Arc::clone(&netns)));

    // Register real function bodies from the FunctionBench models.
    for app in [
        FbApp::PyAes,
        FbApp::MatrixMultiply,
        FbApp::FloatingPoint,
        FbApp::WebServing,
    ] {
        backend.register_behavior(format!("{}-1", app.name()), app.behavior());
    }

    let worker = Worker::new(WorkerConfig::default(), backend, clock);
    for app in [
        FbApp::PyAes,
        FbApp::MatrixMultiply,
        FbApp::FloatingPoint,
        FbApp::WebServing,
    ] {
        worker.register(app.spec()).unwrap();
    }

    for app in [
        FbApp::PyAes,
        FbApp::MatrixMultiply,
        FbApp::FloatingPoint,
        FbApp::WebServing,
    ] {
        let fqdn = format!("{}-1", app.name());
        let cold = worker.invoke(&fqdn, r#"{"demo":true}"#).unwrap();
        let t = Instant::now();
        let warm = worker.invoke(&fqdn, r#"{"demo":true}"#).unwrap();
        let wall = t.elapsed().as_micros();
        println!(
            "{:<16} cold e2e {:>4}ms | warm e2e {:>3}ms (wall {:>5}µs) overhead {:>2}ms | result: {:.40}...",
            app.name(),
            cold.e2e_ms,
            warm.e2e_ms,
            wall,
            warm.overhead_ms(),
            warm.body
        );
        assert!(cold.cold && !warm.cold);
    }

    // The whole warm path — queue, pool, HTTP round trip to a live agent —
    // should cost low single-digit milliseconds (Table 1's ~2ms).
    let mut overheads = Vec::new();
    for _ in 0..200 {
        let r = worker.invoke("pyaes-1", "{}").unwrap();
        overheads.push(r.overhead_ms() as f64);
    }
    println!(
        "\npyaes warm control-plane overhead over 200 invocations: p50 {:.2}ms p99 {:.2}ms",
        iluvatar_sync::stats::percentile(&overheads, 0.5),
        iluvatar_sync::stats::percentile(&overheads, 0.99),
    );
    println!(
        "namespaces created: {} (pool misses: {})",
        netns.created(),
        netns.pool_misses()
    );
}
