//! Compare all six keep-alive policies on one synthetic trace — a miniature
//! of the Figure 4/5 sweep, runnable in a couple of seconds.
//!
//! Run with: `cargo run --release --example keepalive_comparison`

use iluvatar::prelude::*;
use iluvatar_core::config::KeepalivePolicyKind;

fn main() {
    let trace = SyntheticAzureTrace::generate(&AzureTraceConfig {
        apps: 150,
        duration_ms: 6 * 3600 * 1000,
        seed: 0xBEEF,
        diurnal_fraction: 0.2,
        rate_scale: 1.0,
    });
    println!(
        "trace: {} functions, {} invocations over 6 virtual hours\n",
        trace.profiles.len(),
        trace.events.len()
    );
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "policy", "cache GB", "cold ratio", "exec +%", "evictions", "expirations"
    );
    for cache_gb in [2u64, 8] {
        for kind in KeepalivePolicyKind::all() {
            let out = KeepaliveSim::run(
                trace.profiles.clone(),
                &trace.events,
                SimConfig::new(kind, cache_gb * 1024),
            );
            println!(
                "{:<8} {:>10} {:>12.4} {:>9.2}% {:>12} {:>12}",
                out.policy,
                cache_gb,
                out.cold_ratio(),
                out.exec_increase_pct(),
                out.evictions,
                out.expirations
            );
        }
        println!();
    }
    println!("Greedy-Dual (GD) should show the lowest execution-time increase at the small cache size; TTL the highest (non-work-conserving).");
}
