//! Quickstart: stand up an Ilúvatar worker, register a function, and watch
//! the cold→warm transition plus prewarming.
//!
//! Run with: `cargo run --release --example quickstart`

use iluvatar::prelude::*;
use std::sync::Arc;

fn main() {
    // A worker over the "null" simulation backend (§3.4): identical control
    // plane, no real containers needed.
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.1,
            ..Default::default()
        }, // 10x compressed
    ));
    let worker = Worker::new(WorkerConfig::default(), backend, clock);

    // Register: prepares the container image out-of-band (§3.2).
    let reg = worker
        .register(
            FunctionSpec::new("hello", "1")
                .with_image("docker.io/examples/hello:1")
                .with_timing(120, 800) // 120ms warm, +800ms init
                .with_limits(ResourceLimits {
                    cpus: 1.0,
                    memory_mb: 256,
                }),
        )
        .expect("registration succeeds");
    println!(
        "registered {} ({} image layers prepared)",
        reg.spec.fqdn,
        reg.image.layers.len()
    );

    // First invocation: cold start (container create + init).
    let r1 = worker.invoke("hello-1", r#"{"name":"world"}"#).unwrap();
    println!(
        "invocation 1: cold={} exec={}ms e2e={}ms control-plane overhead={}ms",
        r1.cold,
        r1.exec_ms,
        r1.e2e_ms,
        r1.overhead_ms()
    );

    // Second invocation: warm start from the keep-alive pool.
    let r2 = worker.invoke("hello-1", r#"{"name":"again"}"#).unwrap();
    println!(
        "invocation 2: cold={} exec={}ms e2e={}ms overhead={}ms",
        r2.cold,
        r2.exec_ms,
        r2.e2e_ms,
        r2.overhead_ms()
    );
    assert!(r1.cold && !r2.cold);

    // Prewarm a second function so its first invocation is already warm.
    worker
        .register(FunctionSpec::new("ml", "1").with_timing(600, 4_000))
        .unwrap();
    worker.prewarm("ml-1").unwrap();
    let r3 = worker.invoke("ml-1", "{}").unwrap();
    println!("prewarmed ml-1: cold={} e2e={}ms", r3.cold, r3.e2e_ms);

    // Async invocations overlap.
    let handles: Vec<_> = (0..4)
        .map(|_| worker.async_invoke("hello-1", "{}").unwrap())
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait().unwrap();
        println!("async {}: warm={} e2e={}ms", i, !r.cold, r.e2e_ms);
    }

    let st = worker.status();
    println!(
        "\nworker status: completed={} cold_starts={} warm_hits={} used_mem={}MB queue={}",
        st.completed, st.cold_starts, st.warm_hits, st.used_mem_mb, st.queue_len
    );
    let s = worker.characteristics().summary("hello-1");
    println!(
        "learned characteristics of hello-1: warm={:.0}ms cold={:.0}ms IAT={:.0}ms",
        s.warm_ms, s.cold_ms, s.iat_ms
    );
}
