//! Replay a (compressed) Azure-like trace sample through a live worker —
//! the in-situ simulation workflow of §3.4: the full control plane runs,
//! functions are null-backend sleeps.
//!
//! Run with: `cargo run --release --example trace_replay`

use iluvatar::prelude::*;
use iluvatar::WorkerTarget;
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_trace::loadgen::{InvokerTarget, OpenLoopRunner, ScheduledInvocation};
use std::sync::Arc;

fn main() {
    // A 30-minute slice of a small synthetic population, compressed 100×
    // so the replay takes ~18s of wall time.
    let trace = SyntheticAzureTrace::generate(&AzureTraceConfig {
        apps: 40,
        duration_ms: 30 * 60_000,
        seed: 42,
        diurnal_fraction: 0.0,
        rate_scale: 1.0,
    });
    let time_scale = 0.01;
    println!(
        "trace: {} functions, {} invocations over {} virtual minutes",
        trace.profiles.len(),
        trace.events.len(),
        trace.duration_ms / 60_000
    );

    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: "replay".into(),
        cores: 48,
        memory_mb: 8 * 1024,
        keepalive: KeepalivePolicyKind::Gdsf,
        concurrency: ConcurrencyConfig {
            limit: 128,
            ..Default::default()
        },
        ..Default::default()
    };
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    for p in &trace.profiles {
        let (name, version) = p.fqdn.rsplit_once('-').unwrap_or((p.fqdn.as_str(), "fn0"));
        worker
            .register(
                FunctionSpec::new(name, version)
                    .with_timing(p.warm_ms, p.init_ms)
                    .with_limits(ResourceLimits {
                        cpus: 1.0,
                        memory_mb: p.memory_mb,
                    }),
            )
            .unwrap();
    }

    let schedule: Vec<ScheduledInvocation> = trace
        .events
        .iter()
        .map(|e| ScheduledInvocation {
            at_ms: (e.time_ms as f64 * time_scale) as u64,
            fqdn: trace.profiles[e.func as usize].fqdn.clone(),
            args: "{}".to_string(),
            tenant: None,
        })
        .collect();
    let runner = OpenLoopRunner::new(schedule);
    println!("replaying at {}x compression...", (1.0 / time_scale) as u64);
    let out = runner.run(Arc::new(WorkerTarget(Arc::clone(&worker))) as Arc<dyn InvokerTarget>);

    let served = out.iter().filter(|o| !o.dropped).count();
    let cold = out.iter().filter(|o| o.cold).count();
    let dropped = out.len() - served;
    let mut overheads: Vec<f64> = out
        .iter()
        .filter(|o| !o.dropped)
        .map(|o| o.overhead_ms() as f64)
        .collect();
    overheads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p = |q: f64| iluvatar_sync::stats::percentile_of_sorted(&overheads, q);
    println!(
        "\nserved {served} ({cold} cold, {:.2}% cold ratio), dropped {dropped}",
        100.0 * cold as f64 / served.max(1) as f64
    );
    println!(
        "control-plane overhead: p50 {:.1}ms p99 {:.1}ms",
        p(0.5),
        p(0.99)
    );
    let st = worker.pool_stats();
    println!(
        "keep-alive pool: {} idle containers, {}MB used, {} evictions, {} expirations",
        st.idle_containers, st.used_mb, st.evictions, st.expirations
    );
}
