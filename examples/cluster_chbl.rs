//! A four-worker cluster behind consistent hashing with bounded loads:
//! locality keeps each function's invocations on its home worker (warm
//! starts) until the home saturates, then CH-BL forwards.
//!
//! Run with: `cargo run --release --example cluster_chbl`

use iluvatar::prelude::*;
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_lb::cluster::WorkerHandle;
use std::sync::Arc;

fn make_worker(name: &str) -> Arc<Worker> {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.05,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: name.into(),
        cores: 8,
        memory_mb: 4 * 1024,
        concurrency: ConcurrencyConfig {
            limit: 16,
            ..Default::default()
        },
        ..Default::default()
    };
    Arc::new(Worker::new(cfg, backend, clock))
}

fn main() {
    let workers: Vec<Arc<Worker>> = (0..4)
        .map(|i| make_worker(&format!("worker-{i}")))
        .collect();
    let handles: Vec<Arc<dyn WorkerHandle>> = workers
        .iter()
        .map(|w| Arc::clone(w) as Arc<dyn WorkerHandle>)
        .collect();
    let cluster = Cluster::new(handles, LbPolicy::ChBl(ChBlConfig::default()));

    // Register 12 functions everywhere.
    for i in 0..12 {
        cluster
            .register_all(FunctionSpec::new(format!("fn{i}"), "1").with_timing(200, 1_000))
            .unwrap();
    }

    // Each function invoked repeatedly: locality should make all but the
    // first invocation of each function warm.
    let mut warm = 0;
    let mut total = 0;
    for round in 0..5 {
        for i in 0..12 {
            let r = cluster.invoke(&format!("fn{i}-1"), "{}").unwrap();
            total += 1;
            if !r.cold {
                warm += 1;
            }
            if round == 0 {
                assert!(r.cold, "first round is all cold");
            }
        }
    }
    println!(
        "invocations: {total}, warm: {warm} (locality should give {}+)",
        total - 12
    );

    let st = cluster.stats();
    println!("\nper-worker dispatch counts: {:?}", st.dispatched);
    println!("forwarded (bounded-load overflow): {}", st.forwarded);
    for w in &workers {
        let s = w.status();
        println!(
            "  {}: completed={} warm_hits={} cold_starts={} used_mem={}MB",
            s.name, s.completed, s.warm_hits, s.cold_starts, s.used_mem_mb
        );
    }
    println!("\nExpected: every function pinned to one worker; zero or near-zero forwards at this load; warm hits dominate after round one.");
}
