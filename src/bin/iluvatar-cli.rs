//! Client CLI for a running Ilúvatar worker.
//!
//! ```text
//! iluvatar-cli <addr> status
//! iluvatar-cli <addr> register <name> <version> [warm_ms] [init_ms] [memory_mb]
//! iluvatar-cli <addr> invoke <fqdn> [args-json]
//! iluvatar-cli <addr> prewarm <fqdn>
//! ```

use iluvatar::prelude::*;
use iluvatar_core::api::WorkerApiClient;

fn usage() -> ! {
    eprintln!(
        "usage: iluvatar-cli <addr> <status|register|invoke|prewarm> [...]\n\
         \n\
         iluvatar-cli 127.0.0.1:8070 status\n\
         iluvatar-cli 127.0.0.1:8070 register hello 1 120 800 256\n\
         iluvatar-cli 127.0.0.1:8070 invoke hello-1 '{{\"k\":1}}'\n\
         iluvatar-cli 127.0.0.1:8070 prewarm hello-1"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let addr = args[0].parse().unwrap_or_else(|e| {
        eprintln!("bad address {:?}: {e}", args[0]);
        std::process::exit(2);
    });
    let client = WorkerApiClient::new(addr);
    match args[1].as_str() {
        "status" => match client.status() {
            Ok(st) => println!(
                "{}: running={} queued={} limit={} mem {}/{}MB load={:.2} completed={} warm={} cold={} dropped={}",
                st.name,
                st.running,
                st.queue_len,
                st.concurrency_limit,
                st.used_mem_mb,
                st.used_mem_mb + st.free_mem_mb,
                st.normalized_load,
                st.completed,
                st.warm_hits,
                st.cold_starts,
                st.dropped
            ),
            Err(e) => fail(e),
        },
        "register" => {
            if args.len() < 4 {
                usage();
            }
            let warm: u64 = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(100);
            let init: u64 = args.get(5).and_then(|v| v.parse().ok()).unwrap_or(500);
            let mem: u64 = args.get(6).and_then(|v| v.parse().ok()).unwrap_or(128);
            let spec = FunctionSpec::new(&args[2], &args[3])
                .with_timing(warm, init)
                .with_limits(ResourceLimits { cpus: 1.0, memory_mb: mem });
            match client.register(&spec) {
                Ok(()) => println!("registered {}", spec.fqdn),
                Err(e) => fail(e),
            }
        }
        "invoke" => {
            if args.len() < 3 {
                usage();
            }
            let body = args.get(3).map(|s| s.as_str()).unwrap_or("{}");
            match client.invoke(&args[2], body) {
                Ok(r) => println!(
                    "{} ({}; exec {}ms, e2e {}ms, queued {}ms)",
                    r.body,
                    if r.cold { "cold" } else { "warm" },
                    r.exec_ms,
                    r.e2e_ms,
                    r.queue_ms
                ),
                Err(e) => fail(e),
            }
        }
        "prewarm" => {
            if args.len() < 3 {
                usage();
            }
            match client.prewarm(&args[2]) {
                Ok(()) => println!("prewarmed {}", args[2]),
                Err(e) => fail(e),
            }
        }
        _ => usage(),
    }
}

fn fail(e: iluvatar_core::api::ApiError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}
