//! Elastic-fleet session: ride a seeded burst and prove the scaling run
//! replays bit-identically.
//!
//! The session drives a real [`Fleet`] — live in-process workers behind
//! the cluster, spawn + spec replay + HalfOpen admission on the way up,
//! graceful drain + detach on the way down — with the control loop
//! evaluated on a *synthetic, seeded* observation stream: a quiet → burst
//! → quiet arrival profile run through a fluid backlog model. Time is the
//! tick index, never a wall clock, so the policy's decision sequence is a
//! pure function of the seed; worker spawn/drain timing cannot leak in.
//!
//! ```text
//! autoscale_session [--seed n] [--policy name] [--ticks n] [--time-scale f]
//! ```
//!
//! Stdout carries exactly one line — the hex digest of the scale-event
//! sequence, the fleet-size trajectory, and the invocation totals. The
//! human-readable run summary goes to stderr. `check.sh` runs this twice
//! with the same seed and diffs stdout.

use iluvatar_autoscale::{AutoscaleConfig, FleetObservation, ScalingPolicyKind};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::{Worker, WorkerConfig};
use iluvatar_lb::cluster::WorkerHandle;
use iluvatar_lb::{BreakerConfig, Cluster, Fleet, LbPolicy};
use iluvatar_sync::SystemClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fold(digest: &mut u64, s: &str) {
    for b in s.bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let ticks: u64 = arg_value(&args, "--ticks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let policy_name =
        arg_value(&args, "--policy").unwrap_or_else(|| "reactive-queue-delay".to_string());
    let policy = ScalingPolicyKind::all()
        .into_iter()
        .find(|k| k.name() == policy_name)
        .unwrap_or_else(|| panic!("unknown policy {policy_name:?}"));

    let mut cfg = AutoscaleConfig::enabled_with(policy);
    cfg.min_workers = 1;
    cfg.max_workers = 6;
    cfg.interval_ms = 500;
    cfg.scale_up_cooldown_ms = 500;
    cfg.scale_down_cooldown_ms = 2_000;
    cfg.max_step = 2;
    let interval_ms = cfg.interval_ms;

    // Real in-process workers over the simulated backend; the factory is
    // the same shape a distributed deployment would use to spawn nodes.
    let clock = SystemClock::shared();
    let mk_worker = {
        let clock = Arc::clone(&clock);
        move |name: String| -> Arc<dyn WorkerHandle> {
            let backend = Arc::new(SimBackend::new(
                Arc::clone(&clock),
                SimBackendConfig {
                    time_scale,
                    ..Default::default()
                },
            ));
            let mut wcfg = WorkerConfig::for_testing();
            wcfg.name = name;
            Arc::new(Worker::new(wcfg, backend, Arc::clone(&clock)))
        }
    };
    let seed_worker = mk_worker("w0".to_string());
    let cluster = Arc::new(Cluster::with_capacity(
        vec![seed_worker],
        LbPolicy::ChBl(Default::default()),
        BreakerConfig::default(),
        cfg.max_workers,
    ));
    let factory = {
        let mk_worker = mk_worker.clone();
        move |seq: usize| Ok(mk_worker(format!("elastic-{seq}")))
    };
    let fleet = Fleet::new(Arc::clone(&cluster), Box::new(factory), cfg);

    let specs: Vec<FunctionSpec> = (0..4)
        .map(|i| FunctionSpec::new(format!("f{i}"), "1").with_timing(100, 400))
        .collect();
    for s in &specs {
        cluster.register_all(s.clone()).expect("register");
        fleet.remember_spec(s.clone());
    }

    // Seeded quiet → burst → quiet arrival profile, and a fluid backlog
    // model converting arrivals to the queue-delay signal: each worker
    // serves `service_per_tick` invocations per interval; backlog beyond
    // that waits, delay = backlog / fleet service rate.
    let mut rng = StdRng::seed_from_u64(seed);
    let service_per_tick = 10.0f64;
    let burst_start = ticks / 4;
    let burst_end = ticks / 2;
    let mut backlog = 0.0f64;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    fold(
        &mut digest,
        &format!("policy={};seed={seed};ticks={ticks};", policy.name()),
    );
    let mut invoked = 0u64;
    let mut invoke_errors = 0u64;
    let mut peak_live = 0usize;

    for tick in 0..ticks {
        let t_ms = tick * interval_ms;
        let base = if (burst_start..burst_end).contains(&tick) {
            55.0
        } else {
            2.0
        };
        let jitter: f64 = rng.gen_range(0.0..5.0);
        let arrivals = (base + jitter).round() as u64;

        // Drive a few real invocations through the elastic cluster each
        // tick (synchronous, so their completion order cannot race the
        // digest): the fleet being scaled is actually serving traffic.
        for i in 0..arrivals.min(6) {
            let fqdn = format!("f{}-1", (tick + i) % 4);
            fleet.note_arrival(&fqdn);
            match cluster.invoke(&fqdn, "{}") {
                Ok(_) => invoked += 1,
                Err(_) => invoke_errors += 1,
            }
        }

        let live = fleet.live().max(1);
        let capacity = live as f64 * service_per_tick;
        backlog = (backlog + arrivals as f64 - capacity).max(0.0);
        let delay_ms = backlog / capacity * interval_ms as f64;
        let per_fn: Vec<(String, u64)> = (0..4)
            .map(|i| {
                (
                    format!("f{i}-1"),
                    arrivals / 4 + u64::from(i < (arrivals % 4) as usize),
                )
            })
            .collect();
        let obs = FleetObservation {
            now_ms: t_ms,
            live,
            draining: fleet.draining(),
            queued: backlog.round() as u64,
            running: capacity.min(backlog + arrivals as f64).round() as u64,
            mean_queue_delay_ms: delay_ms,
            max_queue_delay_ms: delay_ms as u64,
            concurrency_limit: 8,
            pull_queue_depth: 0,
            arrivals,
            per_fn_arrivals: per_fn,
        };

        fleet.reap();
        let decision = fleet.evaluate(&obs);
        fleet.apply(&decision, t_ms).expect("apply decision");
        let live_now = fleet.live();
        peak_live = peak_live.max(live_now);
        fold(&mut digest, &format!("t{t_ms}:live={live_now};"));
    }
    // Let the tail of draining workers retire.
    loop {
        fleet.reap();
        if fleet.draining() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let events = fleet.events();
    for e in &events {
        fold(
            &mut digest,
            &format!(
                "e:{}:{}:{}:{}->{};",
                e.t_ms,
                e.direction.label(),
                e.reason,
                e.from,
                e.to
            ),
        );
    }
    fold(
        &mut digest,
        &format!("invoked={invoked};errors={invoke_errors};"),
    );

    // The elastic contract, asserted on every run: the burst grows the
    // fleet (1 → ≥3), the quiet tail shrinks it back to the floor, and
    // scale-down never costs an invocation.
    assert!(
        peak_live >= 3,
        "burst must grow the fleet, peak {peak_live}"
    );
    assert_eq!(fleet.live(), 1, "quiet tail must return to min_workers");
    assert_eq!(invoke_errors, 0, "elasticity must not drop invocations");

    eprintln!(
        "seed={seed} policy={} ticks={ticks}: peak_live={peak_live} events={} stopped={} invoked={invoked} errors={invoke_errors}",
        policy.name(),
        events.len(),
        fleet.stopped(),
    );
    for e in &events {
        eprintln!(
            "  t={}ms {} ({}) {} -> {}",
            e.t_ms,
            e.direction.label(),
            e.reason,
            e.from,
            e.to
        );
    }
    println!("{digest:016x}");
}
