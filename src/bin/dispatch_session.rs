//! Pull-dispatch session: two workers lease from one plane, one dies
//! mid-run, and the lease TTL proves no accepted invocation is lost.
//!
//! A skewed two-tenant mix (weight-2 "hot" vs weight-1 "cold") is enqueued
//! onto a WAL-backed [`iluvatar_dispatch::PullPlane`] in pull mode while
//! two [`iluvatar_dispatch::PullLoop`]s execute leases on real simulated
//! workers. At the seeded kill point one loop dies mid-flight — its held
//! leases are abandoned, expire, requeue exactly once, and the surviving
//! worker (stealing from the dead worker's shard) serves them. The session
//! then asserts the pull-mode contract:
//!
//! * **zero lost invocations** — every accepted id yields a result;
//! * **zero model violations** — the full lease telemetry stream replays
//!   clean through the conformance [`DispatchModel`];
//! * **nothing stranded** — final queue depth and live-lease count are 0,
//!   and a fresh WAL replay has an empty pending set.
//!
//! ```text
//! dispatch_session [--seed n] [--invocations n] [--kill-at n] [--time-scale f]
//! ```
//!
//! Stdout carries exactly one line (the hex digest over kill-timing-
//! independent state: the accepted id→tenant map, per-tenant totals, and
//! the drained-clean terminal facts). The human-readable summary goes to
//! stderr. `check.sh` runs this twice with the same seed and diffs stdout.

use iluvatar_admission::{TenantRegistry, TenantSpec};
use iluvatar_conformance::Checker;
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::wal::{self, Wal};
use iluvatar_core::{Worker, WorkerConfig};
use iluvatar_dispatch::{DispatchConfig, LeaseSource, PullLoop, PullPlane, PullTask, TaskExecutor};
use iluvatar_sync::SystemClock;
use iluvatar_telemetry::{TelemetryBus, TelemetrySink, VecSink};
use rand::{Rng, SeedableRng, StdRng};
use std::sync::Arc;
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fold(digest: &mut u64, s: &str) {
    for b in s.bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let invocations: u64 = arg_value(&args, "--invocations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let kill_at: u64 = arg_value(&args, "--kill-at")
        .and_then(|v| v.parse().ok())
        .unwrap_or(invocations / 2);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    let wal_dir = std::env::temp_dir().join(format!("iluvatar-dispatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    let wal_path = wal_dir.join(format!("dispatch-{seed}.wal"));

    let clock = SystemClock::shared();
    let sink = Arc::new(VecSink::new());
    let bus = TelemetryBus::new("lb", Arc::clone(&clock));
    bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);

    // The plane: pull mode, short lease TTL so abandoned leases from the
    // killed loop requeue inside the run, seeded steal victim selection.
    let mut cfg = DispatchConfig::pull();
    cfg.lease_ttl_ms = 300;
    cfg.max_batch = 2;
    cfg.seed = seed;
    let plane = Arc::new(PullPlane::new(cfg, Arc::clone(&clock)));
    plane.set_telemetry(Arc::clone(&bus));
    plane.register_worker("w0");
    plane.register_worker("w1");
    let registry = Arc::new(TenantRegistry::new(Arc::clone(&clock)));
    registry.upsert(TenantSpec::new("hot").with_weight(2.0));
    registry.upsert(TenantSpec::new("cold").with_weight(1.0));
    plane.set_registry(registry);
    let walh = Arc::new(Wal::open(&wal_path, 1_000).expect("open wal"));
    plane.attach_wal(walh);

    // Two real workers behind pull loops: leases execute on a simulated
    // backend so service times are realistic but compressed.
    let spec = FunctionSpec::new("f", "1").with_timing(100, 400);
    let mk_worker = |_name: &str| {
        let backend: Arc<dyn ContainerBackend> = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale,
                ..Default::default()
            },
        ));
        let w = Worker::new(WorkerConfig::for_testing(), backend, Arc::clone(&clock));
        w.register(spec.clone()).expect("register");
        Arc::new(w)
    };
    let spawn_loop = |name: &'static str, worker: Arc<Worker>| {
        let exec: Arc<TaskExecutor> = Arc::new(move |t: &PullTask| {
            match worker.invoke_tenant(&t.fqdn, &t.args, t.tenant.as_deref()) {
                Ok(r) => (true, r.body, r.exec_ms),
                Err(e) => (false, e.to_string(), 0),
            }
        });
        PullLoop::spawn(
            Arc::clone(&plane) as Arc<dyn LeaseSource>,
            name.to_string(),
            2,
            Duration::from_millis(3),
            exec,
        )
    };
    let mut lp0 = Some(spawn_loop("w0", mk_worker("w0")));
    let lp1 = spawn_loop("w1", mk_worker("w1"));

    // The skewed mix: ~75% of arrivals belong to the weight-2 tenant.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted: Vec<(u64, &'static str)> = Vec::new();
    for i in 0..invocations {
        if i == kill_at {
            // The crash: w0 dies mid-flight, leases and all. No drain.
            lp0.take().expect("loop alive").kill();
        }
        let tenant = if rng.gen_bool(0.75) { "hot" } else { "cold" };
        let id = plane
            .enqueue("f-1", &format!("{{\"i\":{i}}}"), Some(tenant))
            .expect("accepted invocations are durable");
        accepted.push((id, tenant));
        clock.sleep_ms(2);
    }

    // Zero loss: every accepted id completes — killed-worker leases expire
    // (TTL 300ms), requeue exactly once, and w1 steals them from w0's shard.
    let mut lost = 0u64;
    for (id, _) in &accepted {
        if plane.wait(*id, 20_000).is_none() {
            eprintln!("LOST: invocation {id} never completed");
            lost += 1;
        }
    }
    assert_eq!(lost, 0, "accepted invocations lost after worker kill");
    lp1.stop();
    plane.sweep();
    assert_eq!(plane.depth(), 0, "queues drained");
    assert_eq!(plane.live_leases(), 0, "no lease outlives the run");

    // The full lease stream must replay clean through the reference model:
    // no double-lease, requeue exactly once per expiry, no early expiry.
    let mut checker = Checker::new().with_require_terminal(false);
    let events = sink.events();
    for ev in &events {
        checker.ingest(ev);
    }
    let report = checker.finish();
    for v in &report.violations {
        eprintln!("VIOLATION {}/{}: {}", v.model, v.rule, v.detail);
    }
    assert!(
        report.violations.is_empty(),
        "conformance violations in the lease stream"
    );

    // Nothing stranded on disk either: a fresh replay of the plane's WAL
    // must find a durable Completed for every accepted Enqueued.
    let counters = plane.counters();
    drop(plane);
    let replayed = wal::replay(&wal_path).expect("replay wal");
    assert!(
        replayed.pending.is_empty(),
        "WAL replay found stranded invocations: {:?}",
        replayed.pending.iter().map(|p| p.id).collect::<Vec<_>>()
    );

    // Digest only kill-timing-independent state. How many leases expired,
    // requeued, or were stolen depends on where the crash landed relative
    // to in-flight executions — stderr material, never digest material.
    let mut hot = 0u64;
    let mut cold = 0u64;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for (id, tenant) in &accepted {
        fold(&mut digest, &format!("{id}:{tenant};"));
        if *tenant == "hot" {
            hot += 1;
        } else {
            cold += 1;
        }
    }
    fold(&mut digest, &format!("hot={hot};cold={cold};"));
    fold(&mut digest, "depth=0;leases=0;lost=0;violations=0;");

    eprintln!(
        "seed={seed} invocations={invocations} kill_at={kill_at} accepted={} hot={hot} cold={cold}",
        accepted.len()
    );
    eprintln!(
        "  plane: completed={} issued={} stolen={} expired={} requeued={} dead_completions={}",
        counters.completed,
        counters.issued,
        counters.stolen,
        counters.expired,
        counters.requeued,
        counters.dead_completions
    );
    eprintln!(
        "  stream: {} events, {} violations; wal pending after replay: {}",
        events.len(),
        report.violations.len(),
        replayed.pending.len()
    );

    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("{digest:016x}");
}
