//! Deterministic admission session: one seeded multi-tenant run, one digest.
//!
//! Exercises the three admission-control layers with a seeded workload and
//! folds everything observable into a single FNV-1a digest printed to
//! stdout — `check.sh` runs this twice and diffs the output to catch
//! nondeterminism in the fair queue or the admission bookkeeping:
//!
//! 1. a DRR drill: seeded pushes into a [`DrrQueue`] (3:1:1 weights), full
//!    drain, the exact pop order hashed;
//! 2. an [`AdmissionController`] drill on a [`ManualClock`]: a rate-limited
//!    best-effort tenant and an unlimited guaranteed tenant, with virtual
//!    time advanced by the seeded stream — throttle decisions are a pure
//!    function of the seed;
//! 3. a worker run over the simulated backend with admission enabled and
//!    unlimited rates: every seeded invocation completes, so the per-tenant
//!    served counts are exact.
//!
//! ```text
//! admission_session [--seed n] [--invocations n]
//! ```
//!
//! Stdout carries exactly one line (the hex digest); the human-readable
//! per-tenant summary goes to stderr.

use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::invocation::InvocationHandle;
use iluvatar_core::queue::QueuedInvocation;
use iluvatar_core::{
    AdmissionConfig, AdmissionController, DrrQueue, PriorityClass, TenantSpec, Worker, WorkerConfig,
};
use iluvatar_sync::{ManualClock, SystemClock};
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Minimal splitmix64 so the workload stream is stable across toolchains.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

struct Fnv(u64);
impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

const TENANTS: [&str; 3] = ["gold", "bronze", "free"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let invocations: usize = arg_value(&args, "--invocations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let mut digest = Fnv::new();

    // --- 1. DRR drill: seeded pushes, full drain, pop order hashed. -------
    let mut rng = Rng(seed);
    let mut drr = DrrQueue::new(20);
    for i in 0..invocations {
        let t = TENANTS[(rng.next() % 3) as usize];
        let (tx, _h) = InvocationHandle::pair();
        drr.push(QueuedInvocation {
            fqdn: "f-1".into(),
            args: String::new(),
            trace_id: i as u64,
            arrived_at: i as u64,
            expected_exec_ms: 5.0 + (rng.next() % 45) as f64,
            iat_ms: 10.0,
            expect_warm: true,
            tenant: Some(t.to_string()),
            tenant_weight: if t == "gold" { 3.0 } else { 1.0 },
            result_tx: tx,
        });
    }
    let mut drr_counts = [0u64; 3];
    while let Some(item) = drr.pop() {
        let t = item.tenant.as_deref().unwrap_or("?");
        digest.eat(t.as_bytes());
        drr_counts[TENANTS.iter().position(|x| *x == t).unwrap()] += 1;
    }

    // --- 2. Admission drill on virtual time: throttling is seed-pure. -----
    let clock = Arc::new(ManualClock::new());
    let ctl = AdmissionController::new(
        AdmissionConfig::enabled_with(vec![
            TenantSpec::new("paid").with_class(PriorityClass::Guaranteed),
            TenantSpec::new("free").with_rate(2.0, 2.0),
        ]),
        Arc::clone(&clock) as Arc<dyn iluvatar_sync::Clock>,
    );
    let mut rng = Rng(seed ^ 0xadee);
    for _ in 0..invocations {
        let t = if rng.next().is_multiple_of(2) {
            "paid"
        } else {
            "free"
        };
        let d = ctl.admit(t, 0);
        digest.eat(format!("{t}:{d:?};").as_bytes());
        clock.advance(rng.next() % 300);
    }
    let mut admission_snap = ctl.snapshot();
    admission_snap.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    for s in &admission_snap {
        digest.eat(
            format!(
                "{}:{}:{}:{}:{};",
                s.tenant, s.admitted, s.throttled, s.shed, s.served
            )
            .as_bytes(),
        );
    }

    // --- 3. Worker run: unlimited rates, so served counts are exact. ------
    let wall = SystemClock::shared();
    let sim = Arc::new(SimBackend::new(
        Arc::clone(&wall),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let mut cfg = WorkerConfig::for_testing();
    cfg.queue.policy = iluvatar_core::QueuePolicyKind::Drr;
    cfg.admission = AdmissionConfig::enabled_with(vec![
        TenantSpec::new("gold").with_weight(3.0),
        TenantSpec::new("bronze").with_weight(1.0),
    ]);
    let mut worker = Worker::new(cfg, sim, wall);
    worker
        .register(FunctionSpec::new("f", "1").with_timing(100, 400))
        .expect("register");
    let mut rng = Rng(seed ^ 0x3057);
    for i in 0..invocations {
        let t = if rng.next() % 4 < 3 { "gold" } else { "bronze" };
        worker
            .invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(t))
            .expect("invoke");
    }
    let mut tstats = worker.tenant_stats();
    tstats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    for t in &tstats {
        digest.eat(
            format!(
                "{}:{}:{}:{}:{};",
                t.tenant, t.admitted, t.throttled, t.shed, t.served
            )
            .as_bytes(),
        );
    }

    eprintln!("seed={seed} invocations={invocations}");
    eprintln!(
        "  drr pops: gold={} bronze={} free={}",
        drr_counts[0], drr_counts[1], drr_counts[2]
    );
    for s in &admission_snap {
        eprintln!(
            "  admission {}: admitted={} throttled={} (class drill)",
            s.tenant, s.admitted, s.throttled
        );
    }
    for t in &tstats {
        eprintln!(
            "  worker {}: admitted={} served={}",
            t.tenant, t.admitted, t.served
        );
    }
    worker.shutdown();
    println!("{:016x}", digest.0);
}
