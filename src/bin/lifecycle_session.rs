//! Crash-recovery session: kill a worker mid-trace, recover from its WAL,
//! and prove convergence with one digest.
//!
//! Submits a trace of async invocations against a WAL-journaled worker and,
//! at the occurrence chosen by the chaos plan's `worker_kill` site, kills
//! the worker outright — no drain, no final snapshot. The session then
//! rebuilds a worker with [`Worker::recover`], awaits every replayed
//! invocation, and asserts the crash-safety contract: **no invocation
//! accepted before the kill is lost**, and the post-recovery state (accepted
//! trace ids, per-tenant books, completion totals) is a pure function of the
//! seed — which moment each in-flight invocation died at must not leak into
//! the digest.
//!
//! ```text
//! lifecycle_session [--seed n] [--kill-at n] [--invocations n] [--time-scale f]
//! ```
//!
//! Stdout carries exactly one line (the hex digest); the human-readable run
//! summary — accepted/rejected counts and the recovery report — goes to
//! stderr. `check.sh` runs this twice with the same seed and diffs stdout.

use iluvatar_chaos::{sites, FaultPlan, FaultPlanConfig, FaultSpec};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::{AdmissionConfig, LifecycleConfig, TenantSpec, Worker, WorkerConfig};
use iluvatar_sync::SystemClock;
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fold(digest: &mut u64, s: &str) {
    for b in s.bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let kill_at: u64 = arg_value(&args, "--kill-at")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let invocations: u64 = arg_value(&args, "--invocations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    // A fresh per-process WAL; the digest never depends on the path.
    let wal_dir = std::env::temp_dir().join(format!("iluvatar-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    let wal_path = wal_dir.join(format!("queue-{seed}.wal"));
    let wal_path = wal_path.to_str().expect("utf-8 wal path").to_string();

    let clock = SystemClock::shared();
    let spec = FunctionSpec::new("f", "1").with_timing(100, 400);
    let mk_cfg = || WorkerConfig {
        lifecycle: LifecycleConfig {
            snapshot_every: 8,
            ..LifecycleConfig::with_wal(&wal_path)
        },
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("lc-a"),
            TenantSpec::new("lc-b"),
        ]),
        ..WorkerConfig::for_testing()
    };
    let mk_backend = || -> Arc<dyn ContainerBackend> {
        Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale,
                ..Default::default()
            },
        ))
    };

    // The kill is a chaos fault like any other: the worker_kill site fires
    // on the scheduled submission occurrence. The session performs the kill
    // itself — the injector sits below the control plane it terminates.
    let plan = FaultPlan::new(FaultPlanConfig {
        seed,
        worker_kill: FaultSpec::on_occurrences(vec![kill_at]),
        ..Default::default()
    });

    let mut worker = Worker::new(mk_cfg(), mk_backend(), Arc::clone(&clock));
    worker.register(spec.clone()).expect("register");

    // Submissions are sequential on this thread, so every accepted
    // invocation's Enqueued record is durable before the kill can fire:
    // "accepted" and "journaled" are the same set by construction.
    let mut accepted: Vec<u64> = Vec::new();
    let mut rejected_after_kill = 0u64;
    let mut killed = false;
    for i in 0..invocations {
        if plan.decide(sites::WORKER_KILL) && !killed {
            worker.kill();
            killed = true;
        }
        let tenant = if i % 2 == 0 { "lc-a" } else { "lc-b" };
        match worker.async_invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant)) {
            Ok(_handle) => {
                // The journal entry is written synchronously at submission;
                // the newest trace is the one just accepted.
                accepted.push(worker.recent_traces(1)[0].trace_id);
            }
            Err(_) => rejected_after_kill += 1,
        }
    }
    if !killed {
        // kill-at beyond the trace: crash after the last submission.
        worker.kill();
    }
    drop(worker);

    // Restart: replay the snapshot + tail, re-enqueue what never completed,
    // and run it to completion on a fresh backend (the old containers died
    // with the process).
    let (recovered, report) =
        Worker::recover(mk_cfg(), mk_backend(), clock, std::slice::from_ref(&spec));
    let mut replay_failed = 0u64;
    for (_id, handle) in report.handles {
        if handle.wait().is_err() {
            replay_failed += 1;
        }
    }

    let st = recovered.status();
    let mut tstats = recovered.tenant_stats();
    tstats.sort_by(|a, b| a.tenant.cmp(&b.tenant));

    // Zero-loss: every accepted invocation is accounted for — completed
    // before the kill (durable Completed record) or re-executed after it.
    assert_eq!(replay_failed, 0, "replayed invocations must complete");
    assert_eq!(
        st.completed,
        accepted.len() as u64,
        "accepted-before-kill invocations lost (completed={} accepted={})",
        st.completed,
        accepted.len()
    );

    // The digest covers only crash-timing-independent state: which ids were
    // accepted, the per-tenant books, and the completion total. How the
    // completions split between "before the kill" and "replayed" depends on
    // scheduling and must not appear here.
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for id in &accepted {
        fold(&mut digest, &format!("{id};"));
    }
    for t in &tstats {
        fold(
            &mut digest,
            &format!(
                "{}:{}:{}:{}:{};",
                t.tenant, t.admitted, t.throttled, t.shed, t.served
            ),
        );
    }
    fold(
        &mut digest,
        &format!(
            "completed={};dropped={};failed={};",
            st.completed, st.dropped, st.failed
        ),
    );

    eprintln!(
        "seed={seed} kill_at={kill_at} invocations={invocations} accepted={} rejected_after_kill={rejected_after_kill}",
        accepted.len()
    );
    eprintln!(
        "  recovery: replayed={} records_read={} torn_lines={} max_trace_id={}",
        report.replayed, report.records_read, report.torn_lines, report.max_trace_id
    );
    eprintln!(
        "  post-recovery: completed={} dropped={} failed={}",
        st.completed, st.dropped, st.failed
    );
    for t in &tstats {
        eprintln!(
            "  tenant {}: admitted={} served={}",
            t.tenant, t.admitted, t.served
        );
    }

    drop(recovered);
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("{digest:016x}");
}
