//! Deterministic chaos session: one seeded fault-injected run, one digest.
//!
//! Drives a worker over a fault-injecting backend with the acceptance mix
//! (5% cold-start failures, 2% agent hangs, 10% agent errors) and retries
//! enabled, then prints the journal digest of every invocation's timeline
//! to stdout. Identical seeds must print identical digests — `check.sh`
//! runs this twice and diffs the output to catch nondeterminism/flakes.
//!
//! ```text
//! chaos_session [--seed n] [--invocations n] [--time-scale f]
//! ```
//!
//! Stdout carries exactly one line (the hex digest); the human-readable
//! run summary — fault counts and recovery counters — goes to stderr.

use iluvatar_chaos::{sites, FaultInjector, FaultPlanConfig, FaultSpec};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::{
    journal_digest, AdmissionConfig, ResilienceConfig, TenantSpec, Worker, WorkerConfig,
};
use iluvatar_sync::SystemClock;
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let invocations: usize = arg_value(&args, "--invocations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    let clock = SystemClock::shared();
    let sim = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale,
            ..Default::default()
        },
    ));
    let faults = FaultPlanConfig {
        seed,
        create_fail: FaultSpec::with_prob(0.05),
        invoke_hang: FaultSpec::with_prob(0.02),
        invoke_error: FaultSpec::with_prob(0.10),
        hang_ms: 150,
        ..Default::default()
    };
    let injector = Arc::new(FaultInjector::new(sim, faults));
    let cfg = WorkerConfig {
        resilience: ResilienceConfig {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            agent_timeout_ms: 40,
            ..Default::default()
        },
        // Admission on with unlimited rates: faults must not corrupt the
        // per-tenant books, and the counts fold into the digest below.
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("chaos-a"),
            TenantSpec::new("chaos-b"),
        ]),
        ..WorkerConfig::for_testing()
    };
    let mut worker = Worker::new(
        cfg,
        Arc::clone(&injector) as Arc<dyn ContainerBackend>,
        clock,
    );
    worker
        .register(FunctionSpec::new("f", "1").with_timing(100, 400))
        .expect("register");

    let mut ids = Vec::with_capacity(invocations);
    let mut failed = 0usize;
    for i in 0..invocations {
        let tenant = if i.is_multiple_of(2) {
            "chaos-a"
        } else {
            "chaos-b"
        };
        match worker.invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant)) {
            Ok(r) => ids.push(r.trace_id),
            // Retry-exhausted failures are part of the timeline too.
            Err(_) => {
                failed += 1;
                ids.push(worker.recent_traces(1)[0].trace_id);
            }
        }
    }
    // `ResultReturned` is journaled just after the result reaches us; wait
    // for every record to complete so the digest covers full timelines.
    let records: Vec<_> = ids
        .iter()
        .map(|&id| loop {
            let r = worker.trace(id).expect("trace journaled");
            if r.completed() {
                break r;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        })
        .collect();
    // Per-tenant books are part of the determinism contract too: fold the
    // sorted (tenant, admitted, served) tuples into the journal digest.
    let mut digest = journal_digest(&records);
    let mut tstats = worker.tenant_stats();
    tstats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    for t in &tstats {
        for b in format!(
            "{}:{}:{}:{}:{};",
            t.tenant, t.admitted, t.throttled, t.shed, t.served
        )
        .bytes()
        {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    let st = worker.status();
    let stats = injector.plan().stats();
    eprintln!(
        "seed={seed} invocations={invocations} ok={} failed={failed}",
        invocations - failed
    );
    for site in sites::ALL {
        eprintln!("  fault {site}: fired {}", stats.fired(site));
    }
    eprintln!(
        "  recovery: retries={} agent_timeouts={} quarantined={} dropped_retry_exhausted={}",
        st.retries, st.agent_timeouts, st.quarantined, st.dropped_retry_exhausted
    );
    for t in &tstats {
        eprintln!(
            "  tenant {}: admitted={} served={}",
            t.tenant, t.admitted, t.served
        );
    }
    worker.shutdown();
    println!("{digest:016x}");
}
