//! Storage-fault session: drive a worker's write-ahead log through the full
//! disk-fault menu — fsync failures, a torn write, an ENOSPC window with
//! degraded-mode re-arming, a 250 ms I/O stall, and a crash with a torn
//! segment tail — and prove the storage layer's contract holds throughout:
//!
//! * **P1 — baseline**: a healthy serialized trace; the books and counters
//!   the later phases are judged against.
//! * **P2 — retry ladder**: fsync failures every 3rd sync plus one torn
//!   write. Every invocation must still be accepted and complete; the
//!   surviving segments must scan to a model-legal record stream with the
//!   torn half-frame quarantined.
//! * **P3 — ENOSPC window**: a contiguous run of failed writes exhausts
//!   the ladder under `wal.on_error = degrade`; the worker must keep
//!   serving (results flagged non-durable), then re-arm once the window
//!   passes, with the degraded gauge visibly alternating.
//! * **P4 — stall shed**: one injected 250 ms fsync stall; an append
//!   arriving past the deadline must be shed with `WalUnavailable`
//!   (503 + Retry-After on the wire) instead of queueing behind the stall.
//! * **P5 — kill/recover**: a seeded mid-trace kill under active fsync
//!   faults, a hand-torn segment tail, and a bit-rot replay probe. The
//!   conformance checker rides the telemetry bus *online* across both
//!   incarnations; zero violations, zero lost accepted invocations.
//!
//! ```text
//! storage_session [--seed n] [--time-scale f]
//! ```
//!
//! Stdout carries exactly one line — the FNV digest of the session's
//! schedule-independent material. `check.sh` diffs two runs.

use iluvatar_chaos::{DiskFaultPlanConfig, FaultSpec, FaultyStorage};
use iluvatar_conformance::{Checker, CheckerSink};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::{
    wal, AdmissionConfig, InvokeError, LifecycleConfig, TelemetrySink, TenantSpec, WalConfig,
    WalRecord, Worker, WorkerConfig,
};
use iluvatar_sync::{RealStorage, Storage, SystemClock};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(digest: &mut u64, s: &str) {
    for b in s.bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("iluvatar-storage-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn mk_backend(clock: &Arc<dyn iluvatar_sync::Clock>, time_scale: f64) -> Arc<dyn ContainerBackend> {
    Arc::new(SimBackend::new(
        Arc::clone(clock),
        SimBackendConfig {
            time_scale,
            ..Default::default()
        },
    ))
}

fn base_cfg(wal_path: &str, wal: WalConfig) -> WorkerConfig {
    WorkerConfig {
        lifecycle: LifecycleConfig {
            // High threshold: no compaction mid-phase, so post-mortem scans
            // see the whole record stream including quarantined garbage.
            snapshot_every: 64,
            wal,
            ..LifecycleConfig::with_wal(wal_path)
        },
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("st-a"),
            TenantSpec::new("st-b"),
        ]),
        ..WorkerConfig::for_testing()
    }
}

fn spec() -> FunctionSpec {
    FunctionSpec::new("f", "1").with_timing(100, 300)
}

/// All surviving segment bytes of the WAL at `base`, in replay order.
fn wal_bytes(base: &Path) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (_, seg) in wal::discover_segments(&RealStorage, base) {
        bytes.extend_from_slice(&std::fs::read(&seg).unwrap_or_default());
    }
    bytes
}

fn fail(msg: &str) -> ! {
    eprintln!("storage_session: {msg}");
    std::process::exit(1);
}

/// Serialized trace: each invocation completes before the next submits, so
/// record order, fault-site occurrence order, and the books are all
/// schedule-independent.
fn run_serialized(worker: &Worker, n: usize, phase: &str) -> usize {
    let mut ok = 0usize;
    for i in 0..n {
        let tenant = if i % 2 == 0 { "st-a" } else { "st-b" };
        match worker.invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant)) {
            Ok(_) => ok += 1,
            Err(e) => fail(&format!("{phase}: invocation {i} rejected: {e}")),
        }
    }
    ok
}

fn books_part(worker: &Worker) -> String {
    let mut tstats = worker.tenant_stats();
    tstats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let mut part = String::new();
    for t in &tstats {
        part.push_str(&format!(
            "{}:{}:{}:{}:{};",
            t.tenant, t.admitted, t.throttled, t.shed, t.served
        ));
    }
    part
}

// ---------------------------------------------------------------- phase P1

fn phase_healthy(time_scale: f64) -> String {
    let dir = temp_dir("p1");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let clock = SystemClock::shared();
    let mut worker = Worker::new(
        base_cfg(
            &wal_path,
            WalConfig {
                fsync: "always".into(),
                ..Default::default()
            },
        ),
        mk_backend(&clock, time_scale),
        clock,
    );
    worker.register(spec()).expect("register");
    let ok = run_serialized(&worker, 8, "P1");
    let part = format!("ok={ok};{}", books_part(&worker));
    worker.shutdown();
    eprintln!("P1 (baseline): {ok}/8 completed");
    let _ = std::fs::remove_dir_all(&dir);
    part
}

// ---------------------------------------------------------------- phase P2

fn phase_retry_ladder(seed: u64, time_scale: f64) -> String {
    let dir = temp_dir("p2");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let clock = SystemClock::shared();
    let storage: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
        Arc::new(RealStorage),
        DiskFaultPlanConfig {
            seed,
            fsync_fail: FaultSpec::every_nth(3),
            write_torn: FaultSpec::on_occurrences(vec![4]),
            ..Default::default()
        },
    ));
    let mut worker = Worker::new_with_storage(
        base_cfg(
            &wal_path,
            WalConfig {
                fsync: "always".into(),
                retry_limit: 3,
                ..Default::default()
            },
        ),
        mk_backend(&clock, time_scale),
        clock,
        storage,
    );
    worker.register(spec()).expect("register");
    let ok = run_serialized(&worker, 10, "P2");
    let st = worker.status();
    // Crash-style exit: no shutdown snapshot, so the scan below sees the
    // raw stream with the quarantined half-frame still in place.
    worker.kill();
    drop(worker);

    let bytes = wal_bytes(Path::new(&wal_path));
    let scan = wal::scan_frames(&bytes);
    let mut checker = Checker::new();
    for rec in wal::dedup_records(&scan.records) {
        checker.ingest_wal_record("wal-file", rec);
    }
    let report = checker.finish();
    if !report.ok() {
        fail(&format!("P2: model violations: {:?}", report.violations));
    }
    if scan.corrupt_frames == 0 {
        fail("P2: the torn write left no quarantined frame");
    }
    let part = format!(
        "ok={ok};records={};corrupt={};torn={};rot={};violations={};",
        scan.records.len(),
        scan.corrupt_frames,
        scan.torn_tail,
        st.wal_rotations,
        report.violations.len()
    );
    eprintln!(
        "P2 (retry ladder): {ok}/10 completed, {} records, {} quarantined, {} rotations",
        scan.records.len(),
        scan.corrupt_frames,
        st.wal_rotations
    );
    let _ = std::fs::remove_dir_all(&dir);
    part
}

// ---------------------------------------------------------------- phase P3

fn phase_degrade_rearm(seed: u64, time_scale: f64) -> String {
    let dir = temp_dir("p3");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let clock = SystemClock::shared();
    let storage: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
        Arc::new(RealStorage),
        DiskFaultPlanConfig {
            seed,
            // A contiguous ENOSPC window: every write from op 4 to op 120
            // fails, deep enough to exhaust retry+rotate on every attempt.
            write_fail: FaultSpec::on_occurrences((4..=120).collect()),
            ..Default::default()
        },
    ));
    let mut worker = Worker::new_with_storage(
        base_cfg(
            &wal_path,
            WalConfig {
                fsync: "never".into(),
                on_error: "degrade".into(),
                retry_limit: 1,
                rearm_after_ms: 1,
                ..Default::default()
            },
        ),
        mk_backend(&clock, time_scale),
        clock,
        storage,
    );
    worker.register(spec()).expect("register");

    let mut degraded_seen = false;
    let mut completed = 0usize;
    let mut rounds = 0usize;
    // Keep serving through the window: every invocation must be accepted
    // (durable or flagged non-durable), and once the window passes the
    // periodic/lazy re-arm must bring the log back.
    while rounds < 300 {
        let tenant = if rounds.is_multiple_of(2) {
            "st-a"
        } else {
            "st-b"
        };
        match worker.invoke_tenant("f-1", &format!("{{\"i\":{rounds}}}"), Some(tenant)) {
            Ok(_) => completed += 1,
            Err(e) => fail(&format!("P3: degraded mode must keep serving: {e}")),
        }
        let st = worker.status();
        if st.wal_degraded {
            degraded_seen = true;
        }
        if degraded_seen && !st.wal_degraded && rounds >= 50 {
            break; // re-armed after the window
        }
        rounds += 1;
    }
    let st = worker.status();
    if !degraded_seen {
        fail("P3: the ENOSPC window never forced degraded mode");
    }
    if st.wal_degraded {
        fail("P3: the WAL never re-armed after the window passed");
    }
    if st.wal_non_durable == 0 {
        fail("P3: degraded acceptance must be flagged non-durable");
    }
    // A post-rearm probe must land durably again.
    if worker
        .invoke_tenant("f-1", "{\"probe\":1}", Some("st-a"))
        .is_err()
    {
        fail("P3: post-rearm probe rejected");
    }
    let part = format!(
        "degraded=1;rearmed=1;nondurable=1;served_all={};",
        completed > 0
    );
    eprintln!(
        "P3 (ENOSPC/degrade): {completed} served through the window, non_durable={}, re-armed",
        st.wal_non_durable
    );
    worker.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    part
}

// ---------------------------------------------------------------- phase P4

fn phase_stall_shed(seed: u64, time_scale: f64) -> String {
    let dir = temp_dir("p4");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let clock = SystemClock::shared();
    let storage: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
        Arc::new(RealStorage),
        DiskFaultPlanConfig {
            seed,
            // The very first fsync of the phase hangs for 250 ms.
            fsync_stall: FaultSpec::on_occurrences(vec![0]),
            stall_ms: 250,
            ..Default::default()
        },
    ));
    let worker = Arc::new(Worker::new_with_storage(
        base_cfg(
            &wal_path,
            WalConfig {
                fsync: "always".into(),
                append_deadline_ms: 50,
                ..Default::default()
            },
        ),
        mk_backend(&clock, time_scale),
        clock,
        storage,
    ));
    worker.register(spec()).expect("register");

    // Helper thread takes the stalling append; the main thread arrives
    // mid-stall, past the deadline, and must be shed instead of queueing.
    let w = Arc::clone(&worker);
    let helper = std::thread::spawn(move || {
        w.invoke_tenant("f-1", "{\"stall\":1}", Some("st-a"))
            .is_ok()
    });
    std::thread::sleep(Duration::from_millis(120));
    let mut shed_seen = false;
    for _ in 0..3 {
        match worker.invoke_tenant("f-1", "{\"mid\":1}", Some("st-b")) {
            Err(InvokeError::WalUnavailable) => {
                shed_seen = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    let helper_ok = helper.join().unwrap_or(false);
    // After the stall clears, service resumes at full durability.
    std::thread::sleep(Duration::from_millis(200));
    let after_ok = worker
        .invoke_tenant("f-1", "{\"after\":1}", Some("st-b"))
        .is_ok();
    let st = worker.status();
    if !shed_seen || st.wal_stall_sheds == 0 {
        fail("P4: an append past the deadline must be shed with WalUnavailable");
    }
    if !helper_ok {
        fail("P4: the stalled append itself must still land");
    }
    if !after_ok {
        fail("P4: service must resume after the stall clears");
    }
    eprintln!(
        "P4 (stall shed): stalled append landed, mid-stall append shed ({} total), resumed",
        st.wal_stall_sheds
    );
    let _ = std::fs::remove_dir_all(&dir);
    "stall_shed=1;helper=1;after=1;".to_string()
}

// ---------------------------------------------------------------- phase P5

fn phase_kill_recover(seed: u64, time_scale: f64) -> String {
    let dir = temp_dir("p5");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let clock = SystemClock::shared();
    let storage: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
        Arc::new(RealStorage),
        DiskFaultPlanConfig {
            seed,
            fsync_fail: FaultSpec::every_nth(3),
            ..Default::default()
        },
    ));
    let mk_cfg = || {
        base_cfg(
            &wal_path,
            WalConfig {
                fsync: "always".into(),
                retry_limit: 3,
                ..Default::default()
            },
        )
    };
    // The conformance checker rides the bus online, across both
    // incarnations of the worker.
    let sink = Arc::new(CheckerSink::new(
        Checker::new()
            .with_require_terminal(false)
            .with_context_window(64),
    ));

    let mut worker = Worker::new_with_storage(
        mk_cfg(),
        mk_backend(&clock, time_scale),
        Arc::clone(&clock),
        Arc::clone(&storage),
    );
    worker
        .telemetry()
        .add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    worker.register(spec()).expect("register");
    let mut accepted = 0usize;
    for i in 0..16u64 {
        if i == 10 {
            worker.kill(); // crash mid-trace: queued work stays pending
        }
        let tenant = if i % 2 == 0 { "st-a" } else { "st-b" };
        if worker
            .async_invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant))
            .is_ok()
        {
            accepted += 1;
        }
    }
    drop(worker);

    // One torn segment tail: the crash cut a frame short.
    if let Some((_, last)) = wal::discover_segments(&RealStorage, Path::new(&wal_path))
        .into_iter()
        .next_back()
    {
        let garbage = wal::encode_frame(&WalRecord::Dequeued { id: 999_999 });
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&last)
            .expect("open last segment");
        std::io::Write::write_all(&mut f, &garbage[..garbage.len() / 2]).expect("tear tail");
    }

    // Bit-rot replay probe: a read-path flip must be quarantined, never
    // fatal — and it must not touch the on-disk bytes the real recovery
    // reads next.
    let bitrot: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
        Arc::new(RealStorage),
        DiskFaultPlanConfig {
            seed,
            read_bitrot: FaultSpec::every_nth(1),
            ..Default::default()
        },
    ));
    let rotted = wal::replay_with(Path::new(&wal_path), bitrot.as_ref())
        .unwrap_or_else(|e| fail(&format!("P5: bit-rot replay probe errored: {e}")));
    if rotted.corrupt_frames + rotted.torn_lines == 0 {
        fail("P5: the bit-rot probe must quarantine at least one frame");
    }

    // Clean replay: exactly the hand-torn tail is quarantined, and no
    // durably-completed id sits in the pending set.
    let replayed = wal::replay(Path::new(&wal_path)).expect("replay");
    if replayed.torn_lines == 0 {
        fail("P5: the torn segment tail must be quarantined");
    }
    let scan = wal::scan_frames(&wal_bytes(Path::new(&wal_path)));
    let completed_ids: HashSet<u64> = scan
        .records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Completed { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    for p in &replayed.pending {
        if completed_ids.contains(&p.id) {
            fail(&format!("P5: completed id {} resurrected", p.id));
        }
    }

    sink.note_restart("test-worker");
    let (recovered, rep) = Worker::recover_full(
        mk_cfg(),
        mk_backend(&clock, time_scale),
        clock,
        &[spec()],
        &[Arc::clone(&sink) as Arc<dyn TelemetrySink>],
        storage,
    );
    for (_id, handle) in rep.handles {
        if handle.wait().is_err() {
            fail("P5: a replayed invocation failed");
        }
    }
    let st = recovered.status();
    if st.completed as usize != accepted {
        fail(&format!(
            "P5: lost accepted invocations: completed {} of {accepted}",
            st.completed
        ));
    }
    if st.wal_quarantined == 0 {
        fail("P5: recovery must surface the quarantined tail on /status");
    }
    drop(recovered);
    let report = sink.finish();
    if !report.ok() {
        fail(&format!(
            "P5: online checker violations: {:?}",
            report.violations
        ));
    }
    let part = format!(
        "accepted={accepted};completed={};violations={};torn_tail=1;bitrot=1;",
        st.completed,
        report.violations.len()
    );
    eprintln!(
        "P5 (kill/recover): accepted={accepted} replayed={} completed={} quarantined={} 0 violations",
        rep.replayed, st.completed, st.wal_quarantined
    );
    let _ = std::fs::remove_dir_all(&dir);
    part
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    let parts = [
        ("P1", phase_healthy(time_scale)),
        ("P2", phase_retry_ladder(seed, time_scale)),
        ("P3", phase_degrade_rearm(seed, time_scale)),
        ("P4", phase_stall_shed(seed, time_scale)),
        ("P5", phase_kill_recover(seed, time_scale)),
    ];
    let mut digest = FNV_OFFSET;
    for (tag, part) in &parts {
        let mut sub = FNV_OFFSET;
        fold(&mut sub, part);
        eprintln!("digest part {tag}: {sub:016x}");
        fold(&mut digest, tag);
        fold(&mut digest, ":");
        fold(&mut digest, part);
    }
    println!("{digest:016x}");
}
