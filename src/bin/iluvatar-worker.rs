//! The Ilúvatar worker daemon.
//!
//! Starts a worker from a JSON config file (§5: "Workers are configured
//! with a json file on startup") and serves its HTTP API. The container
//! backend is the null simulation backend by default, or the in-process
//! backend with FunctionBench behaviors via `--backend inprocess`.
//!
//! ```text
//! iluvatar-worker [--config worker.json] [--backend sim|inprocess]
//!                 [--port-file path] [--time-scale f]
//! ```
//!
//! The bound address is printed to stdout (and to `--port-file` when
//! given) so clients and load balancers can connect.

use iluvatar::prelude::*;
use iluvatar_containers::NamespacePool;
use iluvatar_core::api::WorkerApi;
use iluvatar_core::ContainerBackend;
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = match arg_value(&args, "--config") {
        Some(path) => {
            let json =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
            WorkerConfig::from_json(&json).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
        }
        None => WorkerConfig::default(),
    };
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let backend_kind = arg_value(&args, "--backend").unwrap_or_else(|| "sim".into());

    let clock = SystemClock::shared();
    let backend: Arc<dyn ContainerBackend> = match backend_kind.as_str() {
        "inprocess" => {
            let netns = Arc::new(NamespacePool::new(cfg.netns_pool, 0, Arc::clone(&clock)));
            netns.prefill();
            let b = Arc::new(InProcessBackend::new(netns));
            // Pre-register the FunctionBench behaviors so the standard
            // suite is invocable out of the box.
            for app in FbApp::all() {
                b.register_behavior(format!("{}-1", app.name()), app.behavior());
            }
            b
        }
        "sim" => Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale,
                ..Default::default()
            },
        )),
        other => panic!("unknown backend {other:?}; use sim or inprocess"),
    };

    let name = cfg.name.clone();
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    // Make the FunctionBench suite invocable immediately.
    for app in FbApp::all() {
        let _ = worker.register(app.spec());
    }
    let api = WorkerApi::serve(Arc::clone(&worker)).expect("bind worker API");
    println!("{}", api.addr());
    if let Some(path) = arg_value(&args, "--port-file") {
        std::fs::write(&path, api.addr().to_string()).expect("write port file");
    }
    eprintln!(
        "worker {name} serving on {} (backend: {backend_kind})",
        api.addr()
    );

    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
