//! Deterministic telemetry session: one seeded fault-injected run, one
//! digest computed from the canonical telemetry stream.
//!
//! Drives a worker over a fault-injecting backend (the `chaos_session`
//! acceptance mix) with the injector wired into the worker's telemetry bus
//! and flight recorder, then digests what flowed through the pipeline:
//! per-trace event-label sequences, aggregate per-kind counts, the
//! per-tenant books, and the flight-recorder snapshot reasons. Identical
//! seeds must print identical digests — `check.sh` runs this twice and
//! diffs the output to catch nondeterminism in the telemetry path itself.
//!
//! The digest deliberately folds *labels and counts*, never sequence
//! numbers or timestamps: seqnos are assigned across worker threads and
//! timestamps come from the wall clock, so neither is reproducible.
//!
//! ```text
//! telemetry_session [--seed n] [--invocations n] [--time-scale f]
//! ```
//!
//! Stdout carries exactly one line (the hex digest); the human-readable
//! run summary — event counts and snapshot reasons — goes to stderr.

use iluvatar_chaos::{FaultInjector, FaultPlanConfig, FaultSpec};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::{
    AdmissionConfig, LifecycleConfig, ResilienceConfig, TenantSpec, Worker, WorkerConfig,
};
use iluvatar_sync::SystemClock;
use iluvatar_telemetry::{TelemetrySink, VecSink};
use std::collections::BTreeMap;
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(digest: &mut u64, s: &str) {
    for b in s.bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let invocations: usize = arg_value(&args, "--invocations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    // A fresh per-process WAL so the stream covers the wal:* event family;
    // the digest never depends on the path.
    let wal_dir = std::env::temp_dir().join(format!("iluvatar-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    let wal_path = wal_dir.join(format!("queue-{seed}.wal"));
    let wal_path = wal_path.to_str().expect("utf-8 wal path").to_string();

    let clock = SystemClock::shared();
    let sim = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale,
            ..Default::default()
        },
    ));
    let faults = FaultPlanConfig {
        seed,
        create_fail: FaultSpec::with_prob(0.05),
        invoke_hang: FaultSpec::with_prob(0.02),
        invoke_error: FaultSpec::with_prob(0.10),
        hang_ms: 150,
        ..Default::default()
    };
    let injector = Arc::new(FaultInjector::new(sim, faults));
    let cfg = WorkerConfig {
        resilience: ResilienceConfig {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            agent_timeout_ms: 40,
            ..Default::default()
        },
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("chaos-a"),
            TenantSpec::new("chaos-b"),
        ]),
        lifecycle: LifecycleConfig {
            snapshot_every: 8,
            ..LifecycleConfig::with_wal(&wal_path)
        },
        ..WorkerConfig::for_testing()
    };
    let mut worker = Worker::new(
        cfg,
        Arc::clone(&injector) as Arc<dyn ContainerBackend>,
        clock,
    );
    // Capture the canonical stream, and wire the injector into the worker's
    // bus + recorder so every fired fault streams and auto-snapshots.
    let sink = Arc::new(VecSink::new());
    worker
        .telemetry()
        .add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    injector
        .plan()
        .set_telemetry(Arc::clone(worker.telemetry()));
    injector
        .plan()
        .set_flight_recorder(Arc::clone(worker.flight_recorder()));
    worker
        .register(FunctionSpec::new("f", "1").with_timing(100, 400))
        .expect("register");

    let mut failed = 0usize;
    for i in 0..invocations {
        let tenant = if i.is_multiple_of(2) {
            "chaos-a"
        } else {
            "chaos-b"
        };
        let id = match worker.invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant)) {
            Ok(r) => r.trace_id,
            Err(_) => {
                failed += 1;
                worker.recent_traces(1)[0].trace_id
            }
        };
        // Serialize the stream: wait for this invocation's timeline to
        // complete before the next one starts emitting.
        loop {
            if worker.trace(id).is_some_and(|r| r.completed()) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    worker.shutdown();

    let events = sink.events();
    let mut by_trace: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        let label = e.kind.label();
        *totals.entry(label.clone()).or_default() += 1;
        if let Some(t) = e.trace_id {
            by_trace.entry(t).or_default().push(label);
        }
    }
    let mut digest = FNV_OFFSET;
    // Per-trace label sequences, traces in id order (ids are folded by
    // position, not value — the counter's start is an implementation detail).
    for (i, (_, labels)) in by_trace.iter().enumerate() {
        fold(&mut digest, &format!("t{i}="));
        for l in labels {
            fold(&mut digest, l);
            fold(&mut digest, ",");
        }
        fold(&mut digest, ";");
    }
    for (label, count) in &totals {
        fold(&mut digest, &format!("{label}:{count};"));
    }
    let mut tstats = worker.tenant_stats();
    tstats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    for t in &tstats {
        fold(
            &mut digest,
            &format!(
                "{}:{}:{}:{}:{};",
                t.tenant, t.admitted, t.throttled, t.shed, t.served
            ),
        );
    }
    let snapshots = worker.flight_recorder().snapshots();
    for s in &snapshots {
        fold(&mut digest, &format!("snap:{};", s.reason));
    }

    eprintln!(
        "seed={seed} invocations={invocations} ok={} failed={failed} events={}",
        invocations - failed,
        events.len()
    );
    for (label, count) in &totals {
        eprintln!("  {label}: {count}");
    }
    eprintln!("  flight-recorder snapshots: {}", snapshots.len());
    for s in &snapshots {
        eprintln!("    {} ({} events)", s.reason, s.events.len());
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("{digest:016x}");
}
