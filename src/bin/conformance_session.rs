//! Conformance session: replay the seeded session streams against the
//! executable reference models and prove zero violations — then prove the
//! checker has teeth by mutating known-good streams and demanding it bites.
//!
//! Five scenarios, each a real subsystem driven end-to-end with its
//! canonical telemetry captured and fed through [`iluvatar_conformance`]:
//!
//! * **A — chaos**: the `telemetry_session` mix (fault-injected backend,
//!   retries, WAL, admission) through the WAL/timeline models.
//! * **B — kill/recover**: the `lifecycle_session` crash at a seeded
//!   submission, both incarnations' streams through one cumulative checker
//!   (`note_restart` between them), plus an offline differential: the raw
//!   WAL file through `ingest_wal_record` must agree with `wal::replay`.
//! * **C — autoscale**: the `autoscale_session` burst over a real fleet,
//!   membership/breaker/scale events through the fleet + breaker models.
//! * **D1 — live DRR**: a worker running the DRR queue policy under two
//!   weighted tenants; FIFO-within-tenant refinement + deficit bounds.
//! * **D2 — direct DRR**: a hand-driven [`DrrQueue`] with a synthesized
//!   event stream; *strict* refinement — every pop must match the model's.
//!
//! With `--mutate`, scenarios A and C are re-run and their captured streams
//! put through a mutation battery: each mutation flips one event in a
//! known-good stream and the checker must report the injected violation
//! (with its rule and event context) or the battery exits nonzero. Two
//! further cases corrupt a framed WAL segment on disk — a flipped payload
//! bit and a truncated tail — and require the frame scanner to quarantine
//! exactly the damaged frame while the survivors stay model-legal.
//!
//! ```text
//! conformance_session [--seed n] [--time-scale f] [--mutate]
//! ```
//!
//! Stdout carries exactly one line — the hex digest in digest mode, a
//! `mutation-smoke: caught/total` line in `--mutate` mode. Details go to
//! stderr. `check.sh` diffs two digest runs and gates on the battery.

use iluvatar_autoscale::{AutoscaleConfig, FleetObservation, ScalingPolicyKind};
use iluvatar_cache::{CacheConfig, CacheStatus};
use iluvatar_chaos::{sites, FaultInjector, FaultPlan, FaultPlanConfig, FaultSpec};
use iluvatar_conformance::{Checker, ConformanceReport};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::queue::QueuedInvocation;
use iluvatar_core::{
    wal, AdmissionConfig, DrrQueue, InvocationHandle, LifecycleConfig, QueuePolicyKind,
    ResilienceConfig, TelemetryBus, TelemetryEvent, TelemetryKind, TelemetrySink, TenantSpec,
    WalRecord, Worker, WorkerConfig,
};
use iluvatar_lb::cluster::WorkerHandle;
use iluvatar_lb::{BreakerConfig, Cluster, Fleet, LbPolicy};
use iluvatar_sync::{RealStorage, SystemClock};
use iluvatar_telemetry::VecSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(digest: &mut u64, s: &str) {
    for b in s.bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("iluvatar-conf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn report_violations(scenario: &str, report: &ConformanceReport) {
    if !report.ok() {
        eprintln!(
            "scenario {scenario}: {} violation(s) on a real stream:",
            report.violations.len()
        );
        for v in &report.violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------- scenario A

/// Chaos mix: the `telemetry_session` configuration, checked.
fn scenario_chaos(seed: u64, time_scale: f64) -> (Vec<TelemetryEvent>, String) {
    let dir = temp_dir("chaos");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let invocations = 24usize;

    let clock = SystemClock::shared();
    let sim = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale,
            ..Default::default()
        },
    ));
    let faults = FaultPlanConfig {
        seed,
        create_fail: FaultSpec::with_prob(0.05),
        invoke_hang: FaultSpec::with_prob(0.02),
        invoke_error: FaultSpec::with_prob(0.10),
        hang_ms: 150,
        ..Default::default()
    };
    let injector = Arc::new(FaultInjector::new(sim, faults));
    let cfg = WorkerConfig {
        resilience: ResilienceConfig {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            agent_timeout_ms: 40,
            ..Default::default()
        },
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("chaos-a"),
            TenantSpec::new("chaos-b"),
        ]),
        lifecycle: LifecycleConfig {
            snapshot_every: 8,
            ..LifecycleConfig::with_wal(&wal_path)
        },
        // Result cache on: the stream carries cache:{fill,hit,miss} events
        // and the checker holds every served hit to a durable, unexpired,
        // same-tenant fill.
        cache: CacheConfig::enabled_default(),
        ..WorkerConfig::for_testing()
    };
    let mut worker = Worker::new(
        cfg,
        Arc::clone(&injector) as Arc<dyn ContainerBackend>,
        clock,
    );
    let sink = Arc::new(VecSink::new());
    worker
        .telemetry()
        .add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    injector
        .plan()
        .set_telemetry(Arc::clone(worker.telemetry()));
    injector
        .plan()
        .set_flight_recorder(Arc::clone(worker.flight_recorder()));
    worker
        .register(
            FunctionSpec::new("f", "1")
                .with_timing(100, 400)
                .with_idempotent(),
        )
        .expect("register");

    let mut cache_hits = 0u64;
    for i in 0..invocations {
        let tenant = if i % 2 == 0 { "chaos-a" } else { "chaos-b" };
        // Arguments repeat (i mod 6): once a result is cached, later
        // identical submissions are served without touching the backend.
        let args = format!("{{\"i\":{}}}", i % 6);
        let id = match worker.invoke_tenant_cached("f-1", &args, Some(tenant)) {
            Ok((_, CacheStatus::Hit)) => {
                // A hit mints no trace: nothing to wait on.
                cache_hits += 1;
                continue;
            }
            Ok((r, _)) => r.trace_id,
            Err(_) => worker.recent_traces(1)[0].trace_id,
        };
        // Serialize: each trace completes before the next starts emitting.
        loop {
            if worker.trace(id).is_some_and(|r| r.completed()) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    worker.shutdown();

    let events = sink.events();
    let mut checker = Checker::new();
    for ev in &events {
        checker.ingest(ev);
    }
    let report = checker.finish();
    report_violations("A", &report);

    // Digest: the same crash-timing-free material telemetry_session folds —
    // per-trace label sequences, per-label totals, tenant books, snapshot
    // reasons — plus the (zero) violation count.
    let mut part = String::new();
    let mut by_trace: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for e in &events {
        // A fill is emitted by the *caller* after wait(), so its position
        // relative to the invocation thread's trailing result_returned is
        // racy — keep cache ops out of the per-trace sequences (they are
        // digested via label_counts and the per-tenant cache stats).
        if let Some(t) = e.trace_id {
            if !matches!(&e.kind, TelemetryKind::Cache { .. }) {
                by_trace.entry(t).or_default().push(e.kind.label());
            }
        }
    }
    for (i, (_, labels)) in by_trace.iter().enumerate() {
        part.push_str(&format!("t{i}={};", labels.join(",")));
    }
    for (label, count) in &report.label_counts {
        part.push_str(&format!("{label}:{count};"));
    }
    let mut tstats = worker.tenant_stats();
    tstats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    for t in &tstats {
        part.push_str(&format!(
            "{}:{}:{}:{}:{};",
            t.tenant, t.admitted, t.throttled, t.shed, t.served
        ));
    }
    for s in &worker.flight_recorder().snapshots() {
        part.push_str(&format!("snap:{};", s.reason));
    }
    for cs in &worker.cache_stats() {
        part.push_str(&format!(
            "cache:{}:{}:{}:{};",
            cs.tenant, cs.hits, cs.misses, cs.fills
        ));
    }
    part.push_str(&format!("violations={};", report.violations.len()));
    if std::env::var("ILUVATAR_CONF_DEBUG").is_ok() {
        eprintln!("part A = {part}");
    }
    eprintln!(
        "scenario A (chaos): {} events, {} traces, {} cache hits, 0 violations",
        report.events,
        by_trace.len(),
        cache_hits
    );
    let _ = std::fs::remove_dir_all(&dir);
    (events, part)
}

// ---------------------------------------------------------------- scenario B

/// Crash + recovery: both incarnations through one cumulative checker, plus
/// the raw WAL file differentially against `wal::replay`.
fn scenario_lifecycle(seed: u64, time_scale: f64) -> String {
    let dir = temp_dir("lifecycle");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let kill_at = 12u64;
    let invocations = 24u64;

    let clock = SystemClock::shared();
    let spec = FunctionSpec::new("f", "1").with_timing(100, 400);
    let mk_cfg = || WorkerConfig {
        lifecycle: LifecycleConfig {
            snapshot_every: 8,
            ..LifecycleConfig::with_wal(&wal_path)
        },
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("lc-a"),
            TenantSpec::new("lc-b"),
        ]),
        ..WorkerConfig::for_testing()
    };
    let mk_backend = || -> Arc<dyn ContainerBackend> {
        Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale,
                ..Default::default()
            },
        ))
    };
    let plan = FaultPlan::new(FaultPlanConfig {
        seed,
        worker_kill: FaultSpec::on_occurrences(vec![kill_at]),
        ..Default::default()
    });

    let mut worker = Worker::new(mk_cfg(), mk_backend(), Arc::clone(&clock));
    let sink1 = Arc::new(VecSink::new());
    worker
        .telemetry()
        .add_sink(Arc::clone(&sink1) as Arc<dyn TelemetrySink>);
    worker.register(spec.clone()).expect("register");

    let mut accepted: Vec<u64> = Vec::new();
    let mut killed = false;
    for i in 0..invocations {
        if plan.decide(sites::WORKER_KILL) && !killed {
            worker.kill();
            killed = true;
        }
        let tenant = if i % 2 == 0 { "lc-a" } else { "lc-b" };
        if worker
            .async_invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant))
            .is_ok()
        {
            accepted.push(worker.recent_traces(1)[0].trace_id);
        }
    }
    if !killed {
        worker.kill();
    }
    drop(worker); // joins in-flight threads; all part-1 emits are flushed

    // Offline differential first, while the segments still hold the crash
    // tail: the same frames through the model must agree with `wal::replay`.
    let replay = wal::replay(std::path::Path::new(&wal_path)).expect("replay wal");
    let mut file_checker = Checker::new();
    let mut seg_bytes = Vec::new();
    for (_, seg) in wal::discover_segments(&RealStorage, std::path::Path::new(&wal_path)) {
        seg_bytes.extend_from_slice(&std::fs::read(&seg).expect("read segment"));
    }
    let scan = wal::scan_frames(&seg_bytes);
    for rec in wal::dedup_records(&scan.records) {
        file_checker.ingest_wal_record("wal-file", rec);
    }
    let file_report = file_checker.finish();
    report_violations("B/file", &file_report);
    assert_eq!(
        scan.corrupt_frames + scan.torn_tail,
        replay.corrupt_frames + replay.torn_lines,
        "quarantined-frame counts must agree"
    );
    let replay_pending: Vec<u64> = replay.pending.iter().map(|p| p.id).collect();
    assert_eq!(
        file_report.wal_pending, replay_pending,
        "model pending set must equal wal::replay's"
    );
    for t in &replay.tenants {
        let book = file_report
            .wal_books
            .get(&t.tenant)
            .copied()
            .unwrap_or_default();
        assert_eq!(
            (book.admitted, book.served, book.throttled, book.shed),
            (t.admitted, t.served, t.throttled, t.shed),
            "tenant `{}` books diverge between model and wal::replay",
            t.tenant
        );
    }

    // Recover, with the second incarnation's stream on its own sink.
    let sink2 = Arc::new(VecSink::new());
    let (recovered, rec_report) = Worker::recover_with_sinks(
        mk_cfg(),
        mk_backend(),
        clock,
        std::slice::from_ref(&spec),
        &[Arc::clone(&sink2) as Arc<dyn TelemetrySink>],
    );
    let mut replay_failed = 0u64;
    for (_id, handle) in rec_report.handles {
        if handle.wait().is_err() {
            replay_failed += 1;
        }
    }
    let st = recovered.status();
    assert_eq!(replay_failed, 0, "replayed invocations must complete");
    assert_eq!(
        st.completed,
        accepted.len() as u64,
        "accepted-before-kill invocations lost"
    );

    // Stream conformance across the crash: part 1, restart, part 2. The
    // checker must accept the whole story — at-least-once re-execution,
    // exactly-once accounting, no result-before-durable on the live side.
    let mut checker = Checker::new()
        .with_require_terminal(false)
        .with_context_window(64);
    for ev in &sink1.events() {
        checker.ingest(ev);
    }
    checker.note_restart("test-worker");
    drop(recovered); // shutdown: flush the final snapshot + lifecycle stop
    for ev in &sink2.events() {
        checker.ingest(ev);
    }
    let report = checker.finish();
    report_violations("B", &report);

    let mut part = String::new();
    for id in &accepted {
        part.push_str(&format!("{id};"));
    }
    for (tenant, book) in &report.wal_books {
        part.push_str(&format!(
            "{tenant}:{}:{}:{}:{};",
            book.admitted, book.served, book.throttled, book.shed
        ));
    }
    part.push_str(&format!(
        "completed={};violations={};file_violations={};",
        st.completed,
        report.violations.len(),
        file_report.violations.len()
    ));
    eprintln!(
        "scenario B (kill/recover): accepted={} replayed={} completed={} file-pending={:?} 0 violations",
        accepted.len(),
        rec_report.replayed,
        st.completed,
        replay_pending
    );
    let _ = std::fs::remove_dir_all(&dir);
    part
}

// ---------------------------------------------------------------- scenario C

/// Elastic fleet burst: membership, breaker, and scale events checked.
fn scenario_fleet(seed: u64, time_scale: f64) -> (Vec<TelemetryEvent>, String) {
    let mut cfg = AutoscaleConfig::enabled_with(
        ScalingPolicyKind::all()
            .into_iter()
            .find(|k| k.name() == "reactive-queue-delay")
            .expect("policy"),
    );
    cfg.min_workers = 1;
    cfg.max_workers = 6;
    cfg.interval_ms = 500;
    cfg.scale_up_cooldown_ms = 500;
    cfg.scale_down_cooldown_ms = 2_000;
    cfg.max_step = 2;
    let interval_ms = cfg.interval_ms;
    let ticks = 48u64;

    let clock = SystemClock::shared();
    let mk_worker = {
        let clock = Arc::clone(&clock);
        move |name: String| -> Arc<dyn WorkerHandle> {
            let backend = Arc::new(SimBackend::new(
                Arc::clone(&clock),
                SimBackendConfig {
                    time_scale,
                    ..Default::default()
                },
            ));
            let mut wcfg = WorkerConfig::for_testing();
            wcfg.name = name;
            Arc::new(Worker::new(wcfg, backend, Arc::clone(&clock)))
        }
    };
    let cluster = Arc::new(Cluster::with_capacity(
        vec![mk_worker("w0".to_string())],
        LbPolicy::ChBl(Default::default()),
        BreakerConfig::default(),
        cfg.max_workers,
    ));
    let factory = {
        let mk_worker = mk_worker.clone();
        move |seq: usize| Ok(mk_worker(format!("elastic-{seq}")))
    };
    let fleet = Fleet::new(Arc::clone(&cluster), Box::new(factory), cfg);

    // One bus for both emitters (the api.rs wiring): membership + breaker
    // from the cluster, scale from the fleet, all on source `lb`.
    let bus = TelemetryBus::new("lb", Arc::clone(&clock));
    let sink = Arc::new(VecSink::new());
    bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    cluster.set_telemetry(Arc::clone(&bus));
    fleet.set_telemetry(bus);

    let specs: Vec<FunctionSpec> = (0..4)
        .map(|i| FunctionSpec::new(format!("f{i}"), "1").with_timing(100, 400))
        .collect();
    for s in &specs {
        cluster.register_all(s.clone()).expect("register");
        fleet.remember_spec(s.clone());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let service_per_tick = 10.0f64;
    let burst_start = ticks / 4;
    let burst_end = ticks / 2;
    let mut backlog = 0.0f64;
    let mut invoked = 0u64;
    let mut invoke_errors = 0u64;
    let mut peak_live = 0usize;
    let mut trajectory = String::new();

    for tick in 0..ticks {
        let t_ms = tick * interval_ms;
        let base = if (burst_start..burst_end).contains(&tick) {
            55.0
        } else {
            2.0
        };
        let jitter: f64 = rng.gen_range(0.0..5.0);
        let arrivals = (base + jitter).round() as u64;
        for i in 0..arrivals.min(6) {
            let fqdn = format!("f{}-1", (tick + i) % 4);
            fleet.note_arrival(&fqdn);
            match cluster.invoke(&fqdn, "{}") {
                Ok(_) => invoked += 1,
                Err(_) => invoke_errors += 1,
            }
        }
        let live = fleet.live().max(1);
        let capacity = live as f64 * service_per_tick;
        backlog = (backlog + arrivals as f64 - capacity).max(0.0);
        let delay_ms = backlog / capacity * interval_ms as f64;
        let per_fn: Vec<(String, u64)> = (0..4)
            .map(|i| {
                (
                    format!("f{i}-1"),
                    arrivals / 4 + u64::from(i < (arrivals % 4) as usize),
                )
            })
            .collect();
        let obs = FleetObservation {
            now_ms: t_ms,
            live,
            draining: fleet.draining(),
            queued: backlog.round() as u64,
            running: capacity.min(backlog + arrivals as f64).round() as u64,
            mean_queue_delay_ms: delay_ms,
            max_queue_delay_ms: delay_ms as u64,
            concurrency_limit: 8,
            pull_queue_depth: 0,
            arrivals,
            per_fn_arrivals: per_fn,
        };
        fleet.reap();
        let decision = fleet.evaluate(&obs);
        fleet.apply(&decision, t_ms).expect("apply decision");
        let live_now = fleet.live();
        peak_live = peak_live.max(live_now);
        trajectory.push_str(&format!("t{t_ms}:live={live_now};"));
    }
    loop {
        fleet.reap();
        if fleet.draining() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        peak_live >= 3,
        "burst must grow the fleet, peak {peak_live}"
    );
    assert_eq!(fleet.live(), 1, "quiet tail must return to min_workers");
    assert_eq!(invoke_errors, 0, "elasticity must not drop invocations");

    let events = sink.events();
    let mut checker = Checker::new().seed_worker("w0");
    for ev in &events {
        checker.ingest(ev);
    }
    let report = checker.finish();
    report_violations("C", &report);

    let mut part = trajectory;
    for e in &fleet.events() {
        part.push_str(&format!(
            "e:{}:{}:{}:{}->{};",
            e.t_ms,
            e.direction.label(),
            e.reason,
            e.from,
            e.to
        ));
    }
    part.push_str(&format!(
        "invoked={invoked};errors={invoke_errors};violations={};",
        report.violations.len()
    ));
    eprintln!(
        "scenario C (autoscale): {} lb events, peak_live={peak_live}, 0 violations",
        report.events
    );
    (events, part)
}

// --------------------------------------------------------------- scenario D1

/// A live worker on the DRR queue policy: FIFO-within-tenant refinement,
/// deficit bounds, and long-run weighted fairness on the real stream.
fn scenario_drr_live(time_scale: f64) -> String {
    let dir = temp_dir("drr");
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let invocations = 48usize;

    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale,
            ..Default::default()
        },
    ));
    let mut cfg = WorkerConfig {
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("gold").with_weight(3.0),
            TenantSpec::new("bronze"),
        ]),
        lifecycle: LifecycleConfig {
            snapshot_every: 16,
            ..LifecycleConfig::with_wal(&wal_path)
        },
        ..WorkerConfig::for_testing()
    };
    cfg.queue.policy = QueuePolicyKind::Drr;
    cfg.queue.drr_quantum_ms = 50;
    let mut worker = Worker::new(cfg, backend, clock);
    let sink = Arc::new(VecSink::new());
    worker
        .telemetry()
        .add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    worker
        .register(FunctionSpec::new("f", "1").with_timing(100, 400))
        .expect("register");

    // Burst the queue: async submissions from one thread, so stream order
    // equals enqueue order and the FIFO-within-tenant check is sound.
    let mut handles = Vec::new();
    for i in 0..invocations {
        let tenant = if i % 2 == 0 { "gold" } else { "bronze" };
        let h = worker
            .async_invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant))
            .expect("enqueue");
        handles.push(h);
    }
    let mut ok = 0usize;
    for h in handles {
        if h.wait().is_ok() {
            ok += 1;
        }
    }
    worker.shutdown();

    let events = sink.events();
    let mut checker = Checker::new().with_drr_fifo(50.0);
    for ev in &events {
        checker.ingest(ev);
    }
    let report = checker.finish();
    report_violations("D1", &report);

    // Only schedule-independent material: wal op counts, the books, the
    // completion total. (Warm/cold acquisition labels are racy.)
    let mut part = String::new();
    for (label, count) in &report.label_counts {
        if label.starts_with("wal:") {
            part.push_str(&format!("{label}:{count};"));
        }
    }
    for (tenant, book) in &report.wal_books {
        part.push_str(&format!(
            "{tenant}:{}:{}:{}:{};",
            book.admitted, book.served, book.throttled, book.shed
        ));
    }
    part.push_str(&format!("ok={ok};violations={};", report.violations.len()));
    eprintln!(
        "scenario D1 (live DRR): {} events, ok={ok}/{invocations}, 0 violations",
        report.events
    );
    let _ = std::fs::remove_dir_all(&dir);
    part
}

// --------------------------------------------------------------- scenario D2

/// The real [`DrrQueue`] driven directly, with a synthesized event stream
/// checked in *strict* mode: every pop must be exactly the model's pop.
struct DrrSim {
    rng: StdRng,
    queue: DrrQueue,
    checker: Checker,
    seq: u64,
    next_id: u64,
    /// Result handles must outlive their senders in the queued items.
    keep_alive: Vec<InvocationHandle>,
    pops: String,
}

impl DrrSim {
    fn emit(&mut self, id: u64, tenant: &str, kind: TelemetryKind) {
        self.seq += 1;
        self.checker.ingest(&TelemetryEvent {
            seq: self.seq,
            at_ms: self.seq, // synthetic stream: logical time is the event index
            source: "drrsim".to_string(),
            trace_id: Some(id),
            tenant: Some(tenant.to_string()),
            kind,
        });
    }

    fn push(&mut self, tenant: &str, weight: f64) {
        let id = self.next_id;
        self.next_id += 1;
        let cost = self.rng.gen_range(5.0..40.0f64).round();
        let (tx, handle) = InvocationHandle::pair();
        self.keep_alive.push(handle);
        self.emit(
            id,
            tenant,
            TelemetryKind::Wal {
                op: "enqueued".to_string(),
                cost_ms: Some(cost),
                weight: Some(weight),
                ok: None,
                throttled: None,
            },
        );
        self.queue.push(QueuedInvocation {
            fqdn: "f-1".to_string(),
            args: String::new(),
            trace_id: id,
            arrived_at: id,
            expected_exec_ms: cost,
            iat_ms: 0.0,
            expect_warm: true,
            tenant: Some(tenant.to_string()),
            tenant_weight: weight,
            result_tx: tx,
        });
    }

    fn pop(&mut self) {
        if let Some(item) = self.queue.pop() {
            let tenant = item.tenant.clone().unwrap_or_default();
            self.emit(item.trace_id, &tenant, TelemetryKind::wal("dequeued"));
            self.emit(
                item.trace_id,
                &tenant,
                TelemetryKind::Wal {
                    op: "completed".to_string(),
                    cost_ms: None,
                    weight: None,
                    ok: Some(true),
                    throttled: None,
                },
            );
            self.pops.push_str(&format!("{},", item.trace_id));
        }
    }
}

fn scenario_drr_strict(seed: u64) -> String {
    const QUANTUM: u64 = 50;
    let tenants: [(&str, f64); 3] = [("a", 1.0), ("b", 2.0), ("c", 4.0)];
    let mut sim = DrrSim {
        rng: StdRng::seed_from_u64(seed ^ 0xd22),
        queue: DrrQueue::new(QUANTUM),
        checker: Checker::new().with_drr_strict(QUANTUM as f64),
        seq: 0,
        next_id: 1,
        keep_alive: Vec::new(),
        pops: String::new(),
    };

    // Phase 1: deep backlog on all tenants, enough service while everyone
    // stays backlogged that the fairness window is audited.
    for round in 0..120 {
        let (t, w) = tenants[round % 3];
        sim.push(t, w);
    }
    for _ in 0..60 {
        sim.pop();
    }
    // Phase 2: random interleave of pushes and pops.
    for _ in 0..150 {
        if sim.rng.gen_range(0.0..1.0f64) < 0.4 {
            let (t, w) = tenants[sim.rng.gen_range(0..3usize)];
            sim.push(t, w);
        } else {
            sim.pop();
        }
    }
    // Phase 3: drain.
    while !sim.queue.is_empty() {
        sim.pop();
    }

    let items = sim.next_id - 1;
    let pops = sim.pops;
    let report = sim.checker.finish();
    report_violations("D2", &report);
    eprintln!("scenario D2 (strict DRR): {items} items through the real queue, 0 violations");
    format!("pops={pops};violations={};", report.violations.len())
}

// ----------------------------------------------------------------- mutations

/// Rewrite per-source seqs to 1..n in stream order so mutations (which may
/// append cloned events) can mint fresh, non-colliding seqs.
fn normalize(events: &[TelemetryEvent]) -> Vec<TelemetryEvent> {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    events
        .iter()
        .map(|e| {
            let c = counters.entry(e.source.clone()).or_insert(0);
            *c += 1;
            let mut e = e.clone();
            e.seq = *c;
            e
        })
        .collect()
}

fn wal_op_of(e: &TelemetryEvent) -> Option<&str> {
    match &e.kind {
        TelemetryKind::Wal { op, .. } => Some(op.as_str()),
        _ => None,
    }
}

fn is_trace_stage(e: &TelemetryEvent, prefix: &str) -> bool {
    matches!(&e.kind, TelemetryKind::Trace { stage } if stage.starts_with(prefix))
}

/// A (completed ok=true, result_returned(true)) index pair for one trace.
fn completed_result_pair(events: &[TelemetryEvent]) -> Option<(usize, usize)> {
    for (i, e) in events.iter().enumerate() {
        if wal_op_of(e) == Some("completed")
            && matches!(&e.kind, TelemetryKind::Wal { ok: Some(true), .. })
        {
            let id = e.trace_id?;
            if let Some(j) = events.iter().enumerate().skip(i + 1).find_map(|(j, x)| {
                (x.trace_id == Some(id) && is_trace_stage(x, "result_returned(true)")).then_some(j)
            }) {
                return Some((i, j));
            }
        }
    }
    None
}

struct Battery {
    caught: u32,
    total: u32,
    failed: u32,
}

impl Battery {
    fn run(
        &mut self,
        name: &str,
        events: Vec<TelemetryEvent>,
        mk_checker: impl Fn() -> Checker,
        expected_rules: &[&str],
    ) {
        self.total += 1;
        let mut checker = mk_checker();
        for ev in &events {
            checker.ingest(ev);
        }
        let report = checker.finish();
        let hit = report
            .violations
            .iter()
            .find(|v| expected_rules.contains(&v.rule));
        match hit {
            Some(v) => {
                let ctx_ok = v.event.is_none() || !v.context.is_empty();
                if ctx_ok {
                    self.caught += 1;
                    eprintln!("  mutation {name}: caught [{}/{}]", v.model, v.rule);
                } else {
                    self.failed += 1;
                    eprintln!(
                        "  mutation {name}: caught [{}] but with no event context",
                        v.rule
                    );
                }
            }
            None => {
                self.failed += 1;
                eprintln!(
                    "  mutation {name}: MISSED (wanted one of {expected_rules:?}, got {:?})",
                    report.violations.iter().map(|v| v.rule).collect::<Vec<_>>()
                );
            }
        }
    }
}

fn run_mutation_battery(chaos: &[TelemetryEvent], fleet: &[TelemetryEvent]) -> bool {
    let a = normalize(chaos);
    let c = normalize(fleet);
    let a_checker = Checker::new;
    let c_checker = || Checker::new().seed_worker("w0");
    let mut b = Battery {
        caught: 0,
        total: 0,
        failed: 0,
    };

    // Sanity: the normalized, unmutated streams stay clean.
    for (name, events, mk) in [
        ("sanity-A", a.clone(), &a_checker as &dyn Fn() -> Checker),
        ("sanity-C", c.clone(), &c_checker as &dyn Fn() -> Checker),
    ] {
        let mut checker = mk();
        for ev in &events {
            checker.ingest(ev);
        }
        let report = checker.finish();
        if !report.ok() {
            eprintln!("  {name}: normalized stream no longer clean:");
            for v in &report.violations {
                eprintln!("{v}");
            }
            return false;
        }
        eprintln!("  {name}: clean");
    }

    let fresh_seq =
        |events: &[TelemetryEvent]| events.iter().map(|e| e.seq).max().unwrap_or(0) + 1_000;

    // M1: duplicate a completion record → double-complete.
    {
        let mut ev = a.clone();
        let i = ev
            .iter()
            .rposition(|e| wal_op_of(e) == Some("completed"))
            .expect("stream A has completions");
        let mut dup = ev[i].clone();
        dup.seq = fresh_seq(&ev);
        ev.push(dup);
        b.run("duplicate-completed", ev, a_checker, &["double-complete"]);
    }

    // M2: drop a durable enqueue that is later dequeued → the acceptance or
    // the dequeue becomes unjustified.
    {
        let mut ev = a.clone();
        let i = ev
            .iter()
            .position(|e| {
                wal_op_of(e) == Some("enqueued")
                    && ev
                        .iter()
                        .any(|x| x.trace_id == e.trace_id && wal_op_of(x) == Some("dequeued"))
            })
            .expect("stream A has a dequeued enqueue");
        ev.remove(i);
        b.run(
            "drop-enqueued",
            ev,
            a_checker,
            &[
                "accepted-not-durable",
                "dequeue-of-unknown",
                "complete-of-unknown",
            ],
        );
    }

    // M3: move a completion record after its caller-visible result →
    // result-before-durable.
    {
        let mut ev = a.clone();
        let (i, j) = completed_result_pair(&ev).expect("stream A has an ok completion");
        let moved = ev.remove(i);
        ev.insert(j, moved); // j shifted left by the removal: lands after it
        b.run(
            "completed-after-result",
            ev,
            a_checker,
            &["result-before-durable"],
        );
    }

    // M4: flip a completion's ok bit → exactly-once accounting breaks.
    {
        let mut ev = a.clone();
        let (i, _) = completed_result_pair(&ev).expect("stream A has an ok completion");
        if let TelemetryKind::Wal { ok, .. } = &mut ev[i].kind {
            *ok = Some(false);
        }
        b.run("flip-completed-ok", ev, a_checker, &["accounting-mismatch"]);
    }

    // M5: rewrite a half_open announcement as closed → illegal breaker edge
    // (Open → Closed skips the probe).
    {
        let mut ev = c.clone();
        let i = ev
            .iter()
            .position(
                |e| matches!(&e.kind, TelemetryKind::Breaker { state, .. } if state == "half_open"),
            )
            .expect("stream C has breaker half_open events");
        if let TelemetryKind::Breaker { state, .. } = &mut ev[i].kind {
            *state = "closed".to_string();
        }
        b.run(
            "breaker-skip-probe",
            ev,
            c_checker,
            &["breaker-illegal-transition"],
        );
    }

    // M6: erase the drain marker before a detach → the reaper "killed" a
    // worker that was never drained.
    {
        let mut ev = c.clone();
        let target = ev
            .iter()
            .find_map(|e| match &e.kind {
                TelemetryKind::Membership { target, change } if change == "detach" => {
                    Some(target.clone())
                }
                _ => None,
            })
            .expect("stream C has detaches");
        ev.retain(|e| {
            !matches!(&e.kind, TelemetryKind::Membership { target: t, change }
                if change == "draining" && *t == target)
        });
        b.run("drop-draining", ev, c_checker, &["drain-never-kill"]);
    }

    // M7: attach the same target twice → the slot CAS must refuse.
    {
        let mut ev = c.clone();
        let i = ev
            .iter()
            .position(|e| {
                matches!(&e.kind, TelemetryKind::Membership { change, .. } if change == "attach")
            })
            .expect("stream C has attaches");
        let mut dup = ev[i].clone();
        dup.seq = fresh_seq(&ev);
        ev.insert(i + 1, dup);
        b.run("duplicate-attach", ev, c_checker, &["slot-cas"]);
    }

    // M8: replay a served hit far past its fill's advertised TTL → the
    // cache model must call the serve stale.
    {
        let mut ev = a.clone();
        let key = ev
            .iter()
            .find_map(|e| match &e.kind {
                TelemetryKind::Cache { op, key, .. } if op == "hit" => Some(key.clone()),
                _ => None,
            })
            .expect("stream A has cache hits");
        let exp = ev
            .iter()
            .find_map(|e| match &e.kind {
                TelemetryKind::Cache {
                    op,
                    key: k,
                    expires_at_ms: Some(x),
                } if op == "fill" && *k == key => Some(*x),
                _ => None,
            })
            .expect("the hit key has a fill with an expiry");
        let i = ev
            .iter()
            .position(
                |e| matches!(&e.kind, TelemetryKind::Cache { op, key: k, .. } if op == "hit" && *k == key),
            )
            .expect("hit index");
        let mut stale = ev[i].clone();
        stale.seq = fresh_seq(&ev);
        stale.at_ms = exp + 60_000;
        ev.push(stale);
        b.run("stale-hit", ev, a_checker, &["cache-stale-hit"]);
    }

    // M9/M10: seeded *on-disk* corruption — a bit-flipped record and a
    // truncated segment. Here the catching layer is the frame scanner: it
    // must quarantine exactly the damaged frame (CRC mismatch / torn tail)
    // and the surviving records must still replay model-legal. A scanner
    // that swallows the damage, loses extra frames, or hands the model an
    // illegal stream fails the case.
    {
        let inv = |id: u64| wal::PendingInvocation {
            id,
            fqdn: "f-1".to_string(),
            tenant: Some("mut-a".to_string()),
            tenant_weight: 1.0,
            ..Default::default()
        };
        let done = |id: u64| WalRecord::Completed {
            id,
            ok: true,
            tenant: Some("mut-a".to_string()),
        };
        let records = vec![
            WalRecord::Enqueued { inv: inv(1) },
            WalRecord::Dequeued { id: 1 },
            done(1),
            WalRecord::Enqueued { inv: inv(2) },
            WalRecord::Dequeued { id: 2 },
            done(2),
            WalRecord::Enqueued { inv: inv(3) },
        ];
        let mut bytes = Vec::new();
        let mut offsets = Vec::new();
        for r in &records {
            offsets.push(bytes.len());
            bytes.extend_from_slice(&wal::encode_frame(r));
        }
        let total = records.len();
        let mut check_damage = |name: &str, damaged: &[u8], want_corrupt: u64, want_torn: u64| {
            b.total += 1;
            let scan = wal::scan_frames(damaged);
            let mut checker = Checker::new();
            for rec in wal::dedup_records(&scan.records) {
                checker.ingest_wal_record("wal-file", rec);
            }
            let report = checker.finish();
            let quarantined_one = scan.corrupt_frames == want_corrupt
                && scan.torn_tail == want_torn
                && scan.records.len() == total - 1;
            if quarantined_one && report.ok() {
                b.caught += 1;
                eprintln!("  mutation {name}: caught [wal/frame-quarantine]");
            } else {
                b.failed += 1;
                eprintln!(
                        "  mutation {name}: MISSED (corrupt={} torn={} survivors={}/{total} violations={})",
                        scan.corrupt_frames,
                        scan.torn_tail,
                        scan.records.len(),
                        report.violations.len()
                    );
            }
        };
        // M9: flip one payload bit in the middle completion → CRC mismatch.
        let mut flipped = bytes.clone();
        flipped[offsets[2] + 14] ^= 0x01;
        check_damage("bitflip-record", &flipped, 1, 0);
        // M10: cut the final frame short → torn tail.
        check_damage("truncate-segment", &bytes[..bytes.len() - 3], 0, 1);
    }

    // M11/M12: pull-dispatch lease stream mutations. The reference is a
    // clean lease lifecycle with one expiry-requeue cycle; each mutation
    // breaks one plane invariant and the DispatchModel must name it.
    {
        let lease =
            |seq: u64, at_ms: u64, op: &str, worker: &str, expires: Option<u64>| TelemetryEvent {
                seq,
                at_ms,
                source: "lb".to_string(),
                trace_id: Some(7),
                tenant: Some("mut-a".to_string()),
                kind: TelemetryKind::Lease {
                    op: op.to_string(),
                    worker: worker.to_string(),
                    expires_at_ms: expires,
                    class: Some("best_effort".to_string()),
                },
            };
        let clean = vec![
            lease(1, 0, "queued", "", None),
            lease(2, 10, "issued", "w0", Some(2_000)),
            lease(3, 2_010, "expired", "w0", None),
            lease(4, 2_010, "requeued", "", None),
            lease(5, 2_020, "issued", "w1", Some(4_020)),
            lease(6, 2_050, "completed", "w1", None),
        ];
        {
            let mut checker = Checker::new().with_require_terminal(false);
            for ev in &clean {
                checker.ingest(ev);
            }
            if !checker.finish().ok() {
                eprintln!("  sanity-lease: reference lease stream no longer clean");
                return false;
            }
            eprintln!("  sanity-lease: clean");
        }
        let mk = || Checker::new().with_require_terminal(false);
        // M11: issue the invocation a second time while w0's lease is
        // still live → lease exclusivity broken.
        let mut ev = clean.clone();
        ev.insert(2, lease(1_000, 20, "issued", "w2", Some(2_020)));
        b.run("double-lease", ev, mk, &["dispatch-double-lease"]);
        // M12: the plane expires the lease but loses the requeue — the
        // later re-issue grabs a task that is not in any queue.
        let mut ev = clean.clone();
        ev.remove(3);
        b.run("dropped-requeue", ev, mk, &["dispatch-lease-not-queued"]);
    }

    eprintln!(
        "mutation battery: {}/{} caught, {} failed",
        b.caught, b.total, b.failed
    );
    println!("mutation-smoke: {}/{} caught", b.caught, b.total);
    b.failed == 0 && b.caught == b.total
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let mutate = args.iter().any(|a| a == "--mutate");

    let (chaos_events, part_a) = scenario_chaos(seed, time_scale);
    let (fleet_events, part_c) = scenario_fleet(seed, time_scale);

    if mutate {
        if !run_mutation_battery(&chaos_events, &fleet_events) {
            std::process::exit(1);
        }
        return;
    }

    let part_b = scenario_lifecycle(seed, time_scale);
    let part_d1 = scenario_drr_live(time_scale);
    let part_d2 = scenario_drr_strict(seed);

    let mut digest = FNV_OFFSET;
    for (tag, part) in [
        ("A", &part_a),
        ("B", &part_b),
        ("C", &part_c),
        ("D1", &part_d1),
        ("D2", &part_d2),
    ] {
        let mut sub = FNV_OFFSET;
        fold(&mut sub, part);
        eprintln!("digest part {tag}: {sub:016x}");
        fold(&mut digest, tag);
        fold(&mut digest, ":");
        fold(&mut digest, part);
    }
    println!("{digest:016x}");
}
