//! Result-cache session: a seeded two-tenant invocation mix through a real
//! cluster with the balancer-side result cache attached, proving the
//! tentpole's three promises and replaying bit-identically.
//!
//! * **Skip the worker** — phase 2 repeats phase-1 arguments; the repeated
//!   phase must serve ≥80% from the cache, and dispatched totals must equal
//!   exactly the invocations that missed or bypassed.
//! * **Hard tenant walls** — both tenants use identical fqdns and argument
//!   strings; every hit must carry the requesting tenant's label and the
//!   two partitions' key sets must be disjoint.
//! * **Invalidate on re-registration** — re-sighting a function's spec
//!   drops its cached results for every tenant; the next lookups miss.
//!
//! The full canonical stream (dispatch + cache events on the balancer bus)
//! rides through the conformance [`Checker`]: zero violations or exit 1.
//!
//! ```text
//! cache_session [--seed n] [--time-scale f]
//! ```
//!
//! Stdout carries exactly one line — the hex digest of the per-invocation
//! status sequence, the per-tenant cache stats, the checker label counts,
//! and the dispatch totals. Summary to stderr. `check.sh` runs this twice
//! with the same seed and diffs stdout.

use iluvatar_cache::{CacheConfig, CacheStatus, ResultCache};
use iluvatar_conformance::Checker;
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::{TelemetryBus, TelemetrySink, Worker, WorkerConfig};
use iluvatar_lb::cluster::WorkerHandle;
use iluvatar_lb::{Cluster, LbPolicy};
use iluvatar_sync::SystemClock;
use iluvatar_telemetry::VecSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fold(digest: &mut u64, s: &str) {
    for b in s.bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

const TENANTS: [&str; 2] = ["acme", "umbra"];
const UNIQUE_ARGS: u64 = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let time_scale: f64 = arg_value(&args, "--time-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    let clock = SystemClock::shared();
    let mk_worker = |name: &str| -> Arc<dyn WorkerHandle> {
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale,
                ..Default::default()
            },
        ));
        let mut cfg = WorkerConfig::for_testing();
        cfg.name = name.to_string();
        Arc::new(Worker::new(cfg, backend, Arc::clone(&clock)))
    };
    let cluster = Arc::new(Cluster::new(
        vec![mk_worker("w0"), mk_worker("w1")],
        LbPolicy::RoundRobin,
    ));

    // Balancer bus: dispatch events from the cluster, cache events from the
    // result cache, one stream for the checker.
    let bus = TelemetryBus::new("lb", Arc::clone(&clock));
    let sink = Arc::new(VecSink::new());
    bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    cluster.set_telemetry(Arc::clone(&bus));

    let cache = Arc::new(ResultCache::new(
        CacheConfig {
            enabled: true,
            tenant_max_entries: 16,
            ..Default::default()
        },
        Arc::clone(&clock) as Arc<dyn iluvatar_sync::Clock>,
    ));
    cache.set_telemetry(bus);
    // Attach before registration so the cache sees every spec.
    cluster.set_cache(Arc::clone(&cache));

    let idempotent: Vec<FunctionSpec> = (0..2)
        .map(|i| {
            FunctionSpec::new(format!("f{i}"), "1")
                .with_timing(40, 150)
                .with_idempotent()
        })
        .collect();
    let effectful = FunctionSpec::new("g", "1").with_timing(40, 150);
    for s in idempotent.iter().chain([&effectful]) {
        cluster.register_all(s.clone()).expect("register");
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut statuses = String::new();
    let mut run = |fqdn: &str, args: &str, tenant: &str| -> CacheStatus {
        let (r, status) = cluster
            .invoke_cached(fqdn, args, Some(tenant))
            .expect("invoke");
        if status == CacheStatus::Hit {
            assert_eq!(
                r.tenant.as_deref(),
                Some(tenant),
                "hit served across the tenant wall"
            );
        }
        statuses.push_str(status.as_str());
        statuses.push(';');
        status
    };

    // Phase 1 — first sight: every idempotent (tenant, fn, arg) triple is a
    // miss that fills; the effectful function always bypasses.
    let mut p1_miss = 0u64;
    for tenant in TENANTS {
        for spec in &idempotent {
            for a in 0..UNIQUE_ARGS {
                if run(&spec.fqdn, &format!("{{\"k\":{a}}}"), tenant) == CacheStatus::Miss {
                    p1_miss += 1;
                }
            }
        }
        assert_eq!(run("g-1", "{\"k\":0}", tenant), CacheStatus::Bypass);
    }
    assert_eq!(
        p1_miss,
        TENANTS.len() as u64 * idempotent.len() as u64 * UNIQUE_ARGS,
        "phase 1 must be all misses"
    );

    // Phase 2 — seeded repeats: draws mostly land on phase-1 arguments.
    let (mut hits, mut misses) = (0u64, 0u64);
    for _ in 0..60 {
        let tenant = TENANTS[rng.gen_range(0..TENANTS.len())];
        let spec = &idempotent[rng.gen_range(0..idempotent.len())];
        // One draw in ten asks for a fresh argument (an honest miss).
        let a = if rng.gen_range(0.0..1.0f64) < 0.1 {
            UNIQUE_ARGS + rng.gen_range(0..100u64)
        } else {
            rng.gen_range(0..UNIQUE_ARGS)
        };
        match run(&spec.fqdn, &format!("{{\"k\":{a}}}"), tenant) {
            CacheStatus::Hit => hits += 1,
            CacheStatus::Miss => misses += 1,
            CacheStatus::Bypass => unreachable!("idempotent functions never bypass"),
        }
    }
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_rate >= 0.8,
        "repeated phase must serve >=80% from cache, got {hit_rate:.2}"
    );

    // Tenant walls: identical fqdns and args, disjoint key sets.
    let acme_keys = cache.keys("acme");
    assert!(
        !acme_keys.is_empty() && acme_keys.iter().all(|k| !cache.keys("umbra").contains(k)),
        "tenant partitions must not share keys"
    );

    // Re-registration invalidates: the cache re-sights f0's spec (a
    // redeployment), every tenant's f0 entries drop, the next lookup
    // misses and refills.
    cache.note_spec(&idempotent[0]);
    for tenant in TENANTS {
        assert_eq!(
            run(&idempotent[0].fqdn, "{\"k\":0}", tenant),
            CacheStatus::Miss,
            "re-registration must invalidate cached results"
        );
    }

    // Hits never reached a worker: dispatch totals are misses + bypasses.
    let snap = cluster.scrape();
    let dispatched: u64 = snap.dispatched.iter().sum();
    let expected = p1_miss + TENANTS.len() as u64 + misses + TENANTS.len() as u64;
    assert_eq!(
        dispatched, expected,
        "dispatch totals must equal misses + bypasses"
    );

    // The whole stream through the conformance models.
    let events = sink.events();
    let mut checker = Checker::new().with_require_terminal(false);
    for ev in &events {
        checker.ingest(ev);
    }
    let report = checker.finish();
    if !report.ok() {
        eprintln!("cache_session: {} violation(s):", report.violations.len());
        for v in &report.violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    fold(&mut digest, &statuses);
    let mut stats = cache.stats();
    stats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    for s in &stats {
        fold(
            &mut digest,
            &format!(
                "{}:{}:{}:{}:{}:{}:{};",
                s.tenant, s.hits, s.misses, s.fills, s.evictions, s.invalidations, s.entries
            ),
        );
    }
    for (label, count) in &report.label_counts {
        fold(&mut digest, &format!("{label}:{count};"));
    }
    fold(&mut digest, &format!("dispatched={dispatched};"));

    eprintln!(
        "cache_session: phase1 misses={p1_miss}, phase2 hits={hits} misses={misses} \
         (rate {hit_rate:.2}), dispatched={dispatched}, {} events, 0 violations",
        report.events
    );
    println!("{digest:016x}");
}
