//! Ilúvatar — a fast control plane for serverless computing.
//!
//! This facade crate re-exports the full system and provides the glue
//! adapters between the load-generation framework and the two control
//! planes (Ilúvatar worker and the OpenWhisk baseline model).
//!
//! ```no_run
//! use iluvatar::prelude::*;
//! use std::sync::Arc;
//!
//! let clock = SystemClock::shared();
//! let backend = Arc::new(SimBackend::new(Arc::clone(&clock), Default::default()));
//! let worker = Worker::new(WorkerConfig::default(), backend, clock);
//! worker.register(FunctionSpec::new("hello", "1").with_timing(20, 100)).unwrap();
//! let result = worker.invoke("hello-1", "{}").unwrap();
//! println!("cold={} e2e={}ms overhead={}ms", result.cold, result.e2e_ms, result.overhead_ms());
//! ```

pub use iluvatar_autoscale as autoscale;
pub use iluvatar_baseline as baseline;
pub use iluvatar_cache as cache;
pub use iluvatar_chaos as chaos;
pub use iluvatar_containers as containers;
pub use iluvatar_core as core;
pub use iluvatar_http as http;
pub use iluvatar_lb as lb;
pub use iluvatar_sim as sim;
pub use iluvatar_sync as sync;
pub use iluvatar_trace as trace;

use iluvatar_baseline::OpenWhiskModel;
use iluvatar_core::Worker;
use iluvatar_trace::loadgen::InvokerTarget;

/// Everything most users need.
pub mod prelude {
    pub use iluvatar_baseline::{OpenWhiskConfig, OpenWhiskModel};
    pub use iluvatar_cache::{CacheConfig, CacheStatus, ResultCache};
    pub use iluvatar_containers::agent::FunctionBehavior;
    pub use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
    pub use iluvatar_containers::{FunctionSpec, InProcessBackend, NamespacePool, ResourceLimits};
    pub use iluvatar_core::{
        InvocationResult, InvokeError, KeepalivePolicyKind, QueuePolicyKind, Worker, WorkerConfig,
    };
    pub use iluvatar_lb::{ChBlConfig, Cluster, LbPolicy};
    pub use iluvatar_sim::{KeepaliveSim, SimConfig, SimOutcome};
    pub use iluvatar_sync::{Clock, ManualClock, SystemClock};
    pub use iluvatar_trace::functionbench::FbApp;
    pub use iluvatar_trace::{AzureTraceConfig, SampleKind, SyntheticAzureTrace, TraceSample};

    pub use crate::{OpenWhiskTarget, WorkerTarget};
}

/// [`InvokerTarget`] adapter for the Ilúvatar worker.
pub struct WorkerTarget(pub std::sync::Arc<Worker>);

impl InvokerTarget for WorkerTarget {
    fn fire(&self, fqdn: &str, args: &str) -> Result<(u64, bool), String> {
        self.fire_as(fqdn, args, None)
    }

    fn fire_as(&self, fqdn: &str, args: &str, tenant: Option<&str>) -> Result<(u64, bool), String> {
        match self.0.invoke_tenant(fqdn, args, tenant) {
            Ok(r) => Ok((r.exec_ms, r.cold)),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// [`InvokerTarget`] adapter for the OpenWhisk baseline model.
pub struct OpenWhiskTarget(pub std::sync::Arc<OpenWhiskModel>);

impl InvokerTarget for OpenWhiskTarget {
    fn fire(&self, fqdn: &str, _args: &str) -> Result<(u64, bool), String> {
        let r = self.0.invoke(fqdn);
        if r.dropped {
            Err("dropped".into())
        } else {
            Ok((r.exec_ms, r.cold))
        }
    }
}
